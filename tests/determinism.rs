//! Reproducibility: identical inputs produce identical outputs — a
//! requirement for a research artifact whose numbers must regenerate.

use regpipe::loops::{paper, suite};
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;

#[test]
fn schedules_are_deterministic() {
    let g = paper::apsi50_like();
    let m = MachineConfig::p2l4();
    let a = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    let b = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn compilation_is_deterministic() {
    let g = paper::apsi50_like();
    let m = MachineConfig::p2l4();
    let a = compile(&g, &m, 24, &CompileOptions::default()).unwrap();
    let b = compile(&g, &m, 24, &CompileOptions::default()).unwrap();
    assert_eq!(a.ii(), b.ii());
    assert_eq!(a.registers_used(), b.registers_used());
    assert_eq!(a.spilled(), b.spilled());
    assert_eq!(a.schedule().starts(), b.schedule().starts());
}

#[test]
fn suites_are_seed_stable() {
    let a = suite(0xC1DA, 64);
    let b = suite(0xC1DA, 64);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.weight, y.weight);
        assert_eq!(x.ddg.num_ops(), y.ddg.num_ops());
        assert_eq!(x.ddg.num_edges(), y.ddg.num_edges());
    }
}

#[test]
fn full_pipeline_fixpoint_snapshot() {
    // A coarse snapshot guarding against silent behavioural drift: if this
    // changes, the experiment outputs in EXPERIMENTS.md need regenerating.
    let m = MachineConfig::p2l4();
    let g47 = paper::apsi47_like();
    let g50 = paper::apsi50_like();
    assert_eq!(mii(&g47, &m), 8);
    assert_eq!(mii(&g50, &m), 11);
    let c47 = compile(&g47, &m, 32, &CompileOptions::default()).unwrap();
    let c50 = compile(&g50, &m, 32, &CompileOptions::default()).unwrap();
    assert!(c47.ii() <= 14, "APSI-47 fits 32 regs near its MII (got {})", c47.ii());
    assert!(c50.spilled() > 0, "APSI-50 can only fit by spilling");
    assert!(c50.ii() <= 24, "got {}", c50.ii());
}
