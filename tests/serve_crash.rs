//! Crash-safety tests of the real daemon binary: kill -9 mid-write and
//! recover byte-identically, reclaim stale sockets without racing a live
//! daemon, survive injected compile panics, and keep warm restarts
//! byte-identical to cold misses. The fault schedules come from
//! `REGPIPE_FAULT` (see `regpipe_serve::fault`), so every failure here
//! is deterministic.
#![cfg(unix)]

use std::fs;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

use regpipe::exec::json::{parse as parse_json, Value};

fn bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_regpipe"));
    // A fault plan leaking in from the caller's environment would make
    // every spawn here nondeterministic.
    c.env_remove("REGPIPE_FAULT");
    c
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regpipe-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ok(mut cmd: Command) -> Output {
    let out = cmd.output().expect("spawn regpipe");
    assert!(
        out.status.success(),
        "regpipe failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

/// Spawns `regpipe serve --socket --cache-dir` (plus a fault plan when
/// given) and waits until the socket accepts connections.
// Every test path kills or waits on the child; the lint cannot see
// through the early return in the poll loop.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(socket: &Path, cache_dir: &Path, fault: Option<&str>) -> Child {
    let mut c = bin();
    c.arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--cache-dir")
        .arg(cache_dir)
        .stderr(Stdio::null());
    if let Some(plan) = fault {
        c.env("REGPIPE_FAULT", plan);
    }
    let child = c.spawn().expect("spawn daemon");
    for _ in 0..200 {
        if UnixStream::connect(socket).is_ok() {
            return child;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never bound {}", socket.display());
}

/// One request over its own connection; the raw response line.
fn request(socket: &Path, line: &str) -> String {
    let mut stream = UnixStream::connect(socket).expect("connect");
    writeln!(stream, "{line}").expect("send");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("receive");
    reply.trim_end_matches('\n').to_string()
}

/// The shared recovery workload, aimed at a socket.
fn socket_replay(socket: &Path, jobs: &str, stats_out: Option<&Path>) -> Command {
    let mut c = bin();
    c.args(["replay", "--seed", "13", "--count", "10", "--jobs", jobs])
        .arg("--socket")
        .arg(socket)
        .stderr(Stdio::null());
    if let Some(path) = stats_out {
        c.arg("--stats-out").arg(path);
    }
    c
}

/// The tentpole acceptance path: a daemon is killed mid-append (the
/// `crash` fault aborts inside the frame write — kill -9's moral
/// equivalent), and a clean daemon restarted on the same `--cache-dir`
/// must recover, reclaim the dead daemon's stale socket, and answer the
/// full workload byte-identically to a never-crashed baseline, at
/// `--jobs` 1 and 4.
#[test]
fn a_killed_daemon_recovers_byte_identically_at_jobs_1_and_4() {
    let dir = scratch_dir("kill9");
    let socket = dir.join("daemon.sock");
    let cache_dir = dir.join("cache");
    let baseline = String::from_utf8(
        run_ok({
            let mut c = bin();
            c.args(["replay", "--seed", "13", "--count", "10", "--jobs", "1"])
                .stderr(Stdio::null());
            c
        })
        .stdout,
    )
    .unwrap();

    // Crash on the 4th store append: three entries land, the fourth is
    // torn mid-frame and the process aborts.
    let mut crashed = spawn_daemon(&socket, &cache_dir, Some("5:crash@4"));
    let failed = socket_replay(&socket, "1", None).output().expect("spawn regpipe replay");
    assert!(!failed.status.success(), "the replay client must see the daemon die");
    let status = crashed.wait().expect("daemon exit");
    assert!(!status.success(), "the daemon must die mid-write, not exit cleanly");
    assert!(socket.exists(), "a killed daemon leaves its socket file behind");

    // A clean daemon on the same cache dir: starts despite the stale
    // socket and the torn log, recovers, and serves the whole workload.
    let mut daemon = spawn_daemon(&socket, &cache_dir, None);
    let stats_path = dir.join("stats.json");
    let jobs1 = run_ok(socket_replay(&socket, "1", Some(&stats_path))).stdout;
    let jobs4 = run_ok(socket_replay(&socket, "4", None)).stdout;
    assert_eq!(String::from_utf8(jobs1).unwrap(), baseline, "--jobs 1 replay after recovery");
    assert_eq!(String::from_utf8(jobs4).unwrap(), baseline, "--jobs 4 replay after recovery");

    let stats = parse_json(&fs::read_to_string(&stats_path).unwrap()).unwrap();
    let store = stats.get("store").expect("persistent daemon exposes store counters");
    let recovered = store.get("recovered_entries").unwrap().as_i64().unwrap();
    let dropped = store.get("dropped_corrupt_entries").unwrap().as_i64().unwrap();
    assert_eq!(recovered, 3, "appends 1-3 survive the crash on append 4");
    assert!(dropped >= 1, "the torn frame must be counted, got {dropped}");

    request(&socket, "{\"op\":\"shutdown\"}");
    assert!(daemon.wait().expect("daemon exit").success());
    let _ = fs::remove_dir_all(&dir);
}

/// The stale-socket probe must not race a live daemon: a second daemon
/// on the same socket fails fast (and does not unlink the socket out
/// from under the first), a plain file is never replaced, and a socket
/// left by a killed daemon is reclaimed.
#[test]
fn socket_claiming_never_races_a_live_daemon() {
    let dir = scratch_dir("claim");
    let socket = dir.join("daemon.sock");
    let mut first = spawn_daemon(&socket, &dir.join("cache-a"), None);

    // Racing daemon: refused while the first is alive.
    let out = bin()
        .arg("serve")
        .arg("--socket")
        .arg(&socket)
        .arg("--cache-dir")
        .arg(dir.join("cache-b"))
        .output()
        .expect("spawn racing daemon");
    assert!(!out.status.success(), "a second daemon must not steal a live socket");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("already listening"), "{stderr}");
    // ...and the first daemon is untouched.
    assert_eq!(
        request(&socket, "{\"id\":1,\"op\":\"ping\"}"),
        "{\"id\":1,\"ok\":true,\"op\":\"pong\"}"
    );

    // A regular file at the socket path is never deleted.
    let decoy = dir.join("decoy.sock");
    fs::write(&decoy, b"precious").unwrap();
    let out = bin()
        .arg("serve")
        .arg("--socket")
        .arg(&decoy)
        .output()
        .expect("spawn daemon on a file");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a socket"));
    assert_eq!(fs::read(&decoy).unwrap(), b"precious", "the file must survive");

    // Kill the first daemon; its socket file stays behind, and a new
    // daemon reclaims it.
    first.kill().expect("kill daemon");
    first.wait().expect("reap daemon");
    assert!(socket.exists());
    let mut second = spawn_daemon(&socket, &dir.join("cache-a"), None);
    assert_eq!(
        request(&socket, "{\"id\":2,\"op\":\"ping\"}"),
        "{\"id\":2,\"ok\":true,\"op\":\"pong\"}"
    );
    request(&socket, "{\"op\":\"shutdown\"}");
    assert!(second.wait().expect("daemon exit").success());
    let _ = fs::remove_dir_all(&dir);
}

/// An injected engine panic is a structured `internal` error on the
/// wire; the daemon answers every later request as if nothing happened,
/// and `stats` counts the catch. A malformed fault plan, by contrast,
/// refuses to start at all.
#[test]
fn an_injected_panic_is_caught_and_the_daemon_keeps_serving() {
    let dir = scratch_dir("panic");
    let socket = dir.join("daemon.sock");
    let mut daemon = spawn_daemon(&socket, &dir.join("cache"), Some("7:panic@1"));
    let compile =
        "{\"id\":1,\"op\":\"compile\",\"ddg\":\"loop t\\nop a add\\n\",\"budget\":16}";
    let hurt = request(&socket, compile);
    assert!(hurt.contains("\"ok\":false") && hurt.contains("\"kind\":\"internal\""), "{hurt}");
    // The same request again (panic@1 is spent) now compiles fine.
    let healed = request(&socket, compile);
    assert!(healed.contains("\"ok\":true"), "{healed}");
    let stats = parse_json(&request(&socket, "{\"op\":\"stats\"}")).unwrap();
    assert_eq!(stats.get("panics_caught").unwrap().as_i64(), Some(1));
    request(&socket, "{\"op\":\"shutdown\"}");
    assert!(daemon.wait().expect("daemon exit").success());

    let out = bin()
        .arg("serve")
        .env("REGPIPE_FAULT", "not-a-plan")
        .output()
        .expect("spawn daemon with a bad plan");
    assert!(!out.status.success(), "a malformed fault plan must refuse to start");
    assert!(String::from_utf8_lossy(&out.stderr).contains("REGPIPE_FAULT"));
    let _ = fs::remove_dir_all(&dir);
}

/// Persistence parity (the ISSUE acceptance warm-restart check): a
/// second daemon lifetime on the same `--cache-dir` answers the same
/// workload byte-identically, entirely from recovered cache entries.
#[test]
fn a_warm_restart_serves_recovered_hits_byte_identical_to_cold_misses() {
    let dir = scratch_dir("warm");
    let cache_dir = dir.join("cache");
    let run = |stats: &Path| -> String {
        let out = run_ok({
            let mut c = bin();
            c.args(["replay", "--seed", "13", "--count", "12", "--jobs", "2"])
                .arg("--cache-dir")
                .arg(&cache_dir)
                .arg("--stats-out")
                .arg(stats)
                .stderr(Stdio::null());
            c
        });
        String::from_utf8(out.stdout).unwrap()
    };
    let cold_stats = dir.join("cold.json");
    let warm_stats = dir.join("warm.json");
    let cold = run(&cold_stats);
    let warm = run(&warm_stats);
    assert_eq!(cold, warm, "warm-restart responses must be byte-identical");

    let cold = parse_json(&fs::read_to_string(&cold_stats).unwrap()).unwrap();
    let warm = parse_json(&fs::read_to_string(&warm_stats).unwrap()).unwrap();
    let totals =
        |doc: &Value, field: &str| doc.get("totals").unwrap().get(field).unwrap().as_i64();
    assert_eq!(totals(&cold, "misses"), Some(12), "first lifetime compiles everything");
    assert_eq!(totals(&warm, "hits"), Some(12), "second lifetime hits everything");
    assert_eq!(totals(&warm, "misses"), Some(0));
    let recovered =
        warm.get("store").unwrap().get("recovered_entries").unwrap().as_i64().unwrap();
    assert_eq!(recovered, 12, "every entry must come back from disk");
    let _ = fs::remove_dir_all(&dir);
}
