//! Markdown link check: every relative link in the repository's top-level
//! `*.md` files and in `docs/*.md` must resolve to an existing file or
//! directory. External (`http`/`https`/`mailto`) and in-page (`#anchor`)
//! links are skipped; a `file.md#section` link is checked for the file
//! part. Runs as part of `cargo test`, so a broken cross-reference fails
//! tier-1 instead of rotting silently.

use std::path::{Path, PathBuf};

/// The inline markdown links `[text](target)` of one document, with the
/// 1-based line each starts on. A tiny scanner, not a markdown parser:
/// it looks for `](` outside fenced code blocks and reads to the closing
/// parenthesis, which covers every link style these docs use.
fn inline_links(text: &str) -> Vec<(usize, String)> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        let mut consumed = 0usize;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            links.push((i + 1, after[..close].trim().to_string()));
            consumed += open + 2 + close + 1;
            rest = &line[consumed..];
        }
    }
    links
}

/// The markdown files under the link-check contract: every `*.md` in the
/// repository root plus everything in `docs/`, minus the retrieval
/// artifacts (`PAPER.md`, `PAPERS.md`, `SNIPPETS.md`) whose content is
/// machine-extracted from external sources and carries dangling image
/// references by construction.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    const RETRIEVAL_ARTIFACTS: [&str; 3] = ["PAPER.md", "PAPERS.md", "SNIPPETS.md"];
    let mut files = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let entries = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("dir entry").path();
            let excluded = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| RETRIEVAL_ARTIFACTS.contains(&n));
            if path.extension().is_some_and(|e| e == "md") && !excluded {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn every_relative_markdown_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = markdown_files(root);
    assert!(files.len() >= 7, "expected the documentation set, found {files:?}");
    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        for (line, target) in inline_links(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // `path#anchor` → check the path part only.
            let path_part = target.split('#').next().unwrap_or(&target);
            let resolved = file.parent().expect("md files have parents").join(path_part);
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{line}: broken link '{target}' (resolved to {})",
                    file.strip_prefix(root).unwrap_or(file).display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(broken.is_empty(), "broken markdown links:\n{}", broken.join("\n"));
}

/// The checker itself must see through the docs: the core documents link
/// each other, so a non-trivial number of relative links is expected —
/// an empty scan would mean the scanner regressed, not that the docs are
/// link-free.
#[test]
fn the_scanner_finds_the_known_cross_references() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README exists");
    let links = inline_links(&readme);
    assert!(
        links.iter().any(|(_, t)| t.starts_with("ARCHITECTURE.md")),
        "README links ARCHITECTURE.md: {links:?}"
    );
    assert!(
        links.iter().any(|(_, t)| t.starts_with("docs/")),
        "README links into docs/: {links:?}"
    );
}
