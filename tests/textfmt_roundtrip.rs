//! Round-trip tests of the text interchange format over real corpora:
//! every suite loop, every named kernel, and spilled graphs (which exercise
//! bonds, staggers, order edges and non-spillable marks).

use regpipe::core::{SpillDriver, SpillDriverOptions};
use regpipe::ddg::textfmt;
use regpipe::loops::{kernels, paper, suite};
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;

fn assert_equivalent(a: &Ddg, b: &Ddg) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.num_ops(), b.num_ops());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.num_invariants(), b.num_invariants());
    for (id, node) in a.ops() {
        assert_eq!(node.kind(), b.op(id).kind());
        assert_eq!(a.is_value_marked_non_spillable(id), b.is_value_marked_non_spillable(id));
    }
    let edges = |g: &Ddg| {
        let mut v: Vec<_> = g
            .edges()
            .map(|e| (e.from(), e.to(), e.kind(), e.distance(), e.is_fixed(), e.stagger()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(edges(a), edges(b));
}

#[test]
fn suite_loops_round_trip() {
    for l in suite(55, 80) {
        let text = textfmt::format(&l.ddg);
        let back = textfmt::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert_equivalent(&l.ddg, &back);
    }
}

#[test]
fn named_kernels_round_trip() {
    for g in kernels::all_kernels() {
        let back = textfmt::parse(&textfmt::format(&g)).unwrap();
        assert_eq!(back.num_ops(), g.num_ops());
        assert_eq!(back.num_edges(), g.num_edges());
    }
}

#[test]
fn spilled_graphs_round_trip_with_bonds_intact() {
    let g = paper::apsi50_like();
    let m = MachineConfig::p2l4();
    let out = SpillDriver::new(SpillDriverOptions::default()).run(&g, &m, 24).unwrap();
    let text = textfmt::format(&out.ddg);
    let back = textfmt::parse(&text).unwrap();
    assert_equivalent(&out.ddg, &back);
    // The parsed graph schedules to the same II.
    let s = HrmsScheduler::new().schedule(&back, &m, &SchedRequest::default()).unwrap();
    s.verify(&back, &m).unwrap();
    assert_eq!(s.ii(), out.schedule.ii());
}

#[test]
fn parsed_corpus_compiles() {
    // Full cycle: generate -> serialize -> parse -> compile.
    for l in suite(66, 20) {
        let back = textfmt::parse(&textfmt::format(&l.ddg)).unwrap();
        let c = compile(&back, &MachineConfig::p1l4(), 32, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert!(c.registers_used() <= 32);
    }
}
