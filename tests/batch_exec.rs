//! Determinism and correctness of the batch-execution engine: a parallel
//! batch must be byte-identical to a sequential one, and every cell must
//! match what a direct `compile` call produces.

use std::num::NonZeroUsize;

use regpipe::core::{compile, CompileOptions, Strategy};
use regpipe::exec::{json, run_batch, BatchRequest, CellStatus};
use regpipe::loops::suite;
use regpipe::machine::MachineConfig;

fn request(jobs: usize) -> BatchRequest {
    BatchRequest {
        machine: MachineConfig::p2l4(),
        budgets: vec![64, 32],
        strategies: vec![Strategy::BestOfAll, Strategy::Spill, Strategy::IncreaseIi],
        options: CompileOptions::default(),
        jobs: NonZeroUsize::new(jobs).unwrap(),
    }
}

/// The tentpole guarantee: `jobs = 1` and `jobs = 4` produce byte-identical
/// reports (timing excluded — it is the only non-deterministic field).
#[test]
fn batch_report_is_byte_identical_across_job_counts() {
    let loops = suite(5, 14);
    let sequential = run_batch(&loops, &request(1));
    let parallel = run_batch(&loops, &request(4));
    assert_eq!(sequential.to_json(false), parallel.to_json(false));
    // And across repeated parallel runs, for good measure.
    let again = run_batch(&loops, &request(4));
    assert_eq!(parallel.to_json(false), again.to_json(false));
}

/// Every batch cell must agree with a direct sequential `compile` call on
/// the same (loop, budget, strategy) — the engine adds distribution, not
/// behavior.
#[test]
fn batch_cells_match_direct_compile_calls() {
    let loops = suite(5, 10);
    let req = request(3);
    let report = run_batch(&loops, &req);
    assert_eq!(report.cells.len(), loops.len() * req.budgets.len() * req.strategies.len());
    for cell in &report.cells {
        let l = &loops[cell.loop_index];
        assert_eq!(cell.loop_name, l.name);
        let options = CompileOptions { strategy: cell.strategy, ..req.options };
        match (compile(&l.ddg, &req.machine, cell.budget, &options), &cell.status) {
            (Ok(direct), CellStatus::Fitted { ii, regs, spilled, reschedules, .. }) => {
                assert_eq!(direct.ii(), *ii, "{} II", l.name);
                assert_eq!(direct.registers_used(), *regs, "{} regs", l.name);
                assert_eq!(direct.spilled(), *spilled, "{} spills", l.name);
                assert_eq!(direct.reschedules(), *reschedules, "{} rounds", l.name);
                assert!(*regs <= cell.budget);
            }
            (Err(e), CellStatus::Failed { error }) => {
                assert_eq!(&e.to_string(), error, "{} error text", l.name);
            }
            (direct, status) => panic!(
                "{} budget {} strategy {:?}: direct {:?} vs batch {:?}",
                l.name,
                cell.budget,
                cell.strategy,
                direct.map(|c| c.ii()),
                status
            ),
        }
    }
}

/// The emitted JSON round-trips through the strict parser and carries the
/// schema marker plus one aggregate per (budget, strategy) pair.
#[test]
fn report_json_parses_and_has_the_advertised_shape() {
    let loops = suite(5, 6);
    let req = request(2);
    let report = run_batch(&loops, &req);
    let doc = json::parse(&report.to_json(false)).expect("report parses");
    assert_eq!(doc.get("schema"), Some(&json::Value::Str("regpipe-bench-suite/v3".into())));
    assert_eq!(doc.get("spill_policy"), Some(&json::Value::Str("paper".into())));
    assert_eq!(doc.get("scheduler"), Some(&json::Value::Str("hrms".into())));
    assert_eq!(doc.get("suite_size"), Some(&json::Value::Int(6)));
    let aggregates = doc.get("aggregates").unwrap().as_array().unwrap();
    assert_eq!(aggregates.len(), req.budgets.len() * req.strategies.len());
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), report.cells.len());
    for cell in cells {
        let status = cell.get("status").unwrap();
        assert!(
            *status == json::Value::Str("fitted".into())
                || *status == json::Value::Str("failed".into())
        );
    }
}
