//! End-to-end smoke: the synthetic benchmark suite pushed through
//! `core::compile` with every strategy at two register budgets. A tight
//! budget may be legitimately unreachable for a given loop — that must
//! surface as a clean `CompileError`, never a panic — and every successful
//! compilation must satisfy the Schedule/MRT invariants via `verify` and
//! actually meet the budget.

use regpipe::core::{compile, CompileOptions, Strategy};
use regpipe::loops::suite;
use regpipe::machine::MachineConfig;
use regpipe::sched::mii;

#[test]
fn suite_compiles_under_budget_for_every_strategy() {
    let loops = suite(0xC1DA, 16);
    let machine = MachineConfig::p2l4();
    let strategies = [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll];
    let budgets = [12u32, 32];

    let mut compiled_ok = 0usize;
    for strategy in strategies {
        for budget in budgets {
            for l in &loops {
                let options = CompileOptions { strategy, ..CompileOptions::default() };
                match compile(&l.ddg, &machine, budget, &options) {
                    Ok(c) => {
                        compiled_ok += 1;
                        // Schedule/MRT invariants: dependences, bond offsets,
                        // and modulo reservation table conflicts.
                        assert!(
                            c.schedule().verify(c.ddg(), &machine).is_ok(),
                            "{} ({strategy:?}, {budget} regs): {:?}",
                            l.name,
                            c.schedule().verify(c.ddg(), &machine),
                        );
                        assert!(
                            c.registers_used() <= budget,
                            "{} ({strategy:?}): {} registers over budget {budget}",
                            l.name,
                            c.registers_used(),
                        );
                        assert!(
                            c.ii() >= mii(c.ddg(), &machine),
                            "{} ({strategy:?}): II {} below MII",
                            l.name,
                            c.ii(),
                        );
                        assert!(c.schedule().stage_count() >= 1);
                    }
                    // Unreachable budgets fail cleanly; the error formats.
                    Err(e) => assert!(!e.to_string().is_empty()),
                }
            }
        }
    }
    // The generous budget must be broadly compilable: if nearly everything
    // errors, the drivers are broken even though nothing panicked.
    assert!(
        compiled_ok >= loops.len() * strategies.len(),
        "only {compiled_ok} of {} strategy/budget/loop combinations compiled",
        loops.len() * strategies.len() * budgets.len(),
    );
}
