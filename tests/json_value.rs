//! Property tests of the vendored JSON layer: render → parse → render is
//! a byte-level fixpoint over the full [`Value`] space — nested arrays and
//! objects, strings spanning ASCII controls, escapes, and every Unicode
//! plane, and floats across the finite `f64` range.
//!
//! Two subtleties make the *render-level* fixpoint the right property:
//!
//! * An integral float renders without `.` or `e` (`3.0` → `"3"`), so a
//!   re-parse yields `Value::Int` — value-level equality is only required
//!   of float-free documents, and is asserted for exactly those.
//! * Rust's `{}` float formatting is shortest-round-trip, so the second
//!   render of any parsed number reproduces the first exactly.

use proptest::prelude::*;

use regpipe::exec::json::{parse, Value};

/// Characters chosen to stress the escape and Unicode paths: the
/// mandatory JSON escapes, ASCII controls (escaped as `\u00xx`), the BMP
/// edges around the surrogate range, and supplementary-plane characters
/// (which a `\u` escape can only express as surrogate pairs).
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    '\u{1f}',
    '\u{7f}',
    'é',
    'ß',
    '中',
    '\u{2028}',
    '\u{d7ff}',
    '\u{e000}',
    '\u{fffd}',
    '😀',
    '\u{10000}',
    '\u{10ffff}',
];

/// A tiny deterministic generator (xorshift) so a whole nested document
/// derives from one proptest-supplied seed.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn string_from(state: &mut u64) -> String {
    let len = (next(state) % 12) as usize;
    (0..len).map(|_| PALETTE[(next(state) as usize) % PALETTE.len()]).collect()
}

fn float_from(state: &mut u64) -> f64 {
    match next(state) % 4 {
        // Integral floats: the render-as-"3" aliasing case.
        0 => (next(state) % 1000) as f64 - 500.0,
        // Small fractions with exact binary representations and not.
        1 => (next(state) % 1000) as f64 / 8.0,
        2 => (next(state) % 1_000_000) as f64 / 7.0,
        // The whole finite range via raw bits.
        _ => {
            let x = f64::from_bits(next(state));
            if x.is_finite() {
                x
            } else {
                0.5
            }
        }
    }
}

/// One arbitrary value of bounded depth; `floats` gates `Value::Num`.
fn value_from(state: &mut u64, depth: u32, floats: bool) -> Value {
    let scalar_kinds = if floats { 5 } else { 4 };
    let kinds = if depth == 0 { scalar_kinds } else { scalar_kinds + 2 };
    let r = next(state) % kinds;
    // Kind slots: 0..4 scalars, 4 float, 5 array, 6 object; without
    // floats the draw skips the float slot.
    let kind = if !floats && r >= 4 { r + 1 } else { r };
    match kind {
        0 => Value::Null,
        1 => Value::Bool(next(state).is_multiple_of(2)),
        2 => Value::Int(next(state) as i64 >> (next(state) % 48)),
        3 => Value::Str(string_from(state)),
        4 => Value::Num(float_from(state)),
        5 => {
            let n = (next(state) % 4) as usize;
            Value::Array((0..n).map(|_| value_from(state, depth - 1, floats)).collect())
        }
        _ => {
            let n = (next(state) % 4) as usize;
            Value::Object(
                (0..n)
                    .map(|_| (string_from(state), value_from(state, depth - 1, floats)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline property: render → parse → render is byte-stable for
    /// *any* value, floats included.
    #[test]
    fn render_parse_render_is_a_byte_fixpoint(seed in any::<u64>()) {
        let mut state = seed | 1;
        let v = value_from(&mut state, 3, true);
        let first = v.render();
        let reparsed = parse(&first)
            .unwrap_or_else(|e| panic!("rendered JSON must parse: {e}\n{first}"));
        let second = reparsed.render();
        prop_assert_eq!(&first, &second, "render/parse/render drifted");
    }

    /// Without floats there is no `Int`/`Num` aliasing, so the round trip
    /// is exact at the value level, not just the byte level.
    #[test]
    fn parse_inverts_render_for_float_free_documents(seed in any::<u64>()) {
        let mut state = seed | 1;
        let v = value_from(&mut state, 3, false);
        let text = v.render();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("rendered JSON must parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, v);
    }

    /// Strings round-trip exactly — including quotes, backslashes,
    /// controls, and supplementary-plane characters.
    #[test]
    fn strings_round_trip_exactly(seed in any::<u64>()) {
        let mut state = seed | 1;
        let s = string_from(&mut state);
        let v = Value::Str(s.clone());
        let text = v.render();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("rendered string must parse: {e}\n{text}"));
        prop_assert_eq!(reparsed.as_str(), Some(s.as_str()));
    }

    /// Finite floats survive a full round trip with their exact bit
    /// pattern (shortest-round-trip rendering), possibly re-typed as Int.
    #[test]
    fn finite_floats_keep_their_value(seed in any::<u64>()) {
        let mut state = seed | 1;
        let x = float_from(&mut state);
        let text = Value::finite(x).expect("generator yields finite floats").render();
        let back = parse(&text).unwrap().as_f64().expect("number parses as a number");
        prop_assert!(back == x || (back == 0.0 && x == 0.0), "{} -> {} -> {}", x, text, back);
    }
}

/// Every palette character survives being written as explicit `\uXXXX`
/// escapes (UTF-16, so supplementary characters become surrogate pairs)
/// and being rendered natively.
#[test]
fn escaped_and_native_spellings_agree_for_the_whole_palette() {
    for &c in PALETTE {
        let mut escaped = String::from('"');
        let mut units = [0u16; 2];
        for unit in c.encode_utf16(&mut units) {
            escaped.push_str(&format!("\\u{:04x}", unit));
        }
        escaped.push('"');
        let via_escape =
            parse(&escaped).unwrap_or_else(|e| panic!("U+{:04X} as {escaped}: {e}", c as u32));
        assert_eq!(via_escape.as_str(), Some(c.to_string().as_str()), "escaped {escaped}");

        let native = Value::Str(c.to_string()).render();
        let via_native = parse(&native).unwrap();
        assert_eq!(via_native, via_escape, "U+{:04X}: native {native} vs {escaped}", c as u32);
    }
}
