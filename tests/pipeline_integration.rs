//! End-to-end integration across all crates: suite loops through every
//! strategy on every machine, with full verification of the results.

use regpipe::core::{
    BestOfAllDriver, IncreaseIiDriver, SpillDriver, SpillDriverOptions, Strategy,
};
use regpipe::loops::{paper, suite};
use regpipe::prelude::*;
use regpipe::regalloc::LifetimeAnalysis;
use regpipe::sched::{AsapScheduler, SchedRequest};
use regpipe::spill::SelectHeuristic;

#[test]
fn whole_suite_compiles_under_32_registers_on_every_machine() {
    let loops = suite(101, 60);
    for machine in MachineConfig::paper_configs() {
        for l in &loops {
            let c = compile(&l.ddg, &machine, 32, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", l.name, machine.name()));
            assert!(c.registers_used() <= 32, "{} on {}", l.name, machine.name());
            c.schedule().verify(c.ddg(), &machine).unwrap();
            assert!(c.ii() >= mii(c.ddg(), &machine));
        }
    }
}

#[test]
fn strategies_rank_consistently() {
    // Where both succeed: best-of-all is at least as fast as spilling, and
    // never slower than increase-II.
    let loops = suite(77, 40);
    let m = MachineConfig::p2l4();
    for l in &loops {
        let spill = compile(
            &l.ddg,
            &m,
            32,
            &CompileOptions { strategy: Strategy::Spill, ..CompileOptions::default() },
        );
        let both = compile(&l.ddg, &m, 32, &CompileOptions::default());
        if let (Ok(s), Ok(b)) = (spill, both) {
            assert!(b.ii() <= s.ii(), "{}: best {} vs spill {}", l.name, b.ii(), s.ii());
        }
        let ii_only = compile(
            &l.ddg,
            &m,
            32,
            &CompileOptions { strategy: Strategy::IncreaseIi, ..CompileOptions::default() },
        );
        if let (Ok(i), Ok(b)) = (ii_only, compile(&l.ddg, &m, 32, &CompileOptions::default())) {
            assert!(b.ii() <= i.ii(), "{}: best {} vs increase-II {}", l.name, b.ii(), i.ii());
        }
    }
}

#[test]
fn spill_framework_works_with_the_register_insensitive_scheduler() {
    // "The techniques presented can also be used with other scheduling
    // techniques": run the drivers over the ASAP baseline.
    let g = paper::apsi50_like();
    let m = MachineConfig::p2l4();
    let driver =
        SpillDriver::with_scheduler(AsapScheduler::new(), SpillDriverOptions::default());
    let out = driver.run(&g, &m, 32).expect("spilling converges under ASAP too");
    out.schedule.verify(&out.ddg, &m).unwrap();
    assert!(out.allocation.total() <= 32);
}

#[test]
fn register_insensitive_scheduling_needs_more_registers() {
    // The motivation for HRMS: on high-pressure loops the ASAP baseline
    // stretches lifetimes. Compare MaxLive over a small suite.
    let loops = suite(303, 30);
    let m = MachineConfig::p2l4();
    let mut hrms_total = 0u64;
    let mut asap_total = 0u64;
    for l in &loops {
        let h = HrmsScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap();
        let a = AsapScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap();
        // Compare at the same II to isolate placement effects.
        if h.ii() == a.ii() {
            hrms_total += u64::from(LifetimeAnalysis::new(&l.ddg, &h).max_live());
            asap_total += u64::from(LifetimeAnalysis::new(&l.ddg, &a).max_live());
        }
    }
    assert!(
        hrms_total <= asap_total,
        "register-sensitive placement must not lose on aggregate: {hrms_total} vs {asap_total}"
    );
}

#[test]
fn increase_ii_failures_are_exactly_the_floor_bound_loops() {
    let m = MachineConfig::p2l4();
    let driver = IncreaseIiDriver::new();
    // The convergent paper loop fits, the floor-bound one does not.
    assert!(driver.run(&paper::apsi47_like(), &m, 32).is_ok());
    assert!(driver.run(&paper::apsi50_like(), &m, 32).is_err());
    // With a file as large as the floor, it fits again.
    assert!(driver.run(&paper::apsi50_like(), &m, 64).is_ok());
}

#[test]
fn spilling_monotonically_extends_the_graph() {
    let g = paper::apsi50_like();
    let m = MachineConfig::p2l4();
    let out = SpillDriver::new(SpillDriverOptions::unaccelerated(SelectHeuristic::MaxLt))
        .run(&g, &m, 16)
        .unwrap();
    // Nodes are append-only; every original op survives the rewrites.
    assert!(out.ddg.num_ops() >= g.num_ops());
    for (id, node) in g.ops() {
        assert_eq!(out.ddg.op(id).kind(), node.kind());
        assert_eq!(out.ddg.op(id).name(), node.name());
    }
    // Traffic grows exactly by the added loads/stores.
    assert!(out.ddg.memory_ops() > g.memory_ops());
}

#[test]
fn best_of_all_reports_spill_statistics_even_when_increase_ii_wins() {
    let g = paper::example_loop();
    let m = MachineConfig::uniform(4, 2);
    let out = BestOfAllDriver::new(SpillDriverOptions::default()).run(&g, &m, 7).unwrap();
    assert!(out.spill.reschedules >= 1);
    out.schedule.verify(&out.ddg, &m).unwrap();
    assert!(out.allocation.total() <= 7);
}

#[test]
fn sixty_four_registers_rarely_need_any_spill() {
    // The paper: "when 64 registers are available there is almost no
    // performance degradation".
    let loops = suite(404, 50);
    let m = MachineConfig::p2l4();
    let mut spilled_loops = 0;
    for l in &loops {
        let c = compile(&l.ddg, &m, 64, &CompileOptions::default()).unwrap();
        if c.spilled() > 0 {
            spilled_loops += 1;
        }
    }
    assert!(spilled_loops <= 5, "{spilled_loops} of 50 needed spills at 64 regs");
}
