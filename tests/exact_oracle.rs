//! Differential tests of the exact branch-and-bound oracle
//! (`ExactScheduler`) against the whole heuristic registry:
//!
//! * over the `gen` knob space on small kernels (≤ 12 ops) and all paper
//!   machines, exact schedules verify, `exact II ≥ MII` always, and
//!   `exact II ≤ heuristic II` whenever the search proved optimality;
//! * hand-computed pins on the two `docs/algorithms.md` kernels (every
//!   number CLI-reproducible via `regpipe info --scheduler exact`) and on
//!   a recurrence-bound kernel where RecMII > ResMII;
//! * budget regressions: budgets 0 and 1 are `BudgetExhausted` with a
//!   valid best-effort schedule, and two budgets agree whenever both
//!   prove;
//! * the committed `BENCH_gap.json` is fresh, proves a majority of its
//!   corpus, and never reports a heuristic II below a proven optimum.

use std::num::NonZeroUsize;

use proptest::prelude::*;

use regpipe::bench::{run_gap, GapConfig, DEFAULT_SPILL_BUDGET};
use regpipe::core::SpillPolicyKind;
use regpipe::ddg::{DdgBuilder, OpKind};
use regpipe::exec::json::{parse as parse_json, Value};
use regpipe::loops::{generate, paper, GenParams};
use regpipe::machine::{res_mii, MachineConfig};
use regpipe::regalloc::allocate;
use regpipe::sched::{
    mii, rec_mii, ExactScheduler, ExactStatus, LoopAnalysis, SchedRequest, Scheduler,
    SchedulerKind, DEFAULT_NODE_BUDGET,
};

fn machines() -> Vec<MachineConfig> {
    vec![MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()]
}

/// The heuristics the oracle is measured against.
fn heuristics() -> impl Iterator<Item = SchedulerKind> {
    SchedulerKind::ALL.into_iter().filter(|k| *k != SchedulerKind::Exact)
}

/// One small kernel from the `gen` stream — the same seed-stable
/// generator `regpipe gen` uses, so every failure replays from its knobs.
fn small_kernel(seed: u64, max_ops: usize, rec_density: f64) -> regpipe::loops::BenchLoop {
    let params = GenParams {
        min_ops: 2,
        max_ops,
        recurrence_density: rec_density,
        ..GenParams::default()
    };
    generate(seed, 1, &params).expect("knobs are valid").remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential harness: over the generator knob space, the
    /// oracle's schedule verifies, never beats MII, and — when the search
    /// proved optimality — is never beaten by any registered heuristic.
    #[test]
    fn exact_verifies_respects_mii_and_dominates_proven_heuristics(
        seed in any::<u64>(),
        max_ops in 2usize..=12,
        rec_pct in 0u32..=60,
        m_idx in 0usize..3,
    ) {
        let l = small_kernel(seed, max_ops, f64::from(rec_pct) / 100.0);
        let m = &machines()[m_idx];
        let ctx = LoopAnalysis::new(&l.ddg, m);
        let request = SchedRequest::default();
        let outcome = ExactScheduler::new()
            .solve_in(&ctx, &request)
            .expect("generated kernels are schedulable");
        prop_assert!(
            outcome.schedule.verify(&l.ddg, m).is_ok(),
            "invalid exact schedule: {:?}",
            outcome.schedule.verify(&l.ddg, m)
        );
        prop_assert!(
            outcome.schedule.ii() >= mii(&l.ddg, m),
            "exact II {} below MII {}",
            outcome.schedule.ii(),
            mii(&l.ddg, m)
        );
        if outcome.proven() {
            for kind in heuristics() {
                let h = kind.schedule_in(&ctx, &request).expect("schedulable");
                prop_assert!(
                    outcome.schedule.ii() <= h.ii(),
                    "proven optimum {} beaten by {kind} at II {}",
                    outcome.schedule.ii(),
                    h.ii()
                );
            }
        }
    }
}

/// docs/algorithms.md kernel 1 (the paper's Figure 2 chain): the oracle
/// proves II = 1 with SC = 11 and the chain's register bill, matching
/// `regpipe info fig2.ddg --scheduler exact` byte for byte.
#[test]
fn pins_the_fig2_chain() {
    let g = paper::example_loop();
    let m = MachineConfig::p2l4();
    let outcome = ExactScheduler::new()
        .solve_in(&LoopAnalysis::new(&g, &m), &SchedRequest::default())
        .expect("fig2 schedules");
    assert_eq!(outcome.status, ExactStatus::Proven);
    assert_eq!(outcome.schedule.ii(), 1, "2 memory ops on 2 memory units");
    assert_eq!(outcome.schedule.stage_count(), 11, "the 10-cycle chain is a hard floor");
    let a = allocate(&g, &outcome.schedule);
    assert_eq!((a.total(), a.max_live()), (18, 18), "17 variants + the invariant");
}

/// docs/algorithms.md kernel 2 (the asymmetric join): the oracle proves
/// II = 2 and tightens the span to SC = 4 — the SMS schedule HRMS's
/// readiness gate misses (`regpipe info join.ddg --scheduler exact`).
#[test]
fn pins_the_algorithms_doc_join_example() {
    let mut b = DdgBuilder::new("join");
    let a = b.add_op(OpKind::Load, "a");
    let st_b = b.add_op(OpKind::Store, "b");
    let c = b.add_op(OpKind::Load, "c");
    let d = b.add_op(OpKind::Mul, "d");
    let s = b.add_op(OpKind::Store, "s");
    b.reg(a, st_b);
    b.reg(a, d);
    b.reg(c, d);
    b.reg(d, s);
    let g = b.build().unwrap();
    let m = MachineConfig::p2l4();
    let ctx = LoopAnalysis::new(&g, &m);
    let outcome =
        ExactScheduler::new().solve_in(&ctx, &SchedRequest::default()).expect("join schedules");
    assert_eq!(outcome.status, ExactStatus::Proven);
    assert_eq!(outcome.schedule.ii(), 2, "4 memory ops on 2 memory units");
    assert_eq!(outcome.schedule.stage_count(), 4, "minimum span is 7 cycles");
    let alloc = allocate(&g, &outcome.schedule);
    assert_eq!((alloc.total(), alloc.max_live()), (5, 5));
    // No heuristic does better on either axis the oracle optimizes.
    for kind in heuristics() {
        let h = kind.schedule_in(&ctx, &SchedRequest::default()).unwrap();
        assert_eq!(h.ii(), 2, "{kind}");
        assert!(h.stage_count() >= outcome.schedule.stage_count(), "{kind}");
    }
}

/// A kernel where RecMII (8) strictly exceeds ResMII, so the II sweep's
/// lower bound — and the search's difference-constraint pruning — come
/// from the recurrence cycle, not the resource count.
#[test]
fn pins_a_recurrence_bound_kernel() {
    let mut b = DdgBuilder::new("rec");
    let l = b.add_op(OpKind::Load, "l");
    let a = b.add_op(OpKind::Add, "a");
    let c = b.add_op(OpKind::Add, "c");
    b.reg(l, a);
    b.reg(a, c);
    b.reg_dist(c, a, 1);
    let g = b.build().unwrap();
    let m = MachineConfig::p2l4();
    assert!(rec_mii(&g, &m) > res_mii(&m, &g), "the recurrence must dominate");
    assert_eq!(mii(&g, &m), 8, "two latency-4 adds over distance 1");
    let outcome = ExactScheduler::new()
        .solve_in(&LoopAnalysis::new(&g, &m), &SchedRequest::default())
        .expect("rec kernel schedules");
    assert_eq!(outcome.status, ExactStatus::Proven);
    assert_eq!(outcome.schedule.ii(), 8, "MII is achievable: proven at the recurrence bound");
}

/// Budgets 0 and 1 must exhaust — never panic, never claim a proof — and
/// still hand back a valid best-effort schedule respecting MII.
#[test]
fn tiny_budgets_exhaust_with_a_valid_best_effort_schedule() {
    for budget in [0, 1] {
        for seed in [1, 7, 23, 104] {
            let l = small_kernel(seed, 10, 0.3);
            for m in &machines() {
                let outcome = ExactScheduler::with_budget(budget)
                    .solve_in(&LoopAnalysis::new(&l.ddg, m), &SchedRequest::default())
                    .expect("the heuristic incumbent always exists");
                assert_eq!(
                    outcome.status,
                    ExactStatus::BudgetExhausted,
                    "budget {budget} cannot prove anything (seed {seed}, {})",
                    m.name()
                );
                assert!(!outcome.proven());
                assert!(!outcome.span_proven);
                assert!(outcome.schedule.verify(&l.ddg, m).is_ok());
                assert!(outcome.schedule.ii() >= mii(&l.ddg, m));
            }
        }
    }
}

/// Two different budgets must agree on the optimal II whenever both
/// prove, and on the span whenever both tightened it to a proof.
#[test]
fn proofs_agree_across_budgets() {
    let m = MachineConfig::p2l4();
    let mut both_proved = 0;
    for seed in 0..24u64 {
        let l = small_kernel(seed, 9, 0.25);
        let ctx = LoopAnalysis::new(&l.ddg, &m);
        let small = ExactScheduler::with_budget(30_000)
            .solve_in(&ctx, &SchedRequest::default())
            .unwrap();
        let large = ExactScheduler::with_budget(DEFAULT_NODE_BUDGET)
            .solve_in(&ctx, &SchedRequest::default())
            .unwrap();
        if small.proven() && large.proven() {
            both_proved += 1;
            assert_eq!(small.schedule.ii(), large.schedule.ii(), "seed {seed}");
            if small.span_proven && large.span_proven {
                assert_eq!(
                    small.schedule.stage_count(),
                    large.schedule.stage_count(),
                    "seed {seed}: both proved the span but disagree"
                );
            }
        }
    }
    assert!(both_proved > 0, "the comparison must exercise real proofs");
}

/// The committed `BENCH_gap.json` (the ISSUE acceptance artifact): it
/// must parse, prove a majority of its corpus, never report a heuristic
/// II below a proven optimum, and match a fresh run bit for bit — so the
/// artifact can never silently go stale against the schedulers.
#[test]
fn committed_gap_report_is_fresh_and_never_undercuts_a_proven_optimum() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_gap.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_gap.json at repo root");
    let doc = parse_json(&text).expect("committed report parses");
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("regpipe-bench-gap/v2"));

    let loops = doc.get("loops").and_then(Value::as_i64).expect("loops count");
    let proven = doc.get("proven").and_then(Value::as_i64).expect("proven count");
    assert_eq!(loops, 100, "the acceptance corpus is gen --seed 7 --count 100");
    assert!(2 * proven > loops, "majority must prove: {proven}/{loops}");

    for entry in doc.get("per_loop").and_then(Value::as_array).expect("per_loop") {
        if entry.get("proven").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let name = entry.get("name").and_then(Value::as_str).unwrap_or("?");
        let exact_ii =
            entry.get("exact").and_then(|e| e.get("ii")).and_then(Value::as_i64).unwrap();
        for h in entry.get("schedulers").and_then(Value::as_array).expect("schedulers") {
            let ii = h.get("ii").and_then(Value::as_i64).unwrap();
            assert!(
                ii >= exact_ii,
                "{name}: heuristic II {ii} under proven optimum {exact_ii}"
            );
            let gap = h.get("ii_gap").and_then(Value::as_i64).unwrap();
            assert_eq!(gap, ii - exact_ii, "{name}: inconsistent ii_gap");
        }
    }

    // Freshness: regenerating the acceptance corpus report must give the
    // committed bytes (`regpipe gap` defaults: seed 7, count 100, max-ops
    // 12, p2l4, default node budget).
    let params = GenParams { max_ops: 12, ..GenParams::default() };
    let corpus = generate(7, 100, &params).expect("acceptance corpus generates");
    let config = GapConfig {
        machine: MachineConfig::p2l4(),
        node_budget: DEFAULT_NODE_BUDGET,
        jobs: NonZeroUsize::new(4).unwrap(),
        source: "gen:seed=7,count=100,max_ops=12".into(),
        spill_policy: SpillPolicyKind::default(),
        spill_budget: DEFAULT_SPILL_BUDGET,
    };
    let fresh = run_gap(&corpus, &config).to_json();
    assert_eq!(
        fresh, text,
        "BENCH_gap.json is stale — regenerate it with `regpipe gap` (defaults) at the repo root"
    );
}
