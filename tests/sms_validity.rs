//! Validity and determinism of the SMS scheduler (ISSUE 5):
//!
//! * every SMS schedule is a **valid modulo schedule** — dependence
//!   distances and resource limits are respected at the achieved II
//!   (`Schedule::verify`) — across the seeded generator's knob space on
//!   all three paper machines;
//! * SMS results are identical through the cached (`schedule_in`) and
//!   uncached (`schedule`) paths, like the other schedulers;
//! * a `--scheduler sms` suite run is byte-identical across worker
//!   counts, in process and through the CLI binary.

use std::num::NonZeroUsize;
use std::process::Command;

use proptest::prelude::*;

use regpipe::core::{CompileOptions, SchedulerKind, Strategy};
use regpipe::exec::{json, run_batch, BatchRequest};
use regpipe::loops::{generate, suite, GenParams};
use regpipe::machine::MachineConfig;
use regpipe::sched::{mii, LoopAnalysis, SchedRequest, Scheduler, SmsScheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated kernel, across the knob space and all paper
    /// machines, reaches a *verified* SMS schedule: `verify` re-checks
    /// every dependence edge (latency minus II·distance) and replays the
    /// modulo reservation table, so a pass is a proof of modulo-schedule
    /// validity at the achieved II.
    #[test]
    fn every_sms_schedule_is_a_valid_modulo_schedule(
        seed in any::<u64>(),
        min_ops in 2usize..8,
        extra in 0usize..18,
        density_pct in 0u32..=100,
    ) {
        let params = GenParams {
            min_ops,
            max_ops: min_ops + extra,
            recurrence_density: f64::from(density_pct) / 100.0,
            ..GenParams::default()
        };
        let loops = generate(seed, 4, &params).expect("valid params");
        for machine in MachineConfig::paper_configs() {
            for l in &loops {
                let s = SmsScheduler::new()
                    .schedule(&l.ddg, &machine, &SchedRequest::default())
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", l.name, machine.name()));
                s.verify(&l.ddg, &machine)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}\n{s}", l.name, machine.name()));
                prop_assert!(s.ii() >= mii(&l.ddg, &machine));
                prop_assert_eq!(s.scheduler(), "sms");
            }
        }
    }

    /// The cached path is transparent for SMS: scheduling inside a
    /// prebuilt `LoopAnalysis` must give bit-identical schedules to the
    /// from-scratch path (the PR 4 equivalence contract, extended to the
    /// new scheduler).
    #[test]
    fn sms_cached_and_uncached_paths_agree(seed in any::<u64>()) {
        let loops = generate(seed, 3, &GenParams::default()).expect("valid params");
        for machine in MachineConfig::paper_configs() {
            for l in &loops {
                let direct = SmsScheduler::new()
                    .schedule(&l.ddg, &machine, &SchedRequest::default())
                    .expect("schedulable");
                let ctx = LoopAnalysis::new(&l.ddg, &machine);
                let cached = SmsScheduler::new()
                    .schedule_in(&ctx, &SchedRequest::default())
                    .expect("schedulable");
                prop_assert_eq!(&direct, &cached, "{} on {}", l.name, machine.name());
            }
        }
    }
}

/// In-process determinism: a `--scheduler sms` batch over the built-in
/// suite and a generated corpus renders byte-identically for any worker
/// count.
#[test]
fn sms_batch_reports_are_worker_count_independent() {
    let options = CompileOptions { scheduler: SchedulerKind::Sms, ..CompileOptions::default() };
    for loops in [suite(7, 24), generate(7, 24, &GenParams::default()).unwrap()] {
        let mut renderings = Vec::new();
        for jobs in [1usize, 4] {
            let req = BatchRequest {
                machine: MachineConfig::p2l4(),
                budgets: vec![64, 32],
                strategies: vec![Strategy::BestOfAll, Strategy::Spill, Strategy::IncreaseIi],
                options,
                jobs: NonZeroUsize::new(jobs).unwrap(),
            };
            renderings.push(run_batch(&loops, &req).to_json(false));
        }
        assert_eq!(renderings[0], renderings[1], "sms batch differs across job counts");
        let doc = json::parse(&renderings[0]).expect("report parses");
        assert_eq!(doc.get("scheduler"), Some(&json::Value::Str("sms".into())));
    }
}

/// End-to-end through the binary: `regpipe suite --scheduler sms` emits a
/// byte-identical `BENCH_suite.json` for `--jobs 1` and `--jobs 4` (the
/// ISSUE 5 acceptance shape; CI repeats it on a larger corpus).
#[test]
fn cli_sms_suite_is_byte_identical_across_job_counts() {
    let dir = std::env::temp_dir().join(format!("regpipe-sms-suite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut reports = Vec::new();
    for jobs in ["1", "4"] {
        let out_path = dir.join(format!("r{jobs}.json"));
        let out = Command::new(env!("CARGO_BIN_EXE_regpipe"))
            .args([
                "suite",
                "--size",
                "12",
                "--seed",
                "7",
                "--scheduler",
                "sms",
                "--jobs",
                jobs,
            ])
            .arg("--out")
            .arg(&out_path)
            .output()
            .expect("spawn regpipe");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("scheduler sms"), "header names the scheduler:\n{stdout}");
        reports.push(std::fs::read_to_string(&out_path).expect("report emitted"));
    }
    assert_eq!(reports[0], reports[1], "--scheduler sms differs across --jobs");
    let doc = json::parse(&reports[0]).expect("report parses");
    assert_eq!(doc.get("scheduler"), Some(&json::Value::Str("sms".into())));
    let _ = std::fs::remove_dir_all(&dir);
}
