//! Property tests for the synthetic-kernel generator and the corpus
//! pipeline (ISSUE 3):
//!
//! * generator output for a fixed seed is **byte-stable** (down to the
//!   `.ddg` text rendering) and prefix-stable in the count;
//! * every generated kernel passes `regpipe_ddg` validation and
//!   schedules at some finite II on every paper machine;
//! * a corpus written to disk reloads identically and batch-compiles
//!   byte-identically for any worker count.

use std::num::NonZeroUsize;

use proptest::prelude::*;

use regpipe::core::{CompileOptions, Strategy};
use regpipe::ddg::textfmt;
use regpipe::exec::{run_batch, BatchRequest};
use regpipe::loops::{generate, load_corpus, write_corpus, GenParams, WeightDist};
use regpipe::machine::MachineConfig;
use regpipe::sched::{mii, HrmsScheduler, SchedRequest, Scheduler};

/// Render a whole generated corpus as the bytes `regpipe gen` would write.
fn corpus_bytes(seed: u64, count: usize, params: &GenParams) -> Vec<String> {
    generate(seed, count, params)
        .expect("valid params")
        .iter()
        .map(|l| format!("# weight {}\n{}", l.weight, textfmt::format(&l.ddg)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte stability: any seed reproduces its corpus exactly, and a
    /// longer run extends a shorter one without rewriting it.
    #[test]
    fn generator_is_byte_stable_for_any_seed(seed in any::<u64>(), count in 1usize..12) {
        let params = GenParams::default();
        let first = corpus_bytes(seed, count, &params);
        let second = corpus_bytes(seed, count, &params);
        prop_assert_eq!(&first, &second, "seed {} not byte-stable", seed);
        let extended = corpus_bytes(seed, count + 5, &params);
        prop_assert_eq!(&extended[..count], &first[..], "seed {} not prefix-stable", seed);
    }

    /// Validity and schedulability: every kernel, across the knob space,
    /// validates and reaches a verified schedule at some finite II.
    #[test]
    fn every_generated_kernel_validates_and_schedules(
        seed in any::<u64>(),
        min_ops in 2usize..8,
        extra in 0usize..18,
        density_pct in 0u32..=100,
    ) {
        let params = GenParams {
            min_ops,
            max_ops: min_ops + extra,
            recurrence_density: f64::from(density_pct) / 100.0,
            ..GenParams::default()
        };
        let loops = generate(seed, 4, &params).expect("valid params");
        prop_assert_eq!(loops.len(), 4);
        for machine in MachineConfig::paper_configs() {
            for l in &loops {
                l.ddg.validate().unwrap_or_else(|e| panic!("{}: {e}", l.name));
                let s = HrmsScheduler::new()
                    .schedule(&l.ddg, &machine, &SchedRequest::default())
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", l.name, machine.name()));
                s.verify(&l.ddg, &machine)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", l.name, machine.name()));
                prop_assert!(s.ii() >= mii(&l.ddg, &machine));
                prop_assert!(l.weight >= 1);
            }
        }
    }
}

/// End-to-end determinism: gen → write → load → batch at several worker
/// counts produces one `BENCH_suite.json`.
#[test]
fn corpus_batch_reports_are_worker_count_independent() {
    let dir = std::env::temp_dir().join(format!("regpipe-gen-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let params =
        GenParams { weights: WeightDist::Uniform { lo: 50, hi: 500 }, ..GenParams::default() };
    let loops = generate(0xFEED, 16, &params).unwrap();
    write_corpus(&dir, &loops).unwrap();
    let corpus = load_corpus(&dir).unwrap();
    assert_eq!(corpus.loops.len(), 16);

    let mut renderings = Vec::new();
    for jobs in [1usize, 2, 5] {
        let req = BatchRequest {
            machine: MachineConfig::p2l6(),
            budgets: vec![48, 24],
            strategies: vec![Strategy::BestOfAll, Strategy::IncreaseIi],
            options: CompileOptions::default(),
            jobs: NonZeroUsize::new(jobs).unwrap(),
        };
        renderings.push(run_batch(&corpus.loops, &req).to_json(false));
    }
    assert_eq!(renderings[0], renderings[1], "jobs 1 vs 2 disagree");
    assert_eq!(renderings[0], renderings[2], "jobs 1 vs 5 disagree");
    let _ = std::fs::remove_dir_all(&dir);
}
