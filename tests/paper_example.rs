//! Golden tests replaying the paper's worked example (Figures 2, 3, 5, 6)
//! end to end across the whole crate stack.

use regpipe::core::{SpillDriver, SpillDriverOptions};
use regpipe::loops::paper::example_loop;
use regpipe::prelude::*;
use regpipe::regalloc::LifetimeAnalysis;
use regpipe::sched::{Kernel, SchedRequest, Schedule};
use regpipe::spill::SelectHeuristic;

/// The didactic machine of the example: 4 universal units, latency 2.
fn machine() -> MachineConfig {
    MachineConfig::uniform(4, 2)
}

/// The paper's hand schedule of Figure 2c: Ld@0, *@2, +@4, St@6.
fn hand_schedule(ii: u32) -> Schedule {
    Schedule::new(ii, vec![0, 2, 4, 6])
}

#[test]
fn figure2_hand_schedule_is_valid_and_needs_11_registers() {
    let g = example_loop();
    let s = hand_schedule(1);
    s.verify(&g, &machine()).expect("the paper's schedule is valid");
    let lt = LifetimeAnalysis::new(&g, &s);
    assert_eq!(lt.max_live_variants(), 11, "Figure 2f");
    // V1 decomposes into LTSch = 4 and LTDist = 3 (Section 2.4).
    let v1 = lt.lifetime(OpId::new(0)).unwrap();
    assert_eq!((v1.sched_component(), v1.dist_component()), (4, 3));
}

#[test]
fn figure2_kernel_has_seven_stages() {
    let g = example_loop();
    let k = Kernel::new(&g, &hand_schedule(1));
    assert_eq!(k.stage_count(), 7, "Figure 2e shows stages 0..6");
    let stages: Vec<u32> = k.row(0).iter().map(|s| s.stage).collect();
    assert_eq!(stages, vec![0, 2, 4, 6]);
}

#[test]
fn figure3_increasing_ii_to_2_needs_7_registers() {
    let g = example_loop();
    let s = hand_schedule(2);
    s.verify(&g, &machine()).expect("still valid at II 2");
    let lt = LifetimeAnalysis::new(&g, &s);
    assert_eq!(lt.max_live_variants(), 7, "Figure 3d");
    // The scheduling component is unchanged, the distance component doubled.
    let v1 = lt.lifetime(OpId::new(0)).unwrap();
    assert_eq!((v1.sched_component(), v1.dist_component()), (4, 6));
}

#[test]
fn hrms_matches_or_beats_the_hand_schedules() {
    let g = example_loop();
    let m = machine();
    let s1 = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    assert_eq!(s1.ii(), 1, "resource bound 4 ops / 4 units");
    let lt = LifetimeAnalysis::new(&g, &s1);
    assert!(lt.max_live_variants() <= 11, "register-sensitive placement");
}

#[test]
fn figure6_spilling_v1_reaches_5_variant_registers_at_ii_2() {
    let g = example_loop();
    let m = machine();
    let driver = SpillDriver::new(SpillDriverOptions {
        heuristic: SelectHeuristic::MaxLt,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 16,
        ..SpillDriverOptions::default()
    });
    // Budget 6 = the paper's 5 variant registers + the invariant `a`.
    let out = driver.run(&g, &m, 6).expect("Figure 6 is reachable");
    out.schedule.verify(&out.ddg, &m).expect("valid");
    assert_eq!(out.spilled, 1, "only V1 is spilled");
    assert_eq!(out.schedule.ii(), 2, "the paper's spilled loop also runs at II 2");
    assert_eq!(out.allocation.variant_regs(), 5, "Figure 6d");
    // Producer-is-load optimization: no store added, two reloads.
    assert_eq!(out.ddg.memory_ops(), 4, "Ld + St + two reloads");
}

#[test]
fn figure5_spill_graph_structure() {
    use regpipe::spill::{candidates, select, spill};
    let g = example_loop();
    let analysis = LifetimeAnalysis::new(&g, &hand_schedule(1));
    let pool = candidates(&g, &analysis);
    let v1 = select(&pool, SelectHeuristic::MaxLt).unwrap().clone();
    let mut rewritten = g.clone();
    let report = spill(&mut rewritten, &v1);
    rewritten.validate().unwrap();
    // Figure 5c: no store (the producer is a load), one reload per use,
    // and the original register edges are gone.
    assert_eq!(report.stores_added, 0);
    assert_eq!(report.loads_added, 2);
    assert_eq!(rewritten.reg_consumers(OpId::new(0)).count(), 0);
    // Figure 5d: both reloads are bonded to their consumers.
    for &op in &report.new_ops {
        assert!(rewritten.out_edges(op).any(|e| e.is_fixed()));
        assert!(rewritten.is_value_marked_non_spillable(op));
    }
}

#[test]
fn compile_api_handles_the_example_at_every_budget() {
    let g = example_loop();
    let m = machine();
    let mut iis = Vec::new();
    for budget in (4..=12).rev() {
        let c = compile(&g, &m, budget, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("budget {budget}: {e}"));
        assert!(c.registers_used() <= budget);
        c.schedule().verify(c.ddg(), &m).unwrap();
        iis.push(c.ii());
    }
    // Tightening the budget costs throughput overall (heuristics allow
    // local non-monotonicity, but the ends must order correctly).
    assert!(iis.last().unwrap() >= iis.first().unwrap());
}
