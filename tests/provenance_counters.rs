//! Regression pins for scheduling provenance through the cached path.
//!
//! `Schedule::iis_tried` and the drivers' reschedule counters are the
//! paper's scheduling-effort measures (Figure 8c); the `LoopAnalysis`
//! caching layer must not change them. The exact values below were
//! captured from the pre-cache implementation on the paper's Figure 2
//! example and are pinned here verbatim.

use regpipe::loops::paper::example_loop;
use regpipe::machine::MachineConfig;
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;

/// `(machine, unconstrained (ii, iis_tried), spill@5 (ii, spilled, resched),
/// best@5 resched, increase-ii@7 (ii, resched))`.
struct Pin {
    machine: MachineConfig,
    unconstrained: (u32, u32),
    spill_at_5: (u32, u32, u32),
    best_at_5_reschedules: u32,
    increase_ii_at_7: (u32, u32),
}

fn pins() -> Vec<Pin> {
    vec![
        Pin {
            machine: MachineConfig::p1l4(),
            unconstrained: (2, 1),
            spill_at_5: (5, 2, 2),
            best_at_5_reschedules: 5,
            increase_ii_at_7: (6, 5),
        },
        Pin {
            machine: MachineConfig::p2l4(),
            unconstrained: (1, 1),
            spill_at_5: (5, 4, 4),
            best_at_5_reschedules: 7,
            increase_ii_at_7: (5, 5),
        },
        Pin {
            machine: MachineConfig::uniform(4, 2),
            unconstrained: (1, 1),
            spill_at_5: (3, 4, 3),
            best_at_5_reschedules: 5,
            increase_ii_at_7: (3, 3),
        },
    ]
}

#[test]
fn figure2_provenance_counters_match_the_precache_implementation() {
    let g = example_loop();
    for pin in pins() {
        let m = &pin.machine;
        let s = HrmsScheduler::new().schedule(&g, m, &SchedRequest::default()).unwrap();
        assert_eq!(
            (s.ii(), s.iis_tried()),
            pin.unconstrained,
            "{}: unconstrained schedule provenance",
            m.name()
        );

        let spill = compile(
            &g,
            m,
            5,
            &CompileOptions { strategy: Strategy::Spill, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(
            (spill.ii(), spill.spilled(), spill.reschedules()),
            pin.spill_at_5,
            "{}: spill strategy provenance",
            m.name()
        );

        let best = compile(&g, m, 5, &CompileOptions::default()).unwrap();
        assert_eq!(
            best.reschedules(),
            pin.best_at_5_reschedules,
            "{}: best-of-all reschedules (spill rounds + probes)",
            m.name()
        );
        assert_eq!(best.ii(), spill.ii(), "{}: best-of-all keeps the spill II here", m.name());

        let inc = compile(
            &g,
            m,
            7,
            &CompileOptions { strategy: Strategy::IncreaseIi, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(
            (inc.ii(), inc.reschedules()),
            pin.increase_ii_at_7,
            "{}: increase-II sweep provenance",
            m.name()
        );
    }
}

/// `iis_tried` counts every candidate II the search visited, failed
/// placement attempts included. This generated kernel (seed 10, 8 ops)
/// wedges HRMS at its MII on P2L4 and succeeds one II later — the counter
/// must record both candidates, exactly as the pre-cache search did.
#[test]
fn iis_tried_counts_failed_placement_attempts() {
    use regpipe::loops::{generate, GenParams};
    let params = GenParams { min_ops: 8, max_ops: 8, ..GenParams::default() };
    let l = generate(10, 1, &params).unwrap().remove(0);
    let m = MachineConfig::p2l4();
    let s = HrmsScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap();
    assert_eq!(s.ii(), 3);
    assert_eq!(s.iis_tried(), 2, "MII placement fails once before II 3 fits");
}
