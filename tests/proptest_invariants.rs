//! Property-based tests of the core invariants, on randomly generated
//! dependence graphs:
//!
//! * every schedule a scheduler returns verifies (dependences, bonds,
//!   resources) and respects `MII`;
//! * register allocation is conflict-free and never below `MaxLive`;
//! * the spill rewrite preserves graph well-formedness, marks its values
//!   non-spillable, and strictly shrinks the candidate pool (termination);
//! * compilation under a budget really meets the budget.

use proptest::prelude::*;

use regpipe::prelude::*;
use regpipe::regalloc::{LifetimeAnalysis, RotatingAllocator};
use regpipe::sched::{ComplexGroups, SchedRequest};
use regpipe::spill::{candidates, select, spill};

/// Strategy: a random well-formed loop body.
///
/// Zero-distance edges only run forward (so no zero-distance cycles) and
/// stores never source register edges; loop-carried edges may run anywhere.
fn arb_ddg() -> impl proptest::strategy::Strategy<Value = Ddg> {
    let kinds = prop::sample::select(vec![
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Copy,
        OpKind::Div,
    ]);
    // Fully qualified: both preludes glob-export a `Strategy` (proptest's
    // trait vs. regpipe's driver choice), so method syntax would be ambiguous.
    proptest::strategy::Strategy::prop_map(
        (2usize..14, proptest::collection::vec(kinds, 14), any::<u64>()),
        |(n, kinds, seed)| {
            // Simple deterministic edge derivation from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut b = DdgBuilder::new("prop");
            let ops: Vec<OpId> = (0..n).map(|i| b.add_op(kinds[i], format!("n{i}"))).collect();
            let edges = (next() % (3 * n as u64)) as usize;
            for _ in 0..edges {
                let f = ops[(next() % n as u64) as usize];
                let t = ops[(next() % n as u64) as usize];
                if f == t {
                    continue;
                }
                let from_store = kinds[f.index()] == OpKind::Store;
                let dist = (next() % 3) as u32;
                if from_store {
                    // Stores only source memory edges; keep them forward or
                    // loop-carried to avoid zero-distance cycles.
                    let d = if t > f { dist } else { dist.max(1) };
                    b.mem(f, t, d);
                } else if t > f {
                    b.reg_dist(f, t, dist);
                } else {
                    b.reg_dist(f, t, dist.max(1));
                }
            }
            if next() % 2 == 0 {
                let user = ops[(next() % n as u64) as usize];
                if kinds[user.index()] != OpKind::Load {
                    b.invariant("k", &[user]);
                }
            }
            b.build().expect("construction preserves well-formedness")
        },
    )
}

fn machines() -> Vec<MachineConfig> {
    vec![MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()]
}

/// Strategy: a loop body with complex-operation groups (Section 4.3).
///
/// Starts from a forward DAG of arithmetic ops and loads, optionally closes
/// a self-recurrence, then attaches spill-shaped bonded clusters exactly the
/// way the spill rewriter does: the producer bonded to a fresh spill store,
/// a fresh reload bonded to a consumer, and second reloads into the same
/// consumer staggered by one cycle each.
fn arb_bonded_ddg() -> impl proptest::strategy::Strategy<Value = Ddg> {
    proptest::strategy::Strategy::prop_map(
        (3usize..10, 1usize..4, any::<u64>()),
        |(n, clusters, seed)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut b = DdgBuilder::new("bonded");
            let kinds = [OpKind::Load, OpKind::Add, OpKind::Mul, OpKind::Div];
            let ops: Vec<OpId> = (0..n)
                .map(|i| {
                    let kind = kinds[(next() % kinds.len() as u64) as usize];
                    b.add_op(kind, format!("n{i}"))
                })
                .collect();
            // Forward register edges keep the base graph acyclic.
            for _ in 0..(next() % (2 * n as u64)) {
                let f = (next() % n as u64) as usize;
                let t = (next() % n as u64) as usize;
                if f < t {
                    b.reg_dist(ops[f], ops[t], (next() % 2) as u32);
                }
            }
            // Sometimes close a self-recurrence on one op.
            if next() % 2 == 0 {
                let v = ops[(next() % n as u64) as usize];
                b.reg_dist(v, v, 1 + (next() % 2) as u32);
            }
            // Bonded spill clusters. Fresh loads/stores touch each fixed
            // edge with a degree-one endpoint, so bond offsets stay
            // consistent by construction.
            let mut staggered_into = vec![0u32; n];
            let mut spilled = vec![false; n];
            for k in 0..clusters {
                // A value is spilled at most once: a second store bonded to
                // the same producer would occupy the same memory slot at
                // every II. Scan forward from a random index for a fresh one.
                let base = (next() % n as u64) as usize;
                let Some(producer) = (0..n).map(|i| (base + i) % n).find(|&i| !spilled[i])
                else {
                    break;
                };
                spilled[producer] = true;
                let producer = ops[producer];
                let store = b.add_op(OpKind::Store, format!("sp{k}"));
                b.bond(producer, store);
                let reload = b.add_op(OpKind::Load, format!("rl{k}"));
                let consumer = ops[(next() % n as u64) as usize];
                let prior = staggered_into[consumer.index()];
                if prior == 0 {
                    b.bond(reload, consumer);
                } else {
                    b.bond_staggered(reload, consumer, prior);
                }
                staggered_into[consumer.index()] += 1;
            }
            b.build().expect("bonded construction is well-formed")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedules_always_verify(g in arb_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let s = HrmsScheduler::new()
            .schedule(&g, m, &SchedRequest::default())
            .expect("every valid graph is schedulable");
        prop_assert!(s.verify(&g, m).is_ok(), "{:?}", s.verify(&g, m));
        prop_assert!(s.ii() >= mii(&g, m));
    }

    #[test]
    fn allocation_is_conflict_free_and_at_least_maxlive(g in arb_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let s = HrmsScheduler::new().schedule(&g, m, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&g, &s);
        let alloc = RotatingAllocator::new().allocate(&analysis);
        prop_assert!(alloc.total() >= analysis.max_live());
        // Conflict-freedom: simulate the steady state.
        let ii = i64::from(s.ii());
        let r = i64::from(alloc.variant_regs());
        if r > 0 {
            let lts: Vec<_> = analysis.lifetimes().collect();
            let horizon = lts.iter().map(|l| l.end()).max().unwrap_or(0) + 3 * ii;
            for t in -3 * ii..horizon {
                let mut seen: Vec<(i64, OpId)> = Vec::new();
                for lt in &lts {
                    let rho = i64::from(alloc.register(lt.producer()).unwrap());
                    let hi = (t - lt.start()).div_euclid(ii);
                    let lo = (t - lt.end()).div_euclid(ii) + 1;
                    for k in lo..=hi {
                        if lt.start() + k * ii <= t && t < lt.end() + k * ii {
                            let phys = (rho + k).rem_euclid(r);
                            prop_assert!(
                                !seen.iter().any(|&(p, o)| p == phys && o != lt.producer()),
                                "clash at t={t}"
                            );
                            seen.push((phys, lt.producer()));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spilling_preserves_validity_and_shrinks_the_pool(g in arb_ddg()) {
        let m = MachineConfig::p2l4();
        let mut g = g;
        let mut rounds = 0usize;
        loop {
            let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
            let analysis = LifetimeAnalysis::new(&g, &s);
            let pool = candidates(&g, &analysis);
            let Some(victim) = select(&pool, SelectHeuristic::MaxLtOverTraffic) else {
                break;
            };
            let victim = victim.clone();
            let before = pool.len();
            spill(&mut g, &victim);
            prop_assert!(g.validate().is_ok());
            // Termination argument: the spillable pool shrinks every round
            // (fresh values are born non-spillable).
            let s2 = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
            let analysis2 = LifetimeAnalysis::new(&g, &s2);
            prop_assert!(candidates(&g, &analysis2).len() < before);
            rounds += 1;
            prop_assert!(rounds <= 64, "spilling must terminate");
        }
    }

    #[test]
    fn compile_meets_any_reachable_budget(g in arb_ddg(), budget in 3u32..48) {
        let m = MachineConfig::p2l4();
        if let Ok(c) = compile(&g, &m, budget, &CompileOptions::default()) {
            prop_assert!(c.registers_used() <= budget);
            prop_assert!(c.schedule().verify(c.ddg(), &m).is_ok());
        }
    }

    #[test]
    fn bonded_graphs_schedule_with_groups_intact(g in arb_bonded_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let s = HrmsScheduler::new()
            .schedule(&g, m, &SchedRequest::default())
            .expect("bonded graphs are schedulable");
        prop_assert!(s.verify(&g, m).is_ok(), "{:?}", s.verify(&g, m));
        // Complex groups are atomic: every member starts exactly its bond
        // offset after the group leader (Section 4.3).
        let groups = ComplexGroups::new(&g, m);
        for (op, _) in g.ops() {
            let leader = groups.leader(groups.group_of(op));
            prop_assert_eq!(s.start(op) - s.start(leader), groups.offset(op));
        }
    }

    #[test]
    fn hrms_ordering_is_pred_xor_succ(g in arb_bonded_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let scheduler = HrmsScheduler::new();
        let base = mii(&g, m).max(1);
        let order = (base..base + 64)
            .find_map(|ii| scheduler.ordering(&g, m, ii))
            .expect("some feasible II for the timing analysis");
        let groups = ComplexGroups::new(&g, m);

        // Every group appears exactly once, represented by its leader.
        prop_assert_eq!(order.len(), groups.len());
        for &leader in &order {
            prop_assert_eq!(groups.leader(groups.group_of(leader)), leader);
        }

        // Group-level adjacency.
        let gc = groups.len();
        let mut succs = vec![std::collections::BTreeSet::new(); gc];
        let mut preds = vec![std::collections::BTreeSet::new(); gc];
        let mut self_cyclic = vec![false; gc];
        for e in g.edges() {
            let (gf, gt) = (groups.group_of(e.from()), groups.group_of(e.to()));
            if gf != gt {
                succs[gf].insert(gt);
                preds[gt].insert(gf);
            } else if e.distance() > 0 {
                // A carried edge inside one group closes a recurrence the
                // inter-group adjacency cannot see.
                self_cyclic[gf] = true;
            }
        }
        let reach = |from: usize, to: usize| -> bool {
            let mut seen = vec![false; gc];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                for &w in &succs[v] {
                    if w == to {
                        return true;
                    }
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            false
        };
        let cyclic: Vec<bool> = (0..gc).map(|v| self_cyclic[v] || reach(v, v)).collect();
        // Groups on a path through the recurrence region may legitimately
        // see both sides ordered (the paper's placement window case); the
        // XOR property is claimed for everything else.
        let exempt: Vec<bool> = (0..gc)
            .map(|v| {
                cyclic[v]
                    || ((0..gc).any(|c| cyclic[c] && reach(c, v))
                        && (0..gc).any(|c| cyclic[c] && reach(v, c)))
            })
            .collect();

        let mut done = vec![false; gc];
        for &leader in &order {
            let gi = groups.group_of(leader);
            let has_pred = preds[gi].iter().any(|&p| done[p]);
            let has_succ = succs[gi].iter().any(|&s| done[s]);
            if !exempt[gi] {
                prop_assert!(
                    !(has_pred && has_succ),
                    "group of {:?} ordered with both a predecessor and a successor placed",
                    leader
                );
            }
            done[gi] = true;
        }
    }

    #[test]
    fn lifetime_components_sum(g in arb_ddg()) {
        let m = MachineConfig::p1l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&g, &s);
        for lt in analysis.lifetimes() {
            prop_assert_eq!(lt.length(), lt.sched_component() + lt.dist_component());
            prop_assert!(lt.length() > 0);
            // The distance component is a multiple of the II.
            prop_assert_eq!(lt.dist_component() % i64::from(s.ii()), 0);
        }
    }
}
