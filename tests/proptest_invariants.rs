//! Property-based tests of the core invariants, on randomly generated
//! dependence graphs:
//!
//! * every schedule a scheduler returns verifies (dependences, bonds,
//!   resources) and respects `MII`;
//! * register allocation is conflict-free and never below `MaxLive`;
//! * the spill rewrite preserves graph well-formedness, marks its values
//!   non-spillable, and strictly shrinks the candidate pool (termination);
//! * compilation under a budget really meets the budget.

use proptest::prelude::*;

use regpipe::prelude::*;
use regpipe::regalloc::{LifetimeAnalysis, RotatingAllocator};
use regpipe::sched::SchedRequest;
use regpipe::spill::{candidates, select, spill};

/// Strategy: a random well-formed loop body.
///
/// Zero-distance edges only run forward (so no zero-distance cycles) and
/// stores never source register edges; loop-carried edges may run anywhere.
fn arb_ddg() -> impl proptest::strategy::Strategy<Value = Ddg> {
    let kinds = prop::sample::select(vec![
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Copy,
        OpKind::Div,
    ]);
    (2usize..14, proptest::collection::vec(kinds, 14), any::<u64>()).prop_map(
        |(n, kinds, seed)| {
            // Simple deterministic edge derivation from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut b = DdgBuilder::new("prop");
            let ops: Vec<OpId> =
                (0..n).map(|i| b.add_op(kinds[i], format!("n{i}"))).collect();
            let edges = (next() % (3 * n as u64)) as usize;
            for _ in 0..edges {
                let f = ops[(next() % n as u64) as usize];
                let t = ops[(next() % n as u64) as usize];
                if f == t {
                    continue;
                }
                let from_store = kinds[f.index()] == OpKind::Store;
                let dist = (next() % 3) as u32;
                if from_store {
                    // Stores only source memory edges; keep them forward or
                    // loop-carried to avoid zero-distance cycles.
                    let d = if t > f { dist } else { dist.max(1) };
                    b.mem(f, t, d);
                } else if t > f {
                    b.reg_dist(f, t, dist);
                } else {
                    b.reg_dist(f, t, dist.max(1));
                }
            }
            if next() % 2 == 0 {
                let user = ops[(next() % n as u64) as usize];
                if kinds[user.index()] != OpKind::Load {
                    b.invariant("k", &[user]);
                }
            }
            b.build().expect("construction preserves well-formedness")
        },
    )
}

fn machines() -> Vec<MachineConfig> {
    vec![MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedules_always_verify(g in arb_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let s = HrmsScheduler::new()
            .schedule(&g, m, &SchedRequest::default())
            .expect("every valid graph is schedulable");
        prop_assert!(s.verify(&g, m).is_ok(), "{:?}", s.verify(&g, m));
        prop_assert!(s.ii() >= mii(&g, m));
    }

    #[test]
    fn allocation_is_conflict_free_and_at_least_maxlive(g in arb_ddg(), m_idx in 0usize..3) {
        let m = &machines()[m_idx];
        let s = HrmsScheduler::new().schedule(&g, m, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&g, &s);
        let alloc = RotatingAllocator::new().allocate(&analysis);
        prop_assert!(alloc.total() >= analysis.max_live());
        // Conflict-freedom: simulate the steady state.
        let ii = i64::from(s.ii());
        let r = i64::from(alloc.variant_regs());
        if r > 0 {
            let lts: Vec<_> = analysis.lifetimes().collect();
            let horizon = lts.iter().map(|l| l.end()).max().unwrap_or(0) + 3 * ii;
            for t in -3 * ii..horizon {
                let mut seen: Vec<(i64, OpId)> = Vec::new();
                for lt in &lts {
                    let rho = i64::from(alloc.register(lt.producer()).unwrap());
                    let hi = (t - lt.start()).div_euclid(ii);
                    let lo = (t - lt.end()).div_euclid(ii) + 1;
                    for k in lo..=hi {
                        if lt.start() + k * ii <= t && t < lt.end() + k * ii {
                            let phys = (rho + k).rem_euclid(r);
                            prop_assert!(
                                !seen.iter().any(|&(p, o)| p == phys && o != lt.producer()),
                                "clash at t={t}"
                            );
                            seen.push((phys, lt.producer()));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spilling_preserves_validity_and_shrinks_the_pool(g in arb_ddg()) {
        let m = MachineConfig::p2l4();
        let mut g = g;
        let mut rounds = 0usize;
        loop {
            let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
            let analysis = LifetimeAnalysis::new(&g, &s);
            let pool = candidates(&g, &analysis);
            let Some(victim) = select(&pool, SelectHeuristic::MaxLtOverTraffic) else {
                break;
            };
            let victim = victim.clone();
            let before = pool.len();
            spill(&mut g, &victim);
            prop_assert!(g.validate().is_ok());
            // Termination argument: the spillable pool shrinks every round
            // (fresh values are born non-spillable).
            let s2 = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
            let analysis2 = LifetimeAnalysis::new(&g, &s2);
            prop_assert!(candidates(&g, &analysis2).len() < before);
            rounds += 1;
            prop_assert!(rounds <= 64, "spilling must terminate");
        }
    }

    #[test]
    fn compile_meets_any_reachable_budget(g in arb_ddg(), budget in 3u32..48) {
        let m = MachineConfig::p2l4();
        if let Ok(c) = compile(&g, &m, budget, &CompileOptions::default()) {
            prop_assert!(c.registers_used() <= budget);
            prop_assert!(c.schedule().verify(c.ddg(), &m).is_ok());
        }
    }

    #[test]
    fn lifetime_components_sum(g in arb_ddg()) {
        let m = MachineConfig::p1l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&g, &s);
        for lt in analysis.lifetimes() {
            prop_assert_eq!(lt.length(), lt.sched_component() + lt.dist_component());
            prop_assert!(lt.length() > 0);
            // The distance component is a multiple of the II.
            prop_assert_eq!(lt.dist_component() % i64::from(s.ii()), 0);
        }
    }
}
