//! The spill-policy differential harness (ISSUE 10's headline test):
//!
//! * over the `gen` knob space, every cell of the
//!   `scheduler × spill-policy × strategy × paper-machine` matrix that
//!   compiles produces a valid schedule that meets its register budget
//!   and never undercuts the exact oracle's proven-optimal II;
//! * every policy is a pure function of its inputs: recompiling a cell
//!   reproduces the schedule exactly;
//! * the `Paper` policy's exact spill decisions on the two documented
//!   kernels (Figure 2 chain, `docs/algorithms.md` join) are pinned byte
//!   for byte through the real binary, and the implicit default stays
//!   byte-identical to `--spill-policy paper`;
//! * the `docs/algorithms.md` worked example — `MinNextUse` strictly
//!   beating `Paper` on the 5-register Figure 2 chain — is enforced;
//! * per policy, the serve path agrees byte-identically between the
//!   in-process engine and the unix-socket transport.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use proptest::prelude::*;

use regpipe::core::{compile, CompileOptions, Strategy};
use regpipe::ddg::textfmt;
use regpipe::loops::{generate, paper, GenParams};
use regpipe::machine::MachineConfig;
use regpipe::sched::{mii, ExactScheduler, LoopAnalysis, SchedRequest, SchedulerKind};
use regpipe::spill::SpillPolicyKind;

fn machines() -> Vec<MachineConfig> {
    vec![MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()]
}

const STRATEGIES: [Strategy; 3] = [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll];

/// The schedulers the compile matrix sweeps inside the proptest. The
/// exact scheduler is the *oracle* there; its column of the matrix is
/// covered by the deterministic test below so the harness stays fast.
fn heuristics() -> impl Iterator<Item = SchedulerKind> {
    SchedulerKind::ALL.into_iter().filter(|k| *k != SchedulerKind::Exact)
}

/// One small kernel from the `gen` stream — the same seed-stable
/// generator `regpipe gen` uses, so every failure replays from its knobs.
fn small_kernel(seed: u64, max_ops: usize, rec_density: f64) -> regpipe::loops::BenchLoop {
    let params = GenParams {
        min_ops: 2,
        max_ops,
        recurrence_density: rec_density,
        ..GenParams::default()
    };
    generate(seed, 1, &params).expect("knobs are valid").remove(0)
}

fn cell_options(
    policy: SpillPolicyKind,
    strategy: Strategy,
    scheduler: SchedulerKind,
) -> CompileOptions {
    let mut options = CompileOptions::with_spill_policy(policy);
    options.strategy = strategy;
    options.scheduler = scheduler;
    options
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential harness: for every cell of the
    /// `policy × strategy × heuristic-scheduler` matrix on a generated
    /// kernel and paper machine, a successful compile verifies, meets
    /// the register budget, and achieves an II no lower than the exact
    /// oracle's proven optimum for the unspilled loop (spilling only
    /// adds operations, so a proven optimum is a hard floor). Each cell
    /// is also recompiled once: policies are pure functions of the
    /// candidate pool, so the schedule must reproduce exactly.
    #[test]
    fn every_policy_cell_is_valid_feasible_and_never_beats_the_oracle(
        seed in any::<u64>(),
        max_ops in 2usize..=12,
        rec_pct in 0u32..=60,
        m_idx in 0usize..3,
        tight in any::<bool>(),
    ) {
        let l = small_kernel(seed, max_ops, f64::from(rec_pct) / 100.0);
        let m = &machines()[m_idx];
        let budget = if tight { 8 } else { 16 };
        let floor = mii(&l.ddg, m);
        let outcome = ExactScheduler::new()
            .solve_in(&LoopAnalysis::new(&l.ddg, m), &SchedRequest::default())
            .expect("generated kernels are schedulable");
        // The tightest known lower bound on any achieved II.
        let optimum = if outcome.proven() { outcome.schedule.ii() } else { floor };
        for policy in SpillPolicyKind::ALL {
            for strategy in STRATEGIES {
                for scheduler in heuristics() {
                    let options = cell_options(policy, strategy, scheduler);
                    // Tight budgets are allowed to be unreachable; the
                    // differential claims are about successful compiles.
                    let Ok(c) = compile(&l.ddg, m, budget, &options) else { continue };
                    let cell = format!("{policy}/{strategy:?}/{scheduler} @ {budget} regs");
                    prop_assert!(
                        c.schedule().verify(c.ddg(), m).is_ok(),
                        "{cell}: invalid schedule: {:?}",
                        c.schedule().verify(c.ddg(), m)
                    );
                    prop_assert!(
                        c.registers_used() <= budget,
                        "{cell}: {} registers over the budget",
                        c.registers_used()
                    );
                    prop_assert!(
                        c.ii() >= optimum,
                        "{cell}: II {} undercuts the proven optimum {optimum}",
                        c.ii()
                    );
                    let again = compile(&l.ddg, m, budget, &options)
                        .expect("a cell that compiled once compiles again");
                    prop_assert!(
                        again.schedule() == c.schedule() && again.spilled() == c.spilled(),
                        "{cell}: policy is not deterministic"
                    );
                }
            }
        }
    }
}

/// The exact-scheduler column of the matrix, on a fixed seed set so the
/// branch-and-bound cost stays bounded: every policy × strategy cell
/// driven by the oracle itself verifies, fits, and respects MII.
#[test]
fn exact_scheduler_cells_compile_for_every_policy() {
    let m = MachineConfig::p2l4();
    let mut compiled_cells = 0;
    for seed in [1u64, 5, 9, 13] {
        let l = small_kernel(seed, 9, 0.25);
        let floor = mii(&l.ddg, &m);
        for policy in SpillPolicyKind::ALL {
            for strategy in STRATEGIES {
                let options = cell_options(policy, strategy, SchedulerKind::Exact);
                let Ok(c) = compile(&l.ddg, &m, 12, &options) else { continue };
                compiled_cells += 1;
                assert!(
                    c.schedule().verify(c.ddg(), &m).is_ok(),
                    "{policy}/{strategy:?}: invalid exact-driven schedule (seed {seed})"
                );
                assert!(c.registers_used() <= 12, "{policy}/{strategy:?} (seed {seed})");
                assert!(c.ii() >= floor, "{policy}/{strategy:?} (seed {seed})");
            }
        }
    }
    assert!(compiled_cells > 0, "the exact column must exercise real compiles");
}

/// The `docs/algorithms.md` worked example, enforced: on the Figure 2
/// chain squeezed to 5 registers, `MinNextUse` strictly beats `Paper`
/// on both axes — II 3 vs 5 and 3 spills vs 4 — because it sacrifices
/// the short-lived multiply feed instead of the long `y(i-3)` lifetime.
/// Reproduce: `regpipe compile fig2.ddg --strategy spill --regs 5
/// --spill-policy min-next-use`.
#[test]
fn min_next_use_beats_paper_on_the_five_register_fig2_chain() {
    let g = paper::example_loop();
    let m = MachineConfig::p2l4();
    let run = |policy| {
        let mut options = CompileOptions::with_spill_policy(policy);
        options.strategy = Strategy::Spill;
        compile(&g, &m, 5, &options).expect("fig2 fits 5 registers under spilling")
    };
    let paper_c = run(SpillPolicyKind::Paper);
    let min_c = run(SpillPolicyKind::MinNextUse);
    assert_eq!((paper_c.ii(), paper_c.spilled()), (5, 4), "Paper at 5 regs");
    assert_eq!((min_c.ii(), min_c.spilled()), (3, 3), "MinNextUse at 5 regs");
    assert!(min_c.ii() < paper_c.ii() && min_c.spilled() < paper_c.spilled());
}

// ---------------------------------------------------------------------------
// CLI pins: the Paper policy's exact spill decisions on the documented
// kernels, byte for byte through the real binary.
// ---------------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regpipe"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regpipe-policy-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ok(mut cmd: Command) -> Output {
    let out = cmd.output().expect("spawn regpipe");
    assert!(
        out.status.success(),
        "regpipe failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

/// Figure 2 at 8 registers: the Paper policy spills the two victims the
/// pre-registry driver chose, lands at II 2, and the implicit default is
/// byte-identical to `--spill-policy paper` — the refactor moved the
/// ranking behind a trait without changing a single decision.
#[test]
fn paper_policy_pins_the_fig2_spill_decisions() {
    let dir = scratch_dir("fig2-pin");
    let ddg = dir.join("fig2.ddg");
    fs::write(&ddg, textfmt::format(&paper::example_loop())).expect("write ddg");
    let compile_with = |extra: &[&str]| {
        let mut c = bin();
        c.arg("compile").arg(&ddg).args(["--strategy", "spill", "--regs", "8"]).args(extra);
        String::from_utf8(run_ok(c).stdout).unwrap()
    };
    let explicit = compile_with(&["--spill-policy", "paper"]);
    assert_eq!(
        explicit,
        "fig2: II = 2 (MII 1), registers = 8/8, spilled = 2, strategy = Spill\n\
         \n\
         kernel: II=2, SC=6\n\
         \x20\x20\x20\x200: Ld[0] Ld.l0[0] *[1]\n\
         \x20\x20\x20\x201: Ld.l1[2] +[3] St[5]\n\
         \n"
    );
    assert_eq!(compile_with(&[]), explicit, "the implicit default must be the paper policy");
    let _ = fs::remove_dir_all(&dir);
}

/// The `docs/algorithms.md` join kernel at 4 registers: the Paper policy
/// spills the long `a` lifetime plus the `c` feed (3 reloads) and settles
/// at II 4 — pinned byte for byte so the ranking can never drift quietly.
#[test]
fn paper_policy_pins_the_join_kernel_spill_decisions() {
    let dir = scratch_dir("join-pin");
    let ddg = dir.join("join.ddg");
    fs::write(
        &ddg,
        "loop join\nop a load\nop b store\nop c load\nop d mul\nop s store\n\
         edge a -> b reg 0\nedge a -> d reg 0\nedge c -> d reg 0\nedge d -> s reg 0\n",
    )
    .expect("write ddg");
    let out = run_ok({
        let mut c = bin();
        c.arg("compile").arg(&ddg).args([
            "--strategy",
            "spill",
            "--regs",
            "4",
            "--spill-policy",
            "paper",
        ]);
        c
    });
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        "join: II = 4 (MII 2), registers = 3/4, spilled = 3, strategy = Spill\n\
         \n\
         kernel: II=4, SC=3\n\
         \x20\x20\x20\x200: a[0] c[0]\n\
         \x20\x20\x20\x201: a.l0[0] d[1] s[2]\n\
         \x20\x20\x20\x202: a.l1[0]\n\
         \x20\x20\x20\x203: b[0] c.l0[0]\n\
         \n"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Per policy, the serve path is transport-independent: a tight-budget
/// replay over a real unix socket produces the same response bytes as
/// the in-process engine, at different client `--jobs` values.
#[cfg(unix)]
#[test]
fn socket_and_in_process_replays_agree_for_every_policy() {
    let dir = scratch_dir("socket-parity");
    for policy in ["paper", "min-next-use", "furthest-next-use", "round-robin"] {
        let socket = dir.join(format!("{policy}.sock"));
        let mut daemon = bin()
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        for _ in 0..100 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(socket.exists(), "{policy}: daemon never bound its socket");

        let base = |c: &mut Command| {
            c.args(["replay", "--seed", "11", "--count", "15", "--repeat", "2"])
                .args(["--budgets", "8", "--spill-policy", policy])
                .stderr(Stdio::null());
        };
        let socket_stream = {
            let mut c = bin();
            base(&mut c);
            c.args(["--jobs", "4", "--shutdown"]).arg("--socket").arg(&socket);
            String::from_utf8(run_ok(c).stdout).unwrap()
        };
        let in_process = {
            let mut c = bin();
            base(&mut c);
            c.args(["--jobs", "1"]);
            String::from_utf8(run_ok(c).stdout).unwrap()
        };
        assert!(!socket_stream.is_empty());
        assert_eq!(socket_stream, in_process, "{policy}: transport changed bytes");
        assert!(daemon.wait().expect("daemon exit").success(), "{policy}: unclean daemon exit");
    }
    let _ = fs::remove_dir_all(&dir);
}
