//! End-to-end tests of the compile daemon: the JSON-lines protocol over
//! the real binary (stdin and unix socket), the determinism gate
//! (cache on vs off, client `--jobs` 1 vs 4 — byte-identical response
//! streams), and the cache-counter arithmetic the `stats` op exposes.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use regpipe::exec::json::{parse as parse_json, Value};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regpipe"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regpipe-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `regpipe serve` on stdin, feeding `input`, returning the output.
fn serve_stdin(input: &str, extra_args: &[&str]) -> Output {
    let mut child = bin()
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn regpipe serve");
    child.stdin.take().unwrap().write_all(input.as_bytes()).expect("write requests");
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));
    out
}

fn run_ok(mut cmd: Command) -> Output {
    let out = cmd.output().expect("spawn regpipe");
    assert!(
        out.status.success(),
        "regpipe failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

const DDG: &str = "loop t\\nop ld load\\nop a add\\nop st store\\n\
                   edge ld -> a reg 0\\nedge a -> st reg 0\\n";

/// Malformed requests get structured `{"ok":false,...}` error lines; the
/// daemon neither panics nor closes the connection, and later requests on
/// the same stream still work.
#[test]
fn malformed_requests_get_structured_errors_not_disconnects() {
    let input = "\
        this is not json\n\
        {\"id\":1}\n\
        {\"id\":2,\"op\":\"warp\"}\n\
        {\"id\":3,\"op\":\"compile\"}\n\
        {\"id\":4,\"op\":\"compile\",\"ddg\":\"op x zap\"}\n\
        [1,2,3]\n\
        {\"id\":5,\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"spill_policy\":\"warp\"}\n\
        {\"id\":6,\"op\":\"ping\"}\n";
    let out = serve_stdin(input, &[]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "one response per request:\n{stdout}");
    // Each error carries the structured taxonomy object: requests broken
    // at the protocol layer are "protocol", well-framed compiles with bad
    // parameters are "invalid".
    let kinds =
        ["protocol", "protocol", "protocol", "invalid", "invalid", "protocol", "invalid"];
    for (i, (line, want_kind)) in lines.iter().zip(kinds).enumerate() {
        let doc = parse_json(line).unwrap_or_else(|e| panic!("line {i} not JSON: {e}\n{line}"));
        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false), "line {i}: {line}");
        let error = doc.get("error").unwrap_or_else(|| panic!("line {i}: {line}"));
        assert_eq!(
            error.get("kind").and_then(Value::as_str),
            Some(want_kind),
            "line {i}: {line}"
        );
        assert!(error.get("message").and_then(Value::as_str).is_some(), "line {i}: {line}");
    }
    // Requests that parsed far enough to carry an id get it echoed back.
    assert!(lines[2].starts_with("{\"id\":2,"), "{}", lines[2]);
    // Unknown spill policies name the registry in the error message.
    assert!(lines[6].contains("unknown spill policy"), "{}", lines[6]);
    // The connection survived all of it.
    assert_eq!(lines[7], "{\"id\":6,\"ok\":true,\"op\":\"pong\"}");
}

/// Oversized request lines are bounded: the daemon answers with a
/// structured error without buffering the line, keeps the framing, and
/// still answers the next request.
#[test]
fn oversized_requests_are_bounded_and_do_not_break_framing() {
    let huge = format!("{{\"op\":\"compile\",\"ddg\":\"{}\"}}", "x".repeat(4096));
    let input = format!("{huge}\n{{\"id\":1,\"op\":\"ping\"}}\n");
    let out = serve_stdin(&input, &["--max-request-bytes", "256"]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    let err = parse_json(lines[0]).expect("error line is JSON");
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    let error = err.get("error").expect("error object");
    assert_eq!(error.get("kind").and_then(Value::as_str), Some("oversized"), "{}", lines[0]);
    assert!(
        error.get("message").and_then(Value::as_str).unwrap().contains("256-byte limit"),
        "{}",
        lines[0]
    );
    assert_eq!(lines[1], "{\"id\":1,\"ok\":true,\"op\":\"pong\"}");
}

/// Identical compile requests hit the cache: misses only on first sight,
/// hits afterwards, and the response bytes are identical either way.
#[test]
fn repeated_requests_hit_the_cache_and_counters_add_up() {
    let compile = format!("{{\"id\":0,\"op\":\"compile\",\"ddg\":\"{DDG}\",\"budget\":16}}");
    let input = format!("{compile}\n{compile}\n{compile}\n{{\"op\":\"stats\"}}\n");
    let out = serve_stdin(&input, &[]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4);
    assert_eq!(lines[0], lines[1], "hit must be byte-identical to miss");
    assert_eq!(lines[1], lines[2]);
    assert!(lines[0].contains("\"status\":\"fitted\""), "{}", lines[0]);
    let stats = parse_json(lines[3]).expect("stats is JSON");
    let totals = stats.get("totals").expect("totals object");
    let hits = totals.get("hits").unwrap().as_i64().unwrap();
    let misses = totals.get("misses").unwrap().as_i64().unwrap();
    assert_eq!((hits, misses), (2, 1));
    assert_eq!(
        hits + misses,
        stats.get("compile_requests").unwrap().as_i64().unwrap(),
        "hits + misses must equal compile requests"
    );
}

/// The ISSUE acceptance workload: replaying the `gen --seed 7 --count
/// 200` corpus twice shows a cache hit count at least the first pass's
/// miss count, and the counters account for every request.
#[test]
fn two_pass_replay_of_the_gen_corpus_hits_at_least_first_pass_misses() {
    let dir = scratch_dir("two-pass");
    let stats_path = dir.join("stats.json");
    run_ok({
        let mut c = bin();
        c.args(["replay", "--seed", "7", "--count", "200", "--repeat", "2", "--jobs", "4"])
            .args(["--stats-out"])
            .arg(&stats_path)
            .stdout(Stdio::null());
        c
    });
    let stats = parse_json(&fs::read_to_string(&stats_path).expect("stats written")).unwrap();
    let totals = stats.get("totals").expect("totals object");
    let hits = totals.get("hits").unwrap().as_i64().unwrap();
    let misses = totals.get("misses").unwrap().as_i64().unwrap();
    let evictions = totals.get("evictions").unwrap().as_i64().unwrap();
    let requests = stats.get("compile_requests").unwrap().as_i64().unwrap();
    assert_eq!(requests, 400, "200 kernels x 2 passes");
    assert!(hits >= misses, "pass 2 must hit at least pass 1's misses: {hits} < {misses}");
    assert_eq!(hits + misses, requests, "every request is a hit or a miss");
    assert_eq!(evictions, 0, "the default budget must hold this corpus");
    assert_eq!(stats.get("protocol_errors").unwrap().as_i64(), Some(0));
    let _ = fs::remove_dir_all(&dir);
}

/// The determinism gate, in-process edition: response streams are
/// byte-identical with the cache on vs off and at `--jobs` 1 vs 4, for
/// every registered scheduler.
#[test]
fn replay_streams_are_identical_across_cache_and_jobs_for_all_schedulers() {
    let dir = scratch_dir("det-gate");
    // The exact oracle leg is smaller: branch-and-bound on the default
    // gen kernels is heavier than one heuristic pass, and the gate is
    // about bytes, not volume.
    for (scheduler, count) in [("hrms", "30"), ("sms", "30"), ("asap", "30"), ("exact", "12")] {
        let mut streams = Vec::new();
        for (tag, args) in [
            ("cache-jobs1", &["--jobs", "1"][..]),
            ("cache-jobs4", &["--jobs", "4"]),
            ("nocache-jobs4", &["--jobs", "4", "--no-cache"]),
        ] {
            let out = run_ok({
                let mut c = bin();
                c.args(["replay", "--seed", "11", "--count", count, "--repeat", "2"])
                    .args(["--scheduler", scheduler])
                    .args(args)
                    .stderr(Stdio::null());
                c
            });
            streams.push((tag, String::from_utf8(out.stdout).unwrap()));
        }
        assert!(!streams[0].1.is_empty());
        assert_eq!(streams[0].1, streams[1].1, "{scheduler}: --jobs changed bytes");
        assert_eq!(streams[0].1, streams[2].1, "{scheduler}: cache changed bytes");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The same determinism gate over the spill-policy axis: for every
/// registered policy, a tight-budget replay (budget 8 forces real spill
/// decisions) is byte-identical with the cache on vs off and at `--jobs`
/// 1 vs 4 — so every policy's victim ranking is deterministic end to end
/// and the cache key separates the policies correctly.
#[test]
fn replay_streams_are_identical_across_cache_and_jobs_for_all_spill_policies() {
    for policy in ["paper", "min-next-use", "furthest-next-use", "round-robin"] {
        let mut streams = Vec::new();
        for args in [&["--jobs", "1"][..], &["--jobs", "4"], &["--jobs", "4", "--no-cache"]] {
            let out = run_ok({
                let mut c = bin();
                c.args(["replay", "--seed", "11", "--count", "25", "--repeat", "2"])
                    .args(["--budgets", "8", "--spill-policy", policy])
                    .args(args)
                    .stderr(Stdio::null());
                c
            });
            streams.push(String::from_utf8(out.stdout).unwrap());
        }
        assert!(!streams[0].is_empty());
        assert_eq!(streams[0], streams[1], "{policy}: --jobs changed bytes");
        assert_eq!(streams[0], streams[2], "{policy}: cache changed bytes");
    }
}

/// The ISSUE 8 determinism fix, CLI edition: `suite --scheduler exact`
/// and `regpipe gap` reports must be byte-identical at `--jobs 1` vs
/// `--jobs 4` (the serve cache on/off half of the gate is the exact leg
/// of `replay_streams_are_identical_across_cache_and_jobs_for_all_schedulers`).
#[test]
fn suite_exact_and_gap_reports_are_byte_identical_across_jobs() {
    let dir = scratch_dir("exact-jobs");
    let mut suites = Vec::new();
    let mut gaps = Vec::new();
    for jobs in ["1", "4"] {
        let suite_path = dir.join(format!("suite-{jobs}.json"));
        run_ok({
            let mut c = bin();
            c.args(["suite", "--size", "8", "--scheduler", "exact", "--jobs", jobs, "--out"])
                .arg(&suite_path)
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            c
        });
        suites.push(fs::read_to_string(&suite_path).expect("suite report written"));
        let gap_path = dir.join(format!("gap-{jobs}.json"));
        run_ok({
            let mut c = bin();
            c.args(["gap", "--count", "15", "--jobs", jobs, "--out"])
                .arg(&gap_path)
                .stdout(Stdio::null());
            c
        });
        gaps.push(fs::read_to_string(&gap_path).expect("gap report written"));
    }
    assert_eq!(suites[0], suites[1], "suite --scheduler exact differs across --jobs");
    assert!(suites[0].contains("\"scheduler\":\"exact\""), "{}", suites[0]);
    assert_eq!(gaps[0], gaps[1], "BENCH_gap.json differs across --jobs");
    assert!(gaps[0].contains("\"schema\":\"regpipe-bench-gap/v2\""));
    let _ = fs::remove_dir_all(&dir);
}

/// The same gate over the real unix socket transport, concurrent clients
/// included, with a clean shutdown at the end.
#[cfg(unix)]
#[test]
fn socket_transport_matches_stdin_and_survives_concurrent_clients() {
    let dir = scratch_dir("socket");
    let socket = dir.join("daemon.sock");
    let mut daemon = bin()
        .arg("serve")
        .arg("--socket")
        .arg(&socket)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    // Wait for the socket to appear.
    for _ in 0..100 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    let replay = |jobs: &str, stats: Option<&PathBuf>, shutdown: bool| -> String {
        let mut c = bin();
        c.args(["replay", "--seed", "11", "--count", "20", "--repeat", "2", "--jobs", jobs])
            .arg("--socket")
            .arg(&socket)
            .stderr(Stdio::null());
        if let Some(path) = stats {
            c.arg("--stats-out").arg(path);
        }
        if shutdown {
            c.arg("--shutdown");
        }
        String::from_utf8(run_ok(c).stdout).unwrap()
    };
    let jobs1 = replay("1", None, false);
    let stats_path = dir.join("stats.json");
    let jobs4 = replay("4", Some(&stats_path), true);
    assert_eq!(jobs1, jobs4, "socket streams differ across --jobs");

    // In-process replay of the same workload produces the same bytes.
    let out = run_ok({
        let mut c = bin();
        c.args(["replay", "--seed", "11", "--count", "20", "--repeat", "2", "--jobs", "2"])
            .stderr(Stdio::null());
        c
    });
    assert_eq!(jobs1, String::from_utf8(out.stdout).unwrap(), "transport changed bytes");

    // Counters: both socket replays' compiles are accounted for (the
    // in-process replay above ran its own server and is not included).
    let stats = parse_json(&fs::read_to_string(&stats_path).unwrap()).unwrap();
    let totals = stats.get("totals").expect("totals object");
    let hits = totals.get("hits").unwrap().as_i64().unwrap();
    let misses = totals.get("misses").unwrap().as_i64().unwrap();
    assert_eq!(hits + misses, stats.get("compile_requests").unwrap().as_i64().unwrap());
    assert_eq!(misses, 20, "one miss per distinct key across both replays");
    assert_eq!(hits, 60, "2 x 40 socket requests total, all but the first 20 hit");

    // --shutdown stopped the daemon and removed the socket file.
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited uncleanly");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
    let _ = fs::remove_dir_all(&dir);
}

/// `bench-serve` writes a deterministic, parseable report whose counters
/// are self-consistent; timing fields stay out without the opt-in.
#[test]
fn bench_serve_report_is_deterministic_and_self_consistent() {
    let dir = scratch_dir("bench-serve");
    let mut reports = Vec::new();
    for name in ["a.json", "b.json"] {
        let path = dir.join(name);
        run_ok({
            let mut c = bin();
            c.args(["bench-serve", "--count", "10", "--repeat", "2", "--budgets", "32"])
                .args(["--out"])
                .arg(&path)
                .env_remove("REGPIPE_BENCH_TIMING")
                .stdout(Stdio::null());
            c
        });
        reports.push(fs::read_to_string(&path).expect("report written"));
    }
    assert_eq!(reports[0], reports[1], "untimed BENCH_serve.json must be byte-stable");
    let doc = parse_json(&reports[0]).expect("report parses");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("regpipe-bench-serve/v2"));
    assert_eq!(doc.get("spill_policy").unwrap().as_str(), Some("paper"));
    let requests = doc.get("requests").unwrap().as_i64().unwrap();
    let hits = doc.get("hits").unwrap().as_i64().unwrap();
    let misses = doc.get("misses").unwrap().as_i64().unwrap();
    assert_eq!(requests, 20);
    assert_eq!(hits + misses, requests);
    assert_eq!(doc.get("hit_rate").unwrap().as_f64(), Some(0.5));
    assert!(doc.get("total_wall_us").is_none(), "timing is opt-in");
    assert!(doc.get("compiles_per_sec").is_none(), "timing is opt-in");
    let _ = fs::remove_dir_all(&dir);
}

/// The new verbs are documented (with their flags) in `help`, and bad
/// flag values fail cleanly.
#[test]
fn serve_verbs_are_documented_and_validated() {
    let out = run_ok({
        let mut c = bin();
        c.arg("help");
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "regpipe serve",
        "regpipe replay",
        "regpipe chaos",
        "regpipe bench-serve",
        "--socket",
        "--repeat",
        "--cache-dir",
        "--deadline-ms",
        "--retry",
        "--spill-policy",
    ] {
        assert!(stdout.contains(needle), "help missing '{needle}'");
    }
    for topic in ["serve", "replay", "bench-serve"] {
        let out = run_ok({
            let mut c = bin();
            c.args(["help", topic]);
            c
        });
        assert!(String::from_utf8(out.stdout).unwrap().contains("--no-cache"), "help {topic}");
    }
    let out = run_ok({
        let mut c = bin();
        c.args(["help", "chaos"]);
        c
    });
    assert!(String::from_utf8(out.stdout).unwrap().contains("--cycles"), "help chaos");
    for (args, needle) in [
        (&["replay", "--count", "0"][..], "--count"),
        (&["replay", "--repeat", "nope"], "--repeat"),
        (&["replay", "--source", "warp"], "unknown --source"),
        (&["replay", "--scheduler", "warp"], "unknown scheduler"),
        (&["replay", "--retry", "0"], "--retry"),
        (&["replay", "--spill-policy", "warp"], "unknown spill policy"),
        (&["serve", "--spill-policy", "warp"], "unknown spill policy"),
        (&["bench-serve", "--spill-policy", "warp"], "unknown spill policy"),
        (&["serve", "--cache-bytes", "0"], "--cache-bytes"),
        (&["serve", "--deadline-ms", "0"], "--deadline-ms"),
        (&["chaos", "--count", "3"], "--count"),
        (&["chaos", "--cycles", "0"], "--cycles"),
        (&["bench-serve", "--machine", "m9"], "unknown machine"),
    ] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}
