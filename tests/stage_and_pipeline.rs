//! Integration tests for the two scheduling extensions: the stage-scheduling
//! post-pass and whole-pipeline emission.

use regpipe::loops::{kernels, suite};
use regpipe::prelude::*;
use regpipe::regalloc::LifetimeAnalysis;
use regpipe::sched::{stage_schedule, AsapScheduler, PipelinedLoop, SchedRequest, Scheduler};

#[test]
fn stage_scheduling_never_hurts_across_the_suite() {
    let loops = suite(909, 60);
    let m = MachineConfig::p2l4();
    for l in &loops {
        for sched in [
            HrmsScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap(),
            AsapScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap(),
        ] {
            let before = LifetimeAnalysis::new(&l.ddg, &sched);
            let post = stage_schedule(&l.ddg, &m, &sched);
            post.verify(&l.ddg, &m).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert_eq!(post.ii(), sched.ii(), "{}: II untouched", l.name);
            let after = LifetimeAnalysis::new(&l.ddg, &post);
            // The pass minimizes the lifetime sum; the sum bounds average
            // pressure, so it must not grow.
            let sum = |a: &LifetimeAnalysis| a.lifetimes().map(|lt| lt.length()).sum::<i64>();
            assert!(
                sum(&after) <= sum(&before),
                "{}: lifetime sum grew {} -> {}",
                l.name,
                sum(&before),
                sum(&after)
            );
        }
    }
}

#[test]
fn stage_scheduling_preserves_modulo_slots() {
    let g = kernels::state_fragment();
    let m = MachineConfig::p2l4();
    let s = AsapScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    let post = stage_schedule(&g, &m, &s);
    let ii = i64::from(s.ii());
    for id in g.op_ids() {
        assert_eq!(post.start(id).rem_euclid(ii), s.start(id).rem_euclid(ii));
    }
}

#[test]
fn pipeline_trace_is_resource_legal_cycle_by_cycle() {
    use regpipe::machine::Mrt;
    // The modulo property promises the flat trace never oversubscribes a
    // functional unit in any absolute cycle; check it directly.
    let g = kernels::hydro_fragment();
    let m = MachineConfig::p1l4();
    let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    let p = PipelinedLoop::new(&g, &s);
    let trace = p.trace(&s, 12);
    let horizon = trace.iter().map(|e| e.cycle).max().unwrap() + 1;
    // An MRT with II == horizon is a plain (non-modulo) reservation table.
    let mut table = Mrt::new(&m, u32::try_from(horizon + 1).unwrap());
    for e in &trace {
        assert!(
            table.try_place(g.op(e.op).kind(), e.cycle),
            "unit oversubscribed at absolute cycle {} by {}",
            e.cycle,
            g.op(e.op).name()
        );
    }
}

#[test]
fn pipeline_code_size_grows_with_stage_count() {
    let g = kernels::inner_product();
    let m = MachineConfig::p2l6();
    let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
    let p = PipelinedLoop::new(&g, &s);
    assert_eq!(p.code_size(), p.prologue_ops() + g.num_ops() + p.epilogue_ops());
    if s.stage_count() == 1 {
        assert_eq!(p.code_size(), g.num_ops());
    } else {
        assert!(p.code_size() > g.num_ops());
    }
}

#[test]
fn compiled_loops_emit_pipelines() {
    let m = MachineConfig::p2l4();
    for g in kernels::all_kernels() {
        let c = compile(&g, &m, 16, &CompileOptions::default()).unwrap();
        let p = PipelinedLoop::new(c.ddg(), c.schedule());
        assert_eq!(p.ii(), c.ii());
        let txt = p.to_string();
        assert!(txt.contains("kernel"));
    }
}
