//! Equivalence gate for the `LoopAnalysis` caching layer.
//!
//! The per-loop analysis context must be a pure optimization: every
//! schedule, allocation, spill decision and provenance counter has to be
//! byte-identical whether the drivers share one context across probes and
//! rounds (the production path) or rebuild everything from scratch on every
//! scheduler call (the reference path, obtained by hiding the
//! `schedule_in` override behind a wrapper scheduler). A second family of
//! properties checks cache *invalidation*: after each spill rewrite, a
//! context rebuilt on the mutated graph agrees with the standalone
//! computations (groups, MII, RecMII, ordering, schedules) on that graph.

use proptest::prelude::*;

use regpipe::core::{BestOfAllDriver, IncreaseIiDriver, SpillDriver, SpillDriverOptions};
use regpipe::ddg::Ddg;
use regpipe::loops::{generate, GenParams};
use regpipe::machine::MachineConfig;
use regpipe::prelude::*;
use regpipe::regalloc::LifetimeAnalysis;
use regpipe::sched::{
    mii, rec_mii, ComplexGroups, LoopAnalysis, SchedError, SchedRequest, Schedule,
};
use regpipe::spill::{candidates, select, spill_batch, SelectHeuristic};

/// Reference scheduler: delegates to HRMS but deliberately does *not*
/// forward `schedule_in`, so every call through the `Scheduler` trait takes
/// the default fresh-context path. Drivers built over this wrapper redo all
/// II-independent analysis per scheduler call — the pre-cache behaviour.
#[derive(Clone, Copy, Debug, Default)]
struct UncachedHrms(HrmsScheduler);

impl Scheduler for UncachedHrms {
    fn name(&self) -> &'static str {
        "hrms-uncached"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.0.schedule(ddg, machine, request)
    }
}

fn paper_machines() -> [MachineConfig; 3] {
    [MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()]
}

/// One generated kernel per (seed, size) point; generation is deterministic
/// and always yields valid, finitely schedulable kernels.
fn kernel(seed: u64, ops: usize) -> Ddg {
    let params = GenParams { min_ops: ops, max_ops: ops, ..GenParams::default() };
    generate(seed, 1, &params).expect("valid knobs").remove(0).ddg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached and uncached compiles are identical across all three
    /// strategies and all paper machines: same DDG text, same schedule
    /// (II + starts + iis_tried), same allocation, same spill/reschedule
    /// provenance, and same error on failure.
    #[test]
    fn cached_and_uncached_compiles_are_identical(
        seed in 0u64..10_000,
        ops in 4usize..28,
        budget in prop::sample::select(vec![8u32, 16, 32, 64]),
    ) {
        let g = kernel(seed, ops);
        let options = SpillDriverOptions::default();
        for machine in &paper_machines() {
            // Strategy::Spill arm.
            let cached = SpillDriver::new(options).run(&g, machine, budget);
            let reference = SpillDriver::with_scheduler(UncachedHrms::default(), options)
                .run(&g, machine, budget);
            match (cached, reference) {
                (Ok(c), Ok(r)) => {
                    prop_assert_eq!(c.schedule, r.schedule);
                    prop_assert_eq!(c.allocation, r.allocation);
                    prop_assert_eq!(c.spilled, r.spilled);
                    prop_assert_eq!(c.reschedules, r.reschedules);
                    prop_assert_eq!(c.iis_explored, r.iis_explored);
                    prop_assert_eq!(
                        regpipe::ddg::textfmt::format(&c.ddg),
                        regpipe::ddg::textfmt::format(&r.ddg)
                    );
                    prop_assert_eq!(c.trace, r.trace);
                }
                (Err(c), Err(r)) => {
                    prop_assert_eq!(c.kind, r.kind);
                    prop_assert_eq!(c.best_regs, r.best_regs);
                    prop_assert_eq!(c.trace, r.trace);
                }
                (c, r) => prop_assert!(
                    false,
                    "spill outcomes diverged: cached ok={} reference ok={}",
                    c.is_ok(),
                    r.is_ok()
                ),
            }

            // Strategy::IncreaseIi arm.
            let cached = IncreaseIiDriver::new().run(&g, machine, budget);
            let reference = IncreaseIiDriver::with_scheduler(UncachedHrms::default())
                .run(&g, machine, budget);
            match (cached, reference) {
                (Ok(c), Ok(r)) => {
                    prop_assert_eq!(c.schedule, r.schedule);
                    prop_assert_eq!(c.allocation, r.allocation);
                    prop_assert_eq!(c.mii, r.mii);
                    prop_assert_eq!(c.trace, r.trace);
                }
                (Err(c), Err(r)) => {
                    prop_assert_eq!(c.kind, r.kind);
                    prop_assert_eq!(c.best_regs, r.best_regs);
                    prop_assert_eq!(c.trace, r.trace);
                }
                (c, r) => prop_assert!(
                    false,
                    "increase-II outcomes diverged: cached ok={} reference ok={}",
                    c.is_ok(),
                    r.is_ok()
                ),
            }

            // Strategy::BestOfAll arm.
            let cached = BestOfAllDriver::new(options).run(&g, machine, budget);
            let reference = BestOfAllDriver::with_scheduler(UncachedHrms::default(), options)
                .run(&g, machine, budget);
            match (cached, reference) {
                (Ok(c), Ok(r)) => {
                    prop_assert_eq!(c.schedule, r.schedule);
                    prop_assert_eq!(c.allocation, r.allocation);
                    prop_assert_eq!(c.winner, r.winner);
                    prop_assert_eq!(c.probes, r.probes);
                    prop_assert_eq!(
                        regpipe::ddg::textfmt::format(&c.ddg),
                        regpipe::ddg::textfmt::format(&r.ddg)
                    );
                }
                (Err(c), Err(r)) => prop_assert_eq!(c.kind, r.kind),
                (c, r) => prop_assert!(
                    false,
                    "best-of-all outcomes diverged: cached ok={} reference ok={}",
                    c.is_ok(),
                    r.is_ok()
                ),
            }
        }
    }

    /// Invalidation: running the spill pipeline by hand, the context
    /// rebuilt after every rewrite agrees with from-scratch computations on
    /// the mutated graph — cached bounds, groups, and the schedules (with
    /// provenance) produced through the context.
    #[test]
    fn rebuilt_context_matches_from_scratch_after_each_spill_round(
        seed in 0u64..10_000,
        ops in 4usize..20,
        machine_idx in 0usize..3,
        budget in prop::sample::select(vec![6u32, 12, 24]),
    ) {
        let machine = paper_machines()[machine_idx].clone();
        let mut g = kernel(seed, ops);
        let scheduler = HrmsScheduler::new();
        for _round in 0..4 {
            let ctx = LoopAnalysis::new(&g, &machine);
            // Cached bounds match the standalone functions.
            prop_assert_eq!(ctx.mii(), mii(&g, &machine));
            prop_assert_eq!(ctx.rec_mii(), rec_mii(&g, &machine));
            prop_assert!(ctx.matches(&g));
            // Groups match a from-scratch derivation.
            let fresh = ComplexGroups::new(&g, &machine);
            for (op, _) in g.ops() {
                prop_assert_eq!(ctx.groups().group_of(op), fresh.group_of(op));
                prop_assert_eq!(ctx.groups().offset(op), fresh.offset(op));
                prop_assert_eq!(ctx.groups().members_of(op), fresh.members_of(op));
            }
            // Scheduling through the context equals the fresh-context path,
            // provenance included.
            let via_ctx = scheduler.schedule_in(&ctx, &SchedRequest::default());
            let fresh = scheduler.schedule(&g, &machine, &SchedRequest::default());
            match (via_ctx, fresh) {
                (Ok(c), Ok(f)) => {
                    prop_assert_eq!(c.iis_tried(), f.iis_tried());
                    prop_assert_eq!(&c, &f);
                    // Advance the pipeline: allocate, pick victims, rewrite.
                    let analysis = LifetimeAnalysis::new(&g, &c);
                    if analysis.max_live() == 0 {
                        break;
                    }
                    let pool = candidates(&g, &analysis);
                    let victims: Vec<_> = select(&pool, SelectHeuristic::MaxLtOverTraffic)
                        .into_iter()
                        .cloned()
                        .collect();
                    if victims.is_empty() || allocate(&g, &c).total() <= budget {
                        break;
                    }
                    drop(ctx);
                    spill_batch(&mut g, &victims);
                }
                (c, f) => prop_assert!(
                    false,
                    "schedules diverged: ctx ok={} fresh ok={}",
                    c.is_ok(),
                    f.is_ok()
                ),
            }
        }
    }
}
