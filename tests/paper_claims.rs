//! The paper's headline claims as executable assertions, on a reduced
//! (seed-stable) suite — guarding the reproduction against silent drift.
//! The full-scale numbers live in `EXPERIMENTS.md`; these tests check the
//! *shapes* that make the paper's conclusions: who wins, and where the
//! technique breaks.

use regpipe::core::{IncreaseIiDriver, SpillDriver, SpillDriverOptions};
use regpipe::loops::{suite, BenchLoop};
use regpipe::prelude::*;
use regpipe::sched::SchedRequest;
use regpipe::spill::SelectHeuristic;

fn reduced_suite() -> Vec<BenchLoop> {
    suite(0xC1DA, 200)
}

fn ideal(l: &BenchLoop, m: &MachineConfig) -> (u32, u32) {
    let s = HrmsScheduler::new().schedule(&l.ddg, m, &SchedRequest::default()).unwrap();
    let a = allocate(&l.ddg, &s);
    (s.ii(), a.total())
}

/// Section 3 / Table 1: a few loops never converge under increase-II, yet
/// they carry a disproportionate share of the execution cycles.
#[test]
fn claim_non_convergent_loops_are_few_but_heavy() {
    let loops = reduced_suite();
    let m = MachineConfig::p2l4();
    let driver = IncreaseIiDriver::new();
    let mut bad = 0u32;
    let mut bad_cycles = 0u64;
    let mut total_cycles = 0u64;
    for l in &loops {
        let (ii, regs) = ideal(l, &m);
        total_cycles += l.cycles(ii);
        if regs > 32 && driver.run(&l.ddg, &m, 32).is_err() {
            bad += 1;
            bad_cycles += l.cycles(ii);
        }
    }
    assert!(bad >= 1, "the phenomenon must exist");
    assert!(bad * 20 <= loops.len() as u32, "but only on a small minority ({bad})");
    let share = 100.0 * bad_cycles as f64 / total_cycles as f64;
    assert!(
        (10.0..60.0).contains(&share),
        "non-convergent loops carry an outsized cycle share, got {share:.1}%"
    );
}

/// Section 4 / Figure 7: spilling converges wherever the budget is
/// reachable, including on every loop increase-II fails on.
#[test]
fn claim_spilling_succeeds_where_increase_ii_fails() {
    let loops = reduced_suite();
    let m = MachineConfig::p2l4();
    let ii_driver = IncreaseIiDriver::new();
    let spill_driver = SpillDriver::new(SpillDriverOptions::default());
    for l in &loops {
        let (_, regs) = ideal(l, &m);
        if regs <= 32 || ii_driver.run(&l.ddg, &m, 32).is_ok() {
            continue;
        }
        let out = spill_driver
            .run(&l.ddg, &m, 32)
            .unwrap_or_else(|e| panic!("{}: spilling must rescue this loop: {e}", l.name));
        assert!(out.allocation.total() <= 32);
        out.schedule.verify(&out.ddg, &m).unwrap();
    }
}

/// Figure 8a/8b: Max(LT/Traf) produces no more cycles and no more traffic
/// than Max(LT) in aggregate at 32 registers.
#[test]
fn claim_traffic_aware_heuristic_wins_at_32_regs() {
    let loops = reduced_suite();
    let m = MachineConfig::p1l4();
    let run = |heuristic| {
        let driver = SpillDriver::new(SpillDriverOptions::unaccelerated(heuristic));
        let mut cycles = 0u64;
        let mut refs = 0u64;
        for l in &loops {
            let out = driver.run(&l.ddg, &m, 32).expect("fits after spilling");
            cycles += l.cycles(out.schedule.ii());
            refs += u64::from(out.memory_ops()) * l.weight;
        }
        (cycles, refs)
    };
    let (lt_cycles, lt_refs) = run(SelectHeuristic::MaxLt);
    let (tr_cycles, tr_refs) = run(SelectHeuristic::MaxLtOverTraffic);
    assert!(
        tr_cycles <= lt_cycles * 102 / 100,
        "Max(LT/Traf) within 2% on cycles: {tr_cycles} vs {lt_cycles}"
    );
    assert!(tr_refs <= lt_refs, "and strictly no worse on traffic: {tr_refs} vs {lt_refs}");
}

/// Figure 8c / Section 4.5: the accelerations reduce scheduling effort
/// substantially at a small performance cost.
#[test]
fn claim_accelerations_cut_effort_cheaply() {
    let loops = reduced_suite();
    let m = MachineConfig::p1l4();
    let run = |options: SpillDriverOptions| {
        let driver = SpillDriver::new(options);
        let mut cycles = 0u64;
        let mut effort = 0u64;
        for l in &loops {
            let out = driver.run(&l.ddg, &m, 32).expect("fits");
            cycles += l.cycles(out.schedule.ii());
            effort += u64::from(out.iis_explored);
        }
        (cycles, effort)
    };
    let (slow_cycles, slow_effort) =
        run(SpillDriverOptions::unaccelerated(SelectHeuristic::MaxLtOverTraffic));
    let (fast_cycles, fast_effort) = run(SpillDriverOptions::default());
    assert!(
        fast_effort * 3 <= slow_effort * 2,
        "≥1.5x fewer IIs explored: {fast_effort} vs {slow_effort}"
    );
    assert!(
        fast_cycles <= slow_cycles * 103 / 100,
        "at ≤3% cycle cost: {fast_cycles} vs {slow_cycles}"
    );
}

/// Figure 9: on loops where both strategies apply, spilling wins in
/// aggregate, and 64 registers nearly erase the problem.
#[test]
fn claim_spill_beats_increase_ii_and_64_regs_are_roomy() {
    let loops = reduced_suite();
    let m = MachineConfig::p2l4();
    let ii_driver = IncreaseIiDriver::new();
    let spill_driver = SpillDriver::new(SpillDriverOptions::default());
    let mut ii_cycles = 0u64;
    let mut spill_cycles = 0u64;
    let mut needed_64 = 0u32;
    for l in &loops {
        let (_, regs) = ideal(l, &m);
        if regs > 64 {
            needed_64 += 1;
        }
        if regs <= 32 {
            continue;
        }
        let (Ok(a), Ok(b)) = (ii_driver.run(&l.ddg, &m, 32), spill_driver.run(&l.ddg, &m, 32))
        else {
            continue;
        };
        ii_cycles += l.cycles(a.schedule.ii());
        spill_cycles += l.cycles(b.schedule.ii());
    }
    assert!(spill_cycles < ii_cycles, "spill {spill_cycles} vs increase-II {ii_cycles}");
    assert!(
        needed_64 * 10 <= loops.len() as u32,
        "few loops even exceed 64 registers ({needed_64})"
    );
}
