//! Golden-output test for the `regpipe` binary: drives `info`, `compile
//! --strategy best`, and `suite` on the paper's running example and asserts
//! byte-stable output. Because the whole pipeline is deterministic (see
//! `tests/determinism.rs`), any drift here is a behavior change, not noise.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use regpipe::ddg::textfmt;
use regpipe::loops::paper;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regpipe"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regpipe-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Write the paper's running example (`x(i) = y(i)*a + y(i-3)`, Fig. 2) in
/// the text format and return the path.
fn example_ddg(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("fig2.ddg");
    fs::write(&path, textfmt::format(&paper::example_loop())).expect("write ddg");
    path
}

fn run_ok(mut cmd: Command) -> Output {
    let out = cmd.output().expect("spawn regpipe");
    assert!(
        out.status.success(),
        "regpipe failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

#[test]
fn info_reports_the_paper_example_facts() {
    let dir = scratch_dir("info");
    let ddg = example_ddg(&dir);
    let out = run_ok({
        let mut c = bin();
        c.arg("info").arg(&ddg);
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout,
        "loop 'fig2': 4 ops, 4 edges, 1 invariants\n\
         op mix: 1 load, 1 store, 1 add, 1 mul\n\
         machine P2L4: ResMII-bound MII = 1, RecMII = 1\n\
         recurrences: 0\n\
         unconstrained schedule: II = 1, SC = 11, registers = 18 (MaxLive 18)\n"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compile_best_meets_an_8_register_budget_on_the_example() {
    let dir = scratch_dir("compile");
    let ddg = example_ddg(&dir);
    let out = run_ok({
        let mut c = bin();
        c.arg("compile").arg(&ddg).args(["--strategy", "best", "--regs", "8"]);
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout,
        "fig2: II = 2 (MII 1), registers = 8/8, spilled = 2, strategy = Spill\n\
         \n\
         kernel: II=2, SC=6\n\
         \x20\x20\x20\x200: Ld[0] Ld.l0[0] *[1]\n\
         \x20\x20\x20\x201: Ld.l1[2] +[3] St[5]\n\
         \n"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn suite_emits_a_parseable_deterministic_corpus() {
    let dir = scratch_dir("suite");
    let corpus_a = dir.join("a");
    let corpus_b = dir.join("b");
    for corpus in [&corpus_a, &corpus_b] {
        let out = run_ok({
            let mut c = bin();
            c.args(["suite", "--size", "3", "--seed", "7", "--dir"]).arg(corpus);
            c
        });
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(stdout, format!("wrote 3 loops to {}/\n", corpus.display()));
    }
    for i in 0..3 {
        let name = format!("stream_{i:04}.ddg");
        let a = fs::read_to_string(corpus_a.join(&name)).expect("corpus file");
        let b = fs::read_to_string(corpus_b.join(&name)).expect("corpus file");
        // Same seed, same bytes — and the body after the weight header must
        // parse back into a well-formed graph.
        assert_eq!(a, b, "{name} differs between identical-seed runs");
        let body = a.split_once('\n').expect("weight header").1;
        let g = textfmt::parse(body).expect("corpus file parses");
        assert!(g.validate().is_ok());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unknown_commands_and_bad_inputs_fail_cleanly() {
    let out = bin().arg("frobnicate").output().expect("spawn regpipe");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().args(["compile", "/nonexistent/no.ddg"]).output().expect("spawn regpipe");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// Regression: `help`/`--help` used to print a one-line usage to stderr.
/// The full per-subcommand usage (including `--jobs`) must go to stdout
/// with exit 0, and nothing to stderr.
#[test]
fn help_prints_full_usage_to_stdout() {
    for invocation in [&["help"][..], &["--help"], &["-h"]] {
        let out = bin().args(invocation).output().expect("spawn regpipe");
        assert!(out.status.success(), "{invocation:?} must exit 0");
        assert!(out.stderr.is_empty(), "{invocation:?} must not write to stderr");
        let stdout = String::from_utf8(out.stdout).unwrap();
        for needle in ["regpipe info", "regpipe compile", "regpipe suite", "--jobs"] {
            assert!(stdout.contains(needle), "{invocation:?} output missing '{needle}'");
        }
    }
    // No arguments behaves like help.
    let out = bin().output().expect("spawn regpipe");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--jobs"));
    // Per-subcommand narrowing.
    let out = bin().args(["help", "compile"]).output().expect("spawn regpipe");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--strategy"));
    assert!(!stdout.contains("regpipe info"), "narrowed help shows one subcommand");
}

/// The scheduler axis: `help suite` / `help bench` document `--scheduler`,
/// and unknown scheduler names are a hard error on stderr with exit 1 on
/// every verb that accepts the flag.
#[test]
fn scheduler_flag_is_documented_and_strictly_validated() {
    for topic in ["suite", "bench", "compile", "info"] {
        let out = bin().args(["help", topic]).output().expect("spawn regpipe");
        assert!(out.status.success(), "help {topic} must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("--scheduler"), "help {topic} must document --scheduler");
        assert!(stdout.contains("hrms|sms|asap|exact"), "help {topic} must list the registry");
    }
    let dir = scratch_dir("sched-flag");
    let ddg = example_ddg(&dir);
    let ddg_str = ddg.to_str().unwrap();
    for args in [
        &["suite", "--size", "3", "--scheduler", "warp"][..],
        &["bench", "--sizes", "4", "--count", "1", "--scheduler", "warp"],
        &["compile", ddg_str, "--scheduler", "warp"],
        &["info", ddg_str, "--scheduler", "warp"],
    ] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(out.stdout.is_empty() || !String::from_utf8_lossy(&out.stdout).contains("==="));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown scheduler 'warp'"), "{args:?}: {stderr}");
        assert!(stderr.contains("hrms"), "{args:?} must name the registry: {stderr}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The spill-policy axis (ISSUE 10): `help` documents `--spill-policy`
/// with the full registry on every verb that accepts it, and unknown
/// policy names are a hard error on stderr with exit 1.
#[test]
fn spill_policy_flag_is_documented_and_strictly_validated() {
    for topic in ["suite", "bench", "compile", "info", "gap"] {
        let out = bin().args(["help", topic]).output().expect("spawn regpipe");
        assert!(out.status.success(), "help {topic} must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("--spill-policy"), "help {topic} must document --spill-policy");
        assert!(stdout.contains("min-next-use"), "help {topic} must list the registry");
    }
    let dir = scratch_dir("policy-flag");
    let ddg = example_ddg(&dir);
    let ddg_str = ddg.to_str().unwrap();
    for args in [
        &["suite", "--size", "3", "--spill-policy", "warp"][..],
        &["bench", "--sizes", "4", "--count", "1", "--spill-policy", "warp"],
        &["compile", ddg_str, "--spill-policy", "warp"],
        &["info", ddg_str, "--spill-policy", "warp"],
        &["gap", "--count", "2", "--spill-policy", "warp"],
    ] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown spill policy 'warp'"), "{args:?}: {stderr}");
        assert!(stderr.contains("min-next-use"), "{args:?} must name the registry: {stderr}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Every registered spill policy drives `suite` end-to-end; the report
/// records the policy (v3 schema) and stays byte-identical across
/// `--jobs` for every policy — the CLI half of the ISSUE acceptance.
#[test]
fn suite_records_every_policy_and_is_jobs_invariant_per_policy() {
    let dir = scratch_dir("policy-suite");
    for policy in ["paper", "min-next-use", "furthest-next-use", "round-robin"] {
        let mut reports = Vec::new();
        for jobs in ["1", "4"] {
            let json_path = dir.join(format!("{policy}-{jobs}.json"));
            run_ok({
                let mut c = bin();
                c.args(["suite", "--size", "4", "--seed", "11", "--jobs", jobs])
                    .args(["--spill-policy", policy, "--out"])
                    .arg(&json_path)
                    .stdout(std::process::Stdio::null());
                c
            });
            reports.push(fs::read_to_string(&json_path).expect("report emitted"));
        }
        assert_eq!(reports[0], reports[1], "{policy}: BENCH_suite.json differs across --jobs");
        assert!(
            reports[0].contains(&format!("\"spill_policy\":\"{policy}\"")),
            "{policy} not recorded:\n{}",
            reports[0]
        );
        assert!(reports[0].contains("\"schema\":\"regpipe-bench-suite/v3\""), "{}", reports[0]);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Every registered scheduler drives `info` end-to-end on the paper
/// example; the register-insensitive baseline needs at least as many
/// registers as the register-sensitive schedulers.
#[test]
fn info_reports_every_scheduler_on_the_example() {
    let dir = scratch_dir("info-sched");
    let ddg = example_ddg(&dir);
    let mut regs = Vec::new();
    for scheduler in ["hrms", "sms", "asap", "exact"] {
        let out = run_ok({
            let mut c = bin();
            c.arg("info").arg(&ddg).args(["--scheduler", scheduler]);
            c
        });
        let stdout = String::from_utf8(out.stdout).unwrap();
        let line = stdout
            .lines()
            .find(|l| l.starts_with("unconstrained schedule"))
            .unwrap_or_else(|| panic!("{scheduler}: no schedule line in {stdout}"));
        assert!(line.contains("II = 1,"), "{scheduler}: {line}");
        let n: u32 = line
            .split("registers = ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .and_then(|r| r.parse().ok())
            .unwrap_or_else(|| panic!("{scheduler}: unparsable {line}"));
        regs.push(n);
    }
    let (hrms, sms, asap) = (regs[0], regs[1], regs[2]);
    assert!(hrms <= asap, "hrms {hrms} regs must not exceed asap {asap}");
    assert!(sms <= asap, "sms {sms} regs must not exceed asap {asap}");
    let _ = fs::remove_dir_all(&dir);
}

/// The `gap` verb end-to-end: documented in help, knobs validated, and
/// the report carries its schema with a nonzero proven count on a small
/// default-budget corpus.
#[test]
fn gap_verb_is_documented_validated_and_proves_small_kernels() {
    let out = run_ok({
        let mut c = bin();
        c.args(["help", "gap"]);
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["--node-budget", "--corpus", "regpipe-bench-gap/v2", "--spill-budget"] {
        assert!(stdout.contains(needle), "help gap missing '{needle}'");
    }
    for (args, needle) in [
        (&["gap", "--node-budget", "nope"][..], "--node-budget"),
        (&["gap", "--count", "0"], "--count"),
        (&["gap", "--max-ops", "1"], "--max-ops"),
        (&["gap", "--corpus", "d", "--seed", "9"], "--seed does not apply"),
        (&["gap", "--corpus"], "--corpus needs a directory"),
        (&["gap", "--spill-budget", "0"], "--spill-budget"),
    ] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
    let dir = scratch_dir("gap-run");
    let json_path = dir.join("gap.json");
    let out = run_ok({
        let mut c = bin();
        c.args(["gap", "--count", "10", "--jobs", "2", "--out"]).arg(&json_path);
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("proven optimal:"), "{stdout}");
    assert!(stdout.contains("spill policies (budget"), "{stdout}");
    let report = fs::read_to_string(&json_path).expect("report written");
    let doc = regpipe::exec::json::parse(&report).expect("report parses");
    assert_eq!(
        doc.get("schema").and_then(regpipe::exec::json::Value::as_str),
        Some("regpipe-bench-gap/v2")
    );
    for policy in ["paper", "min-next-use", "furthest-next-use", "round-robin"] {
        assert!(
            report.contains(&format!("\"policy\":\"{policy}\"")),
            "gap report must cover every registered policy:\n{report}"
        );
    }
    let proven = doc.get("proven").and_then(regpipe::exec::json::Value::as_i64).unwrap();
    assert!(proven > 0, "default budget must prove small kernels:\n{report}");
    let _ = fs::remove_dir_all(&dir);
}

/// `suite` without `--dir` runs the batch engine: stdout and the emitted
/// `BENCH_suite.json` must be byte-identical for any `--jobs` value, and
/// the JSON must parse.
#[test]
fn suite_run_is_byte_identical_across_job_counts() {
    let dir = scratch_dir("suite-run");
    let mut outputs = Vec::new();
    for jobs in ["1", "3"] {
        let json_path = dir.join(format!("report-{jobs}.json"));
        let out = run_ok({
            let mut c = bin();
            c.args(["suite", "--size", "5", "--seed", "11", "--jobs", jobs, "--out"])
                .arg(&json_path);
            c
        });
        let report = fs::read_to_string(&json_path).expect("report emitted");
        regpipe::exec::json::parse(&report).expect("report parses");
        outputs.push((String::from_utf8(out.stdout).unwrap(), report));
    }
    let stdout_1 = &outputs[0].0;
    let stdout_3 = &outputs[1].0;
    // The report path differs between the two runs; compare stdout modulo
    // that one line.
    let strip =
        |s: &str| s.lines().filter(|l| !l.starts_with("wrote ")).collect::<Vec<_>>().join("\n");
    assert_eq!(strip(stdout_1), strip(stdout_3), "stdout differs across --jobs");
    assert_eq!(outputs[0].1, outputs[1].1, "BENCH_suite.json differs across --jobs");
    assert!(stdout_1.contains("suite evaluation"));
    let _ = fs::remove_dir_all(&dir);
}

/// The new workload funnel end-to-end: `gen` materializes a corpus
/// byte-reproducibly, `check` validates it, and `suite --corpus` compiles
/// it with worker-count-independent results (ISSUE 3 acceptance).
#[test]
fn gen_check_and_suite_corpus_are_deterministic() {
    let dir = scratch_dir("gen-corpus");
    let corpus_a = dir.join("a");
    let corpus_b = dir.join("b");
    for corpus in [&corpus_a, &corpus_b] {
        let out = run_ok({
            let mut c = bin();
            c.args(["gen", "--seed", "7", "--count", "20", "--out"]).arg(corpus);
            c
        });
        assert_eq!(
            String::from_utf8(out.stdout).unwrap(),
            format!("wrote 20 kernels to {}/ (seed 7)\n", corpus.display())
        );
    }
    // Same seed, same bytes, for every file of the corpus.
    for i in 0..20 {
        let name = format!("gen_{i:05}.ddg");
        let a = fs::read_to_string(corpus_a.join(&name)).expect("corpus file");
        let b = fs::read_to_string(corpus_b.join(&name)).expect("corpus file");
        assert_eq!(a, b, "{name} differs between identical-seed runs");
        assert!(a.starts_with("# weight "), "{name} carries a weight header");
    }
    // `check` accepts the generated corpus.
    let out = run_ok({
        let mut c = bin();
        c.arg("check").arg(&corpus_a);
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("OK"), "{stdout}");
    assert!(stdout.contains("loops:   20"), "{stdout}");
    // `suite --corpus` is byte-identical across worker counts.
    let mut reports = Vec::new();
    for jobs in ["1", "4"] {
        let json_path = dir.join(format!("report-{jobs}.json"));
        run_ok({
            let mut c = bin();
            c.args(["suite", "--jobs", jobs, "--corpus"])
                .arg(&corpus_a)
                .arg("--out")
                .arg(&json_path);
            c
        });
        let report = fs::read_to_string(&json_path).expect("report emitted");
        regpipe::exec::json::parse(&report).expect("report parses");
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "corpus BENCH_suite.json differs across --jobs");
    let _ = fs::remove_dir_all(&dir);
}

/// A corpus's `.mach` file selects the machine; an explicit `--machine`
/// flag still wins.
#[test]
fn corpus_machine_description_is_honoured() {
    let dir = scratch_dir("corpus-mach");
    let corpus = dir.join("c");
    run_ok({
        let mut c = bin();
        c.args(["gen", "--seed", "3", "--count", "2", "--out"]).arg(&corpus);
        c
    });
    fs::write(corpus.join("machine.mach"), "machine M9\nunits mem 2\nlatency add 9\n")
        .expect("write mach");
    let out = run_ok({
        let mut c = bin();
        c.args(["suite", "--jobs", "1", "--corpus"])
            .arg(&corpus)
            .arg("--out")
            .arg(dir.join("r.json"));
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("machine M9"), "corpus machine used:\n{stdout}");
    let out = run_ok({
        let mut c = bin();
        c.args(["suite", "--jobs", "1", "--machine", "p1l4", "--corpus"])
            .arg(&corpus)
            .arg("--out")
            .arg(dir.join("r2.json"));
        c
    });
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("machine P1L4"), "--machine overrides corpus:\n{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

/// `check` on a broken corpus lists every problem as file:line: message
/// and fails.
#[test]
fn check_reports_file_and_line_for_every_problem() {
    let dir = scratch_dir("check-bad");
    let corpus = dir.join("c");
    run_ok({
        let mut c = bin();
        c.args(["gen", "--seed", "3", "--count", "2", "--out"]).arg(&corpus);
        c
    });
    fs::write(corpus.join("broken.ddg"), "loop b\nop x add\nedge x -> y reg 0\n")
        .expect("write bad ddg");
    fs::write(corpus.join("m.mach"), "units warp 9\n").expect("write bad mach");
    let out = bin().arg("check").arg(&corpus).output().expect("spawn regpipe");
    assert!(!out.status.success(), "broken corpus must fail check");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.ddg:3: unknown op 'y'"), "{stderr}");
    assert!(stderr.contains("m.mach:1: unknown class 'warp'"), "{stderr}");
    assert!(stderr.contains("has 2 errors"), "{stderr}");
    // `suite --corpus` on the same directory fails with the same detail.
    let out = bin().args(["suite", "--corpus"]).arg(&corpus).output().expect("spawn regpipe");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("broken.ddg:3"), "suite names files");
    let _ = fs::remove_dir_all(&dir);
}

/// Generator knobs are validated eagerly with actionable messages.
#[test]
fn gen_rejects_bad_knobs() {
    let dir = scratch_dir("gen-bad");
    for (args, needle) in [
        (&["gen"][..], "missing --out"),
        (&["gen", "--out", "x", "--count", "0"], "--count"),
        (&["gen", "--out", "x", "--min-ops", "9", "--max-ops", "4"], "max_ops"),
        (&["gen", "--out", "x", "--rec-density", "1.5"], "recurrence_density"),
        (&["gen", "--out", "x", "--weights", "zipf:3"], "unknown weight distribution"),
    ] {
        let mut c = bin();
        c.args(args).current_dir(&dir);
        let out = c.output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Regression: `suite --corpus` with no directory value (or with
/// synthetic-suite-only flags) used to fall through to the built-in
/// suite silently; it must be a hard error instead.
#[test]
fn suite_corpus_flag_misuse_is_an_error() {
    for (args, needle) in [
        (&["suite", "--corpus"][..], "--corpus needs a directory"),
        (&["suite", "--corpus", "d", "--size", "5"], "--size does not apply"),
        (&["suite", "--corpus", "d", "--seed", "9"], "--seed does not apply"),
        (&["suite", "--corpus", "d", "--dir", "e"], "cannot be combined with --corpus"),
    ] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

/// Strict flag validation: a bad `--jobs` or `--size` is a clean error.
#[test]
fn suite_rejects_bad_jobs_and_size() {
    for args in [&["suite", "--size", "5", "--jobs", "0"][..], &["suite", "--size", "nope"]] {
        let out = bin().args(args).output().expect("spawn regpipe");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("must be a positive integer"), "{args:?}: {stderr}");
    }
}
