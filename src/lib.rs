//! # regpipe — register-constrained software pipelining
//!
//! Facade crate re-exporting the whole `regpipe` workspace: a from-scratch
//! reproduction of Llosa, Valero & Ayguadé, *"Heuristics for
//! Register-Constrained Software Pipelining"* (MICRO 1996).
//!
//! The pipeline, bottom-up:
//!
//! * [`ddg`] — loop data-dependence graphs (operations, distances, invariants).
//! * [`machine`] — VLIW machine models (the paper's P1L4/P2L4/P2L6) and the
//!   modulo reservation table.
//! * [`sched`] — MII computation and modulo schedulers: the
//!   register-sensitive HRMS and SMS (Swing) schedulers, a
//!   register-insensitive ASAP baseline, and the [`sched::SchedulerKind`]
//!   registry that makes the choice a first-class evaluation axis
//!   (`--scheduler hrms|sms|asap`).
//! * [`regalloc`] — cyclic lifetimes, MaxLive, rotating-file and
//!   modulo-variable-expansion register allocation.
//! * [`spill`] — spill-code insertion into the dependence graph with the
//!   paper's redundancy optimizations and convergence safeguards.
//! * [`core`] — the register-constrained drivers: increase-II, iterative
//!   spilling (with the Max(LT) / Max(LT/Traf) heuristics and the two
//!   scheduling-time accelerations), and their "best of all" combination.
//! * [`loops`] — the synthetic benchmark suite standing in for the paper's
//!   1258 Perfect Club loops, replicas of the paper's named loops, the
//!   seeded synthetic-kernel generator (`regpipe gen`), and on-disk corpus
//!   I/O (`regpipe suite --corpus` / `regpipe check`).
//! * [`exec`] — the deterministic multi-threaded batch-compilation engine
//!   (`BatchRequest` → `BatchReport`) behind `regpipe suite` and the
//!   `expt_*` harness, with its `BENCH_suite.json` report format.
//! * [`bench`](mod@bench) — the experiment drivers reproducing the paper's tables and
//!   figures, plus the `regpipe bench` compile-path timing harness and its
//!   `BENCH_compile.json` report format.
//! * [`serve`] — the persistent compile daemon (`regpipe serve`): a
//!   JSON-lines protocol over stdin or a unix socket, a sharded
//!   content-addressed LRU result cache, the `regpipe replay` load-driver,
//!   and the `regpipe bench-serve` harness with its `BENCH_serve.json`
//!   report format (protocol spec in `docs/serve.md`).
//!
//! The on-disk interchange formats (`.ddg` loops, `.mach` machine
//! descriptions, corpus directory layout) are specified in
//! `docs/formats.md` and implemented by [`ddg::textfmt`] and
//! [`machine::textfmt`]; `ARCHITECTURE.md` maps the crates and data flow.
//!
//! # Quickstart
//!
//! Compile the paper's running example (`x(i) = y(i)*a + y(i-3)`) for a
//! machine with 2 FUs of each kind and only 8 registers:
//!
//! ```
//! use regpipe::prelude::*;
//!
//! let ddg = regpipe::loops::paper::example_loop();
//! let machine = MachineConfig::p2l4();
//! let compiled = compile(&ddg, &machine, 8, &CompileOptions::default())?;
//! assert!(compiled.registers_used() <= 8);
//! # Ok::<(), regpipe::core::CompileError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

pub use regpipe_bench as bench;
pub use regpipe_core as core;
pub use regpipe_ddg as ddg;
pub use regpipe_exec as exec;
pub use regpipe_loops as loops;
pub use regpipe_machine as machine;
pub use regpipe_regalloc as regalloc;
pub use regpipe_sched as sched;
pub use regpipe_serve as serve;
pub use regpipe_spill as spill;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use regpipe_core::{
        compile, BestOfAllDriver, CompileOptions, CompiledLoop, IncreaseIiDriver, SpillDriver,
        SpillDriverOptions, Strategy,
    };
    pub use regpipe_ddg::{Ddg, DdgBuilder, EdgeKind, OpId, OpKind};
    pub use regpipe_exec::{parallel_map, run_batch, BatchReport, BatchRequest};
    pub use regpipe_loops::{generate, load_corpus, write_corpus, BenchLoop, GenParams};
    pub use regpipe_machine::MachineConfig;
    pub use regpipe_regalloc::{allocate, LifetimeAnalysis};
    pub use regpipe_sched::{
        mii, AsapScheduler, HrmsScheduler, Schedule, Scheduler, SchedulerKind, SmsScheduler,
    };
    pub use regpipe_spill::{SelectHeuristic, SpillPolicy, SpillPolicyKind};
}
