//! # regpipe — register-constrained software pipelining
//!
//! Facade crate re-exporting the whole `regpipe` workspace: a from-scratch
//! reproduction of Llosa, Valero & Ayguadé, *"Heuristics for
//! Register-Constrained Software Pipelining"* (MICRO 1996).
//!
//! The pipeline, bottom-up:
//!
//! * [`ddg`] — loop data-dependence graphs (operations, distances, invariants).
//! * [`machine`] — VLIW machine models (the paper's P1L4/P2L4/P2L6) and the
//!   modulo reservation table.
//! * [`sched`] — MII computation and modulo schedulers (register-sensitive
//!   HRMS and a register-insensitive ASAP baseline).
//! * [`regalloc`] — cyclic lifetimes, MaxLive, rotating-file and
//!   modulo-variable-expansion register allocation.
//! * [`spill`] — spill-code insertion into the dependence graph with the
//!   paper's redundancy optimizations and convergence safeguards.
//! * [`core`] — the register-constrained drivers: increase-II, iterative
//!   spilling (with the Max(LT) / Max(LT/Traf) heuristics and the two
//!   scheduling-time accelerations), and their "best of all" combination.
//! * [`loops`] — the synthetic benchmark suite standing in for the paper's
//!   1258 Perfect Club loops, plus replicas of the paper's named loops.
//! * [`exec`] — the deterministic multi-threaded batch-compilation engine
//!   (`BatchRequest` → `BatchReport`) behind `regpipe suite` and the
//!   `expt_*` harness, with its `BENCH_suite.json` report format.
//!
//! # Quickstart
//!
//! Compile the paper's running example (`x(i) = y(i)*a + y(i-3)`) for a
//! machine with 2 FUs of each kind and only 8 registers:
//!
//! ```
//! use regpipe::prelude::*;
//!
//! let ddg = regpipe::loops::paper::example_loop();
//! let machine = MachineConfig::p2l4();
//! let compiled = compile(&ddg, &machine, 8, &CompileOptions::default())?;
//! assert!(compiled.registers_used() <= 8);
//! # Ok::<(), regpipe::core::CompileError>(())
//! ```

pub use regpipe_core as core;
pub use regpipe_ddg as ddg;
pub use regpipe_exec as exec;
pub use regpipe_loops as loops;
pub use regpipe_machine as machine;
pub use regpipe_regalloc as regalloc;
pub use regpipe_sched as sched;
pub use regpipe_spill as spill;

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use regpipe_core::{
        compile, BestOfAllDriver, CompileOptions, CompiledLoop, IncreaseIiDriver, SpillDriver,
        SpillDriverOptions, Strategy,
    };
    pub use regpipe_ddg::{Ddg, DdgBuilder, EdgeKind, OpId, OpKind};
    pub use regpipe_exec::{parallel_map, run_batch, BatchReport, BatchRequest};
    pub use regpipe_machine::MachineConfig;
    pub use regpipe_regalloc::{allocate, LifetimeAnalysis};
    pub use regpipe_sched::{mii, HrmsScheduler, Schedule, Scheduler};
    pub use regpipe_spill::SelectHeuristic;
}
