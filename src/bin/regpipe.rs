//! The `regpipe` command-line tool: compile loop dependence graphs under a
//! register budget from the terminal, and run the batch evaluation suite.
//!
//! Run `regpipe help` (or `regpipe help <command>`) for the full usage;
//! the same text is kept in [`usage`] below. The input format is
//! documented in `regpipe_ddg::textfmt`.

use std::fs;
use std::process::ExitCode;

use regpipe::core::{compile, CompileOptions};
use regpipe::ddg::{textfmt, to_dot, Ddg};
use regpipe::exec::{parse_strategy, resolve_jobs, run_batch, strategy_slug, BatchRequest};
use regpipe::loops::{suite, suite_size_from_env};
use regpipe::machine::MachineConfig;
use regpipe::regalloc::allocate;
use regpipe::sched::{mii, rec_mii, HrmsScheduler, PipelinedLoop, SchedRequest, Scheduler};
use regpipe::spill::SelectHeuristic;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        // Help goes to stdout and succeeds; `regpipe help <command>`
        // narrows to one subcommand.
        Some("--help" | "-h" | "help") | None => {
            print!("{}", usage(args.get(1).map(String::as_str)));
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("regpipe: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The full usage text, or one subcommand's section.
fn usage(topic: Option<&str>) -> String {
    let info = "\
regpipe info <file.ddg> [--machine M]
  Facts about a loop: op mix, MII/RecMII, recurrences, and the
  unconstrained schedule's II and register requirement.
";
    let compile_ = "\
regpipe compile <file.ddg> [options]
  Schedule a loop under a register budget.
  --machine p1l4|p2l4|p2l6|uniform:<units>,<latency>   (default p2l4)
  --regs <n>                                           (default 32)
  --strategy best|spill|increase-ii                    (default best)
  --heuristic lt|lt-traf                               (default lt-traf)
  --emit kernel|pipeline|dot|text                      (default kernel)
";
    let suite_ = "\
regpipe suite [options]
  Run the evaluation suite: every loop x budget x strategy cell is an
  independent compile call, fanned out across worker threads with
  deterministic (thread-count-independent) results, and the report is
  written as machine-readable JSON.
  --size <n>        suite size  (default: REGPIPE_SUITE_SIZE, then 1258)
  --seed <s>        suite seed  (default 49626)
  --jobs <n>        worker threads (default: REGPIPE_JOBS, then all cores)
  --machine <m>     as for compile                     (default p2l4)
  --budgets <list>  comma-separated register budgets   (default 64,32)
  --strategies <l>  comma-separated strategies         (default best,spill,increase-ii)
  --out <file>      report path                        (default BENCH_suite.json)

regpipe suite --dir <dir> [--size N] [--seed S]
  Emit the synthetic corpus as .ddg files instead of running it
  (default size 100).
";
    match topic {
        Some("info") => info.to_string(),
        Some("compile") => compile_.to_string(),
        Some("suite") => suite_.to_string(),
        _ => format!(
            "usage: regpipe <info|compile|suite|help> ...\n\n{info}\n{compile_}\n{suite_}\n\
             The .ddg input format is documented in `regpipe_ddg::textfmt`.\n"
        ),
    }
}

fn load(path: &str) -> Result<Ddg, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    textfmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_machine(spec: &str) -> Result<MachineConfig, String> {
    match spec {
        "p1l4" => Ok(MachineConfig::p1l4()),
        "p2l4" => Ok(MachineConfig::p2l4()),
        "p2l6" => Ok(MachineConfig::p2l6()),
        other => {
            if let Some(rest) = other.strip_prefix("uniform:") {
                let (units, lat) = rest
                    .split_once(',')
                    .ok_or_else(|| format!("bad uniform spec '{other}'"))?;
                let units: u32 =
                    units.parse().map_err(|_| format!("bad unit count '{units}'"))?;
                let lat: u32 = lat.parse().map_err(|_| format!("bad latency '{lat}'"))?;
                if units == 0 || lat == 0 {
                    return Err("uniform machine needs positive units and latency".into());
                }
                Ok(MachineConfig::uniform(units, lat))
            } else {
                Err(format!("unknown machine '{other}'"))
            }
        }
    }
}

/// Pulls `--key value` pairs from an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn positional(&self) -> Option<&'a str> {
        self.args.first().filter(|a| !a.starts_with("--")).map(String::as_str)
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("info: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;

    println!(
        "loop '{}': {} ops, {} edges, {} invariants",
        g.name(),
        g.num_ops(),
        g.num_edges(),
        g.num_invariants()
    );
    let hist = g.kind_histogram();
    let labels = ["load", "store", "add", "mul", "div", "sqrt", "copy"];
    let mix: Vec<String> = labels
        .iter()
        .zip(hist.iter())
        .filter(|(_, &c)| c > 0)
        .map(|(l, c)| format!("{c} {l}"))
        .collect();
    println!("op mix: {}", mix.join(", "));
    println!(
        "machine {}: ResMII-bound MII = {}, RecMII = {}",
        machine.name(),
        mii(&g, &machine),
        rec_mii(&g, &machine)
    );
    let recs = regpipe::ddg::algo::recurrences(&g);
    println!("recurrences: {}", recs.len());
    let s = HrmsScheduler::new()
        .schedule(&g, &machine, &SchedRequest::default())
        .map_err(|e| e.to_string())?;
    let a = allocate(&g, &s);
    println!(
        "unconstrained schedule: II = {}, SC = {}, registers = {} (MaxLive {})",
        s.ii(),
        s.stage_count(),
        a.total(),
        a.max_live()
    );
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("compile: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
    let regs: u32 = flags
        .get("--regs")
        .unwrap_or("32")
        .parse()
        .map_err(|_| "bad --regs value".to_string())?;
    let strategy = parse_strategy(flags.get("--strategy").unwrap_or("best"))?;
    let heuristic = match flags.get("--heuristic").unwrap_or("lt-traf") {
        "lt" => SelectHeuristic::MaxLt,
        "lt-traf" => SelectHeuristic::MaxLtOverTraffic,
        other => return Err(format!("unknown heuristic '{other}'")),
    };
    let mut options = CompileOptions { strategy, ..CompileOptions::default() };
    options.spill.heuristic = heuristic;

    let compiled = compile(&g, &machine, regs, &options).map_err(|e| e.to_string())?;
    println!(
        "{}: II = {} (MII {}), registers = {}/{}, spilled = {}, strategy = {:?}",
        g.name(),
        compiled.ii(),
        mii(&g, &machine),
        compiled.registers_used(),
        regs,
        compiled.spilled(),
        compiled.strategy_used()
    );
    match flags.get("--emit").unwrap_or("kernel") {
        "kernel" => println!("\n{}", compiled.kernel()),
        "pipeline" => {
            println!("\n{}", PipelinedLoop::new(compiled.ddg(), compiled.schedule()));
        }
        "dot" => println!("{}", to_dot(compiled.ddg())),
        "text" => println!("{}", textfmt::format(compiled.ddg())),
        other => return Err(format!("unknown emit mode '{other}'")),
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let explicit_size: Option<usize> = match flags.get("--size") {
        Some(raw) => Some(
            raw.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--size must be a positive integer, got '{raw}'"))?,
        ),
        None => None,
    };
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("49626") // 0xC1DA
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    match flags.get("--dir") {
        // Corpus emission keeps its historical default of 100 files.
        Some(dir) => emit_corpus(dir, seed, explicit_size.unwrap_or(100)),
        None => {
            // Run mode shares the harness's REGPIPE_SUITE_SIZE default so
            // the CI smoke path sizes the run with one env variable.
            let size = match explicit_size {
                Some(n) => n,
                None => suite_size_from_env()?,
            };
            run_suite(&flags, seed, size)
        }
    }
}

/// `suite --dir`: emit the corpus as `.ddg` files.
fn emit_corpus(dir: &str, seed: u64, size: usize) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let loops = suite(seed, size);
    for l in &loops {
        let path = format!("{dir}/{}.ddg", l.name);
        let mut text = format!("# weight {}\n", l.weight);
        text.push_str(&textfmt::format(&l.ddg));
        fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("wrote {} loops to {dir}/", loops.len());
    Ok(())
}

/// `suite` without `--dir`: run every cell through the batch engine.
fn run_suite(flags: &Flags<'_>, seed: u64, size: usize) -> Result<(), String> {
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
    let jobs = resolve_jobs(flags.get("--jobs"))?;
    let budgets = flags
        .get("--budgets")
        .unwrap_or("64,32")
        .split(',')
        .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
        .collect::<Result<Vec<_>, _>>()?;
    let strategies = flags
        .get("--strategies")
        .unwrap_or("best,spill,increase-ii")
        .split(',')
        .map(parse_strategy)
        .collect::<Result<Vec<_>, _>>()?;
    let out_path = flags.get("--out").unwrap_or("BENCH_suite.json");

    let loops = suite(seed, size);
    let req =
        BatchRequest { machine, budgets, strategies, options: CompileOptions::default(), jobs };
    let report = run_batch(&loops, &req);

    println!(
        "=== suite evaluation: {} loops (seed {seed}), machine {} ===",
        report.suite_size, report.machine
    );
    println!(
        "{:<8} {:<12} {:>7} {:>7} {:>12} {:>12} {:>9} {:>9}",
        "budget", "strategy", "fitted", "failed", "Mcycles", "Mmem-refs", "spilled", "resched"
    );
    for agg in report.aggregates() {
        println!(
            "{:<8} {:<12} {:>7} {:>7} {:>12.1} {:>12.1} {:>9} {:>9}",
            agg.budget,
            agg.strategy.map_or("?", strategy_slug),
            agg.fitted,
            agg.failures,
            agg.cycles as f64 / 1e6,
            agg.memory_refs as f64 / 1e6,
            agg.spilled,
            agg.reschedules
        );
    }
    // The JSON report keeps only deterministic fields by default so runs
    // byte-compare across --jobs values; REGPIPE_BENCH_TIMING=1 opts into
    // per-cell wall times. Timing for humans goes to stderr, off the
    // byte-comparable stream.
    let include_timing = std::env::var("REGPIPE_BENCH_TIMING").is_ok_and(|v| v == "1");
    fs::write(out_path, report.to_json(include_timing))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    eprintln!(
        "compiled {} cells with {} jobs in {:.2}s",
        report.cells.len(),
        report.jobs,
        report.total_wall.as_secs_f64()
    );
    Ok(())
}
