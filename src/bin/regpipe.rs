//! The `regpipe` command-line tool: compile loop dependence graphs under a
//! register budget from the terminal, run the batch evaluation suite over
//! the built-in synthetic loops or an on-disk corpus, and generate or
//! validate such corpora.
//!
//! Run `regpipe help` (or `regpipe help <command>`) for the full usage;
//! the same text is kept in [`usage`] below. The input formats are
//! specified in `docs/formats.md` (`regpipe_ddg::textfmt` for loops,
//! `regpipe_machine::textfmt` for machine descriptions).

use std::fs;
use std::process::ExitCode;

use regpipe::core::{compile, CompileOptions, SpillPolicyKind};
use regpipe::ddg::{textfmt, to_dot, Ddg};
use regpipe::exec::{parse_strategy, resolve_jobs, run_batch, strategy_slug, BatchRequest};
use regpipe::loops::{
    generate, load_corpus, suite, suite_size_from_env, write_corpus, BenchLoop, GenParams,
    WeightDist,
};
use regpipe::machine::MachineConfig;
use regpipe::regalloc::allocate;
use regpipe::sched::{mii, rec_mii, PipelinedLoop, SchedRequest, Scheduler, SchedulerKind};
use regpipe::serve::{
    base_requests, replay_in_process, run_serve_bench, serve_stdin, IdPolicy, ReplayConfig,
    ReplaySource, RetryPolicy, ServeBenchConfig, ServeOptions, Server,
};
#[cfg(unix)]
use regpipe::serve::{replay_socket, request_once, run_chaos, write_responses, ChaosConfig};
use regpipe::spill::SelectHeuristic;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("gap") => cmd_gap(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        // Help goes to stdout and succeeds; `regpipe help <command>`
        // narrows to one subcommand.
        Some("--help" | "-h" | "help") | None => {
            print!("{}", usage(args.get(1).map(String::as_str)));
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("regpipe: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The full usage text, or one subcommand's section.
fn usage(topic: Option<&str>) -> String {
    let info = "\
regpipe info <file.ddg> [--machine M] [--scheduler S]
  Facts about a loop: op mix, MII/RecMII, recurrences, and the
  unconstrained schedule's II and register requirement.
  --scheduler hrms|sms|asap|exact                      (default hrms)
  --spill-policy paper|min-next-use|furthest-next-use|round-robin
                    accepted for interface uniformity; the unconstrained
                    schedule never spills                (default paper)
";
    let compile_ = "\
regpipe compile <file.ddg> [options]
  Schedule a loop under a register budget.
  --machine p1l4|p2l4|p2l6|uniform:<units>,<latency>   (default p2l4)
  --regs <n>                                           (default 32)
  --strategy best|spill|increase-ii                    (default best)
  --scheduler hrms|sms|asap|exact                      (default hrms)
  --heuristic lt|lt-traf                               (default lt-traf)
  --spill-policy paper|min-next-use|furthest-next-use|round-robin
                    victim-ranking policy for spilling   (default paper)
  --emit kernel|pipeline|dot|text                      (default kernel)
";
    let suite_ = "\
regpipe suite [options]
  Run the evaluation suite: every loop x budget x strategy cell is an
  independent compile call, fanned out across worker threads with
  deterministic (thread-count-independent) results, and the report is
  written as machine-readable JSON.
  --corpus <dir>    run an on-disk corpus (see `regpipe gen`/`check`)
                    instead of the built-in synthetic suite; a .mach
                    file in the corpus sets the machine unless --machine
                    is given explicitly
  --size <n>        suite size  (default: REGPIPE_SUITE_SIZE, then 1258)
  --seed <s>        suite seed  (default 49626)
  --jobs <n>        worker threads (default: REGPIPE_JOBS, then all cores)
  --machine <m>     as for compile                     (default p2l4)
  --budgets <list>  comma-separated register budgets   (default 64,32)
  --strategies <l>  comma-separated strategies         (default best,spill,increase-ii)
  --scheduler <s>   core scheduler: hrms|sms|asap|exact (default hrms)
  --spill-policy <p> paper|min-next-use|furthest-next-use|round-robin
                    (default paper; recorded in the report's spill_policy
                    field — BENCH_suite.json schema is v3)
  --out <file>      report path                        (default BENCH_suite.json)

regpipe suite --dir <dir> [--size N] [--seed S]
  Emit the archetype-mix synthetic suite as .ddg files instead of
  running it (default size 100). For knob-controlled corpora use
  `regpipe gen`.
";
    let gen_ = "\
regpipe gen --out <dir> [options]
  Materialize a synthetic-kernel corpus as .ddg files (with # weight
  headers). Deterministic: the same seed and knobs reproduce the corpus
  byte-for-byte, and a larger --count extends a smaller one in place.
  --out <dir>       output directory                   (required)
  --seed <s>        generator seed                     (default 49626)
  --count <k>       number of kernels                  (default 100)
  --min-ops <n>     fewest ops per kernel              (default 4)
  --max-ops <n>     most ops per kernel                (default 24)
  --rec-density <f> recurrence probability per op, 0-1 (default 0.25)
  --invariants <n>  max loop invariants per kernel     (default 4)
  --weights <d>     const:<w> | uniform:<lo>,<hi> | log:<lo>,<hi>
                    (default log:2,4.2 — heavy-tailed 10^U(lo,hi))
";
    let check_ = "\
regpipe check <dir>
  Validate a corpus directory without compiling: parse every .ddg and
  .mach file, reporting every problem as file:line: message. Exits 0
  only if the whole corpus is well-formed.
";
    let bench_ = "\
regpipe bench [options]
  Wall-time the full compile path (schedule/allocate/spill/reschedule)
  over seeded `gen` corpora at several kernel sizes and write the result
  as machine-readable JSON (schema regpipe-bench-compile/v3). By default
  only deterministic work counters are emitted so runs byte-compare;
  set REGPIPE_BENCH_TIMING=1 to run the sampling loop and include
  mean_wall_us per size (see docs/performance.md).
  --sizes <list>    comma-separated op counts    (default 16,48,96,160,256)
  --count <k>       kernels per size             (default 12)
  --seed <s>        generator seed               (default 49626)
  --machine <m>     as for compile               (default p2l4)
  --budgets <list>  register budgets             (default 64,32)
  --strategies <l>  strategies                   (default best,spill,increase-ii)
  --scheduler <s>   core scheduler: hrms|sms|asap|exact (default hrms)
  --spill-policy <p> paper|min-next-use|furthest-next-use|round-robin
                    (default paper)
  --before <file>   a previous timed BENCH_compile.json; records its
                    mean_wall_us per size plus the speedup in the output
  --out <file>      report path                  (default BENCH_compile.json)
";
    let gap_ = "\
regpipe gap [options]
  Measure heuristic optimality gaps: schedule a corpus with the exact
  branch-and-bound oracle and every registered heuristic, and write
  BENCH_gap.json (schema regpipe-bench-gap/v2) with per-loop and
  aggregate II/SC/MaxLive gaps plus proven/unproven counts. Gaps are
  attributed only to loops whose optimum the oracle proved within its
  node budget. Every loop is also compiled under --spill-budget once
  per registered spill policy; the report's spill_policies section
  totals spill counts and achieved IIs with deltas against the
  --spill-policy baseline (over the loops every policy fitted). The
  report carries no timing fields, so runs byte-compare at any --jobs
  value.
  --corpus <dir>    gap an on-disk corpus (see `regpipe gen`/`check`)
                    instead of a generated one; a .mach file in the
                    corpus sets the machine unless --machine is given
  --seed <s>        generator seed               (default 7)
  --count <k>       kernels                      (default 100)
  --max-ops <n>     most ops per kernel          (default 12)
  --machine <m>     as for compile               (default p2l4)
  --node-budget <n> oracle search nodes per loop (default 200000)
  --spill-policy <p> baseline policy the per-policy deltas are taken
                    against: paper|min-next-use|furthest-next-use|
                    round-robin                  (default paper)
  --spill-budget <n> register budget for the per-policy comparison
                                                 (default 16)
  --jobs <n>        worker threads (default: REGPIPE_JOBS, then all cores)
  --out <file>      report path                  (default BENCH_gap.json)
";
    let serve_ = "\
regpipe serve [options]
  Run the persistent compile daemon: JSON-lines requests (one object per
  line) on stdin — or a unix socket with --socket — answered from a
  sharded content-addressed LRU result cache, falling through to the
  compile engine on miss. Responses are byte-identical with the cache on
  or off. Protocol spec: docs/serve.md.
  --socket <path>      listen on a unix socket (threaded, multi-client)
                       instead of stdin/stdout
  --no-cache           disable the result cache (every request compiles)
  --cache-bytes <n>    total cache budget in bytes     (default 67108864)
  --shards <n>         cache shards                    (default 8)
  --max-request-bytes <n>  per-line request bound      (default 1048576)
  --cache-dir <dir>    persist the cache to a CRC-framed append log;
                       recovery after a crash drops only damaged entries
  --compact-appends <n>  appends between log compactions (default 8192)
  --deadline-ms <n>    per-compile cooperative deadline; blown deadlines
                       answer with error.kind \"deadline\"
  --drain-ms <n>       shutdown drain bound for in-flight connections
                       (default 2000)
  --spill-policy <p>   default policy for requests that omit the
                       spill_policy field: paper|min-next-use|
                       furthest-next-use|round-robin  (default paper)
";
    let replay_ = "\
regpipe replay [options]
  Drive a deterministic request stream at a compile daemon and print the
  response stream (in request order) to stdout. Without --socket an
  in-process daemon serves the run (same engine, no transport).
  --socket <path>   unix socket of a running `regpipe serve --socket`
  --source gen|suite  workload source                  (default gen)
  --seed <s>        workload seed                      (default 49626)
  --count <k>       kernels (gen) / loops (suite)      (default 100)
  --file <path>     replay raw request lines from a file instead
                    (lines are sent verbatim; ids are yours to manage)
  --repeat <n>      passes over the stream; pass 2+ exercise the cache
                    hit path                           (default 1)
  --jobs <n>        client connections (socket) or worker threads
                    (in-process)  (default: REGPIPE_JOBS, then all cores)
  --budgets <list>  comma-separated register budgets   (default 32)
  --strategy best|spill|increase-ii                    (default best)
  --scheduler hrms|sms|asap|exact                      (default hrms)
  --spill-policy paper|min-next-use|furthest-next-use|round-robin
                    sent with every request            (default paper)
  --machine <m>     as for compile                     (default p2l4)
  --no-cache        (in-process mode) disable the daemon cache
  --cache-dir <dir> (in-process mode) persist the daemon cache on disk
  --retry <n>       attempts per request on connection failure (socket
                    mode; reconnects between attempts)    (default 1)
  --backoff-ms <n>  base retry backoff, doubled per attempt with
                    seed-deterministic jitter              (default 50)
  --stats-out <f>   write the daemon's final stats JSON to a file
  --shutdown        send a shutdown request after the run (socket mode)
";
    let chaos_ = "\
regpipe chaos [options]
  The deterministic crash-recovery gate: spawn real daemons on a shared
  --cache-dir, inject seeded faults (a compile panic, a flipped bit, a
  torn append, a mid-write crash) across --cycles inject-crash-restart
  cycles, and verify after every recovery that the full workload replays
  byte-identically to a never-crashed baseline. Prints a summary JSON
  (schema regpipe-chaos/v1) on success; any deviation fails the run.
  --socket <path>   daemon socket     (default: a fresh temp path)
  --cache-dir <dir> persistent cache  (default: a fresh temp dir)
  --cycles <n>      inject-crash-restart cycles        (default 3)
  --seed <s>        workload and fault-schedule seed   (default 7)
  --count <k>       workload kernels (at least 4)      (default 12)
  --jobs <n>        client connections (default: REGPIPE_JOBS, then all cores)
  --budgets <list>  comma-separated register budgets   (default 32)
  --strategy best|spill|increase-ii                    (default best)
  --scheduler hrms|sms|asap|exact                      (default hrms)
  --spill-policy paper|min-next-use|furthest-next-use|round-robin
                    sent with every request            (default paper)
  --machine <m>     as for compile                     (default p2l4)
  --out <file>      write the final clean replay's response lines
";
    let bench_serve_ = "\
regpipe bench-serve [options]
  Benchmark the daemon: drive a generated corpus through an in-process
  server for --repeat passes and write BENCH_serve.json (schema
  regpipe-bench-serve/v2) with request totals, cache hit/miss/eviction
  counters and the hit rate. By default only deterministic fields are
  emitted so runs byte-compare; set REGPIPE_BENCH_TIMING=1 to add
  throughput (compiles/sec) and p50/p99 request latencies.
  --seed <s>        generator seed               (default 49626)
  --count <k>       kernels                      (default 100)
  --repeat <n>      passes                       (default 2)
  --budgets <list>  register budgets             (default 64,32)
  --strategy best|spill|increase-ii              (default best)
  --scheduler hrms|sms|asap|exact                (default hrms)
  --spill-policy paper|min-next-use|furthest-next-use|round-robin
                    sent with every request      (default paper)
  --machine <m>     as for compile               (default p2l4)
  --jobs <n>        worker threads (default: REGPIPE_JOBS, then all cores)
  --no-cache        disable the daemon cache
  --out <file>      report path                  (default BENCH_serve.json)
";
    match topic {
        Some("info") => info.to_string(),
        Some("compile") => compile_.to_string(),
        Some("suite") => suite_.to_string(),
        Some("gen") => gen_.to_string(),
        Some("check") => check_.to_string(),
        Some("bench") => bench_.to_string(),
        Some("gap") => gap_.to_string(),
        Some("serve") => serve_.to_string(),
        Some("replay") => replay_.to_string(),
        Some("chaos") => chaos_.to_string(),
        Some("bench-serve") => bench_serve_.to_string(),
        _ => format!(
            "usage: regpipe <info|compile|suite|gen|check|bench|gap|serve|replay|chaos|bench-serve|help> ...\n\n\
             {info}\n{compile_}\n{suite_}\n{gen_}\n{check_}\n{bench_}\n{gap_}\n{serve_}\n{replay_}\n\
             {chaos_}\n{bench_serve_}\n\
             The on-disk formats (.ddg loops, .mach machine descriptions, corpus\n\
             directory layout) are specified in docs/formats.md; the serve wire\n\
             protocol in docs/serve.md.\n"
        ),
    }
}

fn load(path: &str) -> Result<Ddg, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    textfmt::parse_named(&text, path).map_err(|e| e.to_string())
}

fn parse_machine(spec: &str) -> Result<MachineConfig, String> {
    MachineConfig::parse_spec(spec)
}

/// Pulls `--key value` pairs from an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Whether `key` appears at all — [`Flags::get`] cannot distinguish a
    /// missing flag from a flag missing its value.
    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn positional(&self) -> Option<&'a str> {
        self.args.first().filter(|a| !a.starts_with("--")).map(String::as_str)
    }

    /// The `--scheduler` flag, resolved against the scheduler registry.
    /// Unknown names are a hard error naming the registered schedulers.
    fn scheduler(&self) -> Result<SchedulerKind, String> {
        self.get("--scheduler").map_or(Ok(SchedulerKind::default()), SchedulerKind::parse)
    }

    /// The `--spill-policy` flag, resolved against the spill-policy
    /// registry. Unknown names are a hard error naming the registered
    /// policies.
    fn spill_policy(&self) -> Result<SpillPolicyKind, String> {
        self.get("--spill-policy")
            .map_or(Ok(SpillPolicyKind::default()), SpillPolicyKind::parse)
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("info: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
    let scheduler = flags.scheduler()?;
    // Accepted for interface uniformity and validated against the
    // registry; the unconstrained schedule below never spills.
    flags.spill_policy()?;

    println!(
        "loop '{}': {} ops, {} edges, {} invariants",
        g.name(),
        g.num_ops(),
        g.num_edges(),
        g.num_invariants()
    );
    let hist = g.kind_histogram();
    let labels = ["load", "store", "add", "mul", "div", "sqrt", "copy"];
    let mix: Vec<String> = labels
        .iter()
        .zip(hist.iter())
        .filter(|(_, &c)| c > 0)
        .map(|(l, c)| format!("{c} {l}"))
        .collect();
    println!("op mix: {}", mix.join(", "));
    println!(
        "machine {}: ResMII-bound MII = {}, RecMII = {}",
        machine.name(),
        mii(&g, &machine),
        rec_mii(&g, &machine)
    );
    let recs = regpipe::ddg::algo::recurrences(&g);
    println!("recurrences: {}", recs.len());
    let s = scheduler
        .schedule(&g, &machine, &SchedRequest::default())
        .map_err(|e| e.to_string())?;
    let a = allocate(&g, &s);
    println!(
        "unconstrained schedule: II = {}, SC = {}, registers = {} (MaxLive {})",
        s.ii(),
        s.stage_count(),
        a.total(),
        a.max_live()
    );
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("compile: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
    let regs: u32 = flags
        .get("--regs")
        .unwrap_or("32")
        .parse()
        .map_err(|_| "bad --regs value".to_string())?;
    let strategy = parse_strategy(flags.get("--strategy").unwrap_or("best"))?;
    let heuristic = match flags.get("--heuristic").unwrap_or("lt-traf") {
        "lt" => SelectHeuristic::MaxLt,
        "lt-traf" => SelectHeuristic::MaxLtOverTraffic,
        other => return Err(format!("unknown heuristic '{other}'")),
    };
    let mut options =
        CompileOptions { strategy, scheduler: flags.scheduler()?, ..CompileOptions::default() };
    options.spill.heuristic = heuristic;
    options.spill.policy = flags.spill_policy()?;

    let compiled = compile(&g, &machine, regs, &options).map_err(|e| e.to_string())?;
    println!(
        "{}: II = {} (MII {}), registers = {}/{}, spilled = {}, strategy = {:?}",
        g.name(),
        compiled.ii(),
        mii(&g, &machine),
        compiled.registers_used(),
        regs,
        compiled.spilled(),
        compiled.strategy_used()
    );
    match flags.get("--emit").unwrap_or("kernel") {
        "kernel" => println!("\n{}", compiled.kernel()),
        "pipeline" => {
            println!("\n{}", PipelinedLoop::new(compiled.ddg(), compiled.schedule()));
        }
        "dot" => println!("{}", to_dot(compiled.ddg())),
        "text" => println!("{}", textfmt::format(compiled.ddg())),
        other => return Err(format!("unknown emit mode '{other}'")),
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let explicit_size: Option<usize> = match flags.get("--size") {
        Some(raw) => Some(
            raw.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--size must be a positive integer, got '{raw}'"))?,
        ),
        None => None,
    };
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("49626") // 0xC1DA
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    if flags.has("--corpus") {
        // External corpus: the loops (and possibly the machine) come from
        // disk; --size/--seed apply to the synthetic suite only, so
        // accepting them here would silently run a different workload
        // than the user asked for.
        let dir = flags.get("--corpus").ok_or("--corpus needs a directory")?;
        if explicit_size.is_some() {
            return Err("--size does not apply to --corpus (the directory decides)".into());
        }
        if flags.has("--seed") {
            return Err("--seed does not apply to --corpus (the directory decides)".into());
        }
        if flags.has("--dir") {
            return Err("--dir (corpus emission) cannot be combined with --corpus".into());
        }
        let corpus = load_corpus(dir).map_err(|e| format!("corpus {dir} is invalid:\n{e}"))?;
        // An explicit --machine wins over the corpus's .mach file.
        let machine = match (flags.get("--machine"), corpus.machine) {
            (Some(spec), _) => parse_machine(spec)?,
            (None, Some(m)) => m,
            (None, None) => MachineConfig::p2l4(),
        };
        let label = format!("corpus {dir}");
        return run_suite(&flags, machine, corpus.loops, &label);
    }
    match flags.get("--dir") {
        // Corpus emission keeps its historical default of 100 files.
        Some(dir) => emit_corpus(dir, seed, explicit_size.unwrap_or(100)),
        None => {
            // Run mode shares the harness's REGPIPE_SUITE_SIZE default so
            // the CI smoke path sizes the run with one env variable.
            let size = match explicit_size {
                Some(n) => n,
                None => suite_size_from_env()?,
            };
            let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
            let label = format!("seed {seed}");
            run_suite(&flags, machine, suite(seed, size), &label)
        }
    }
}

/// `suite --dir`: emit the archetype-mix suite as `.ddg` files.
fn emit_corpus(dir: &str, seed: u64, size: usize) -> Result<(), String> {
    let loops = suite(seed, size);
    write_corpus(dir, &loops)?;
    println!("wrote {} loops to {dir}/", loops.len());
    Ok(())
}

/// `suite` run mode: every cell through the batch engine.
fn run_suite(
    flags: &Flags<'_>,
    machine: MachineConfig,
    loops: Vec<BenchLoop>,
    label: &str,
) -> Result<(), String> {
    let jobs = resolve_jobs(flags.get("--jobs"))?;
    let budgets = flags
        .get("--budgets")
        .unwrap_or("64,32")
        .split(',')
        .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
        .collect::<Result<Vec<_>, _>>()?;
    let strategies = flags
        .get("--strategies")
        .unwrap_or("best,spill,increase-ii")
        .split(',')
        .map(parse_strategy)
        .collect::<Result<Vec<_>, _>>()?;
    let out_path = flags.get("--out").unwrap_or("BENCH_suite.json");
    let mut options =
        CompileOptions { scheduler: flags.scheduler()?, ..CompileOptions::default() };
    options.spill.policy = flags.spill_policy()?;

    let req = BatchRequest { machine, budgets, strategies, options, jobs };
    let report = run_batch(&loops, &req);

    println!(
        "=== suite evaluation: {} loops ({label}), machine {}, scheduler {} ===",
        report.suite_size, report.machine, report.scheduler
    );
    println!(
        "{:<8} {:<12} {:>7} {:>7} {:>12} {:>12} {:>9} {:>9}",
        "budget", "strategy", "fitted", "failed", "Mcycles", "Mmem-refs", "spilled", "resched"
    );
    for agg in report.aggregates() {
        println!(
            "{:<8} {:<12} {:>7} {:>7} {:>12.1} {:>12.1} {:>9} {:>9}",
            agg.budget,
            agg.strategy.map_or("?", strategy_slug),
            agg.fitted,
            agg.failures,
            agg.cycles as f64 / 1e6,
            agg.memory_refs as f64 / 1e6,
            agg.spilled,
            agg.reschedules
        );
    }
    // The JSON report keeps only deterministic fields by default so runs
    // byte-compare across --jobs values; REGPIPE_BENCH_TIMING=1 opts into
    // per-cell wall times. Timing for humans goes to stderr, off the
    // byte-comparable stream.
    let include_timing = std::env::var("REGPIPE_BENCH_TIMING").is_ok_and(|v| v == "1");
    fs::write(out_path, report.to_json(include_timing))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    eprintln!(
        "compiled {} cells with {} jobs in {:.2}s",
        report.cells.len(),
        report.jobs,
        report.total_wall.as_secs_f64()
    );
    Ok(())
}

/// Parses a `--weights` spec: `const:<w>`, `uniform:<lo>,<hi>`, or
/// `log:<lo>,<hi>`.
fn parse_weights(spec: &str) -> Result<WeightDist, String> {
    fn pair<'a>(rest: &'a str, kind: &str) -> Result<(&'a str, &'a str), String> {
        rest.split_once(',')
            .map(|(a, b)| (a.trim(), b.trim()))
            .ok_or_else(|| format!("--weights {kind}: expected '{kind}:<lo>,<hi>'"))
    }
    let (kind, rest) =
        spec.split_once(':').ok_or_else(|| format!("bad --weights spec '{spec}'"))?;
    match kind {
        "const" => {
            let w: u64 = rest.parse().map_err(|_| format!("bad constant weight '{rest}'"))?;
            Ok(WeightDist::Constant(w))
        }
        "uniform" => {
            let (lo, hi) = pair(rest, kind)?;
            let lo: u64 = lo.parse().map_err(|_| format!("bad weight bound '{lo}'"))?;
            let hi: u64 = hi.parse().map_err(|_| format!("bad weight bound '{hi}'"))?;
            Ok(WeightDist::Uniform { lo, hi })
        }
        "log" => {
            let (lo, hi) = pair(rest, kind)?;
            let lo_exp: f64 = lo.parse().map_err(|_| format!("bad exponent '{lo}'"))?;
            let hi_exp: f64 = hi.parse().map_err(|_| format!("bad exponent '{hi}'"))?;
            Ok(WeightDist::LogUniform { lo_exp, hi_exp })
        }
        other => Err(format!("unknown weight distribution '{other}'")),
    }
}

/// `regpipe gen`: materialize a knob-controlled synthetic corpus on disk.
fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let dir = flags.get("--out").ok_or("gen: missing --out directory")?;
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("49626")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let count: usize = match flags.get("--count").unwrap_or("100").parse() {
        Ok(n) if n > 0 => n,
        _ => return Err("--count must be a positive integer".into()),
    };
    let defaults = GenParams::default();
    let positive = |flag: &str, default: usize| -> Result<usize, String> {
        match flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} must be a positive integer, got '{raw}'")),
        }
    };
    let params = GenParams {
        min_ops: positive("--min-ops", defaults.min_ops)?,
        max_ops: positive("--max-ops", defaults.max_ops)?,
        recurrence_density: match flags.get("--rec-density") {
            None => defaults.recurrence_density,
            Some(raw) => raw.parse().map_err(|_| format!("bad --rec-density value '{raw}'"))?,
        },
        max_invariants: match flags.get("--invariants") {
            None => defaults.max_invariants,
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--invariants must be an integer, got '{raw}'"))?,
        },
        weights: match flags.get("--weights") {
            None => defaults.weights,
            Some(spec) => parse_weights(spec)?,
        },
    };
    let loops = generate(seed, count, &params)?;
    write_corpus(dir, &loops)?;
    println!("wrote {} kernels to {dir}/ (seed {seed})", loops.len());
    Ok(())
}

/// `regpipe bench`: wall-time the compile path over generated corpora.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let defaults = regpipe::bench::CompileBenchConfig::default();
    let list_usize = |raw: &str, flag: &str| -> Result<Vec<usize>, String> {
        raw.split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 1)
                    .ok_or_else(|| format!("{flag}: bad entry '{s}' (need integers > 1)"))
            })
            .collect()
    };
    let config = regpipe::bench::CompileBenchConfig {
        seed: match flags.get("--seed") {
            None => defaults.seed,
            Some(raw) => raw.parse().map_err(|_| "bad --seed value".to_string())?,
        },
        count: match flags.get("--count") {
            None => defaults.count,
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("--count must be a positive integer")?,
        },
        sizes: match flags.get("--sizes") {
            None => defaults.sizes,
            Some(raw) => list_usize(raw, "--sizes")?,
        },
        budgets: match flags.get("--budgets") {
            None => defaults.budgets,
            Some(raw) => raw
                .split(',')
                .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
                .collect::<Result<Vec<_>, _>>()?,
        },
        strategies: match flags.get("--strategies") {
            None => defaults.strategies,
            Some(raw) => raw.split(',').map(parse_strategy).collect::<Result<Vec<_>, _>>()?,
        },
        scheduler: flags.scheduler()?,
        spill_policy: flags.spill_policy()?,
        machine: parse_machine(flags.get("--machine").unwrap_or("p2l4"))?,
        timed: std::env::var("REGPIPE_BENCH_TIMING").is_ok_and(|v| v == "1"),
    };
    let before = match flags.get("--before") {
        None => None,
        Some(path) => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(
                regpipe::exec::json::parse(&text)
                    .map_err(|e| format!("{path} is not valid JSON: {e}"))?,
            )
        }
    };
    let out_path = flags.get("--out").unwrap_or("BENCH_compile.json");

    let report =
        regpipe::bench::run_compile_bench(&config).map_err(|e| format!("bench: {e}"))?;
    println!(
        "=== compile-path bench: machine {}, scheduler {}, {} kernels/size, budgets {:?} ===",
        config.machine.name(),
        config.scheduler,
        config.count,
        config.budgets
    );
    println!(
        "{:<6} {:>6} {:>7} {:>7} {:>12} {:>9} {:>9}  mean wall",
        "ops", "cells", "fitted", "failed", "cycles", "spilled", "resched"
    );
    for p in &report.points {
        let wall = p.measurement.map_or_else(
            || "(untimed)".to_string(),
            |m| format!("{:.2} ms x{}", m.mean_nanos() as f64 / 1e6, m.iters),
        );
        println!(
            "{:<6} {:>6} {:>7} {:>7} {:>12} {:>9} {:>9}  {wall}",
            p.ops, p.cells, p.fitted, p.failures, p.cycles, p.spilled, p.reschedules
        );
    }
    fs::write(out_path, report.to_json(before.as_ref()))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// `regpipe gap`: heuristic optimality gaps against the exact oracle.
fn cmd_gap(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let node_budget: u64 = match flags.get("--node-budget") {
        None => regpipe::sched::DEFAULT_NODE_BUDGET,
        Some(raw) => {
            raw.parse().map_err(|_| format!("--node-budget must be an integer, got '{raw}'"))?
        }
    };
    let jobs = resolve_jobs(flags.get("--jobs"))?;
    let out_path = flags.get("--out").unwrap_or("BENCH_gap.json");

    let (loops, machine, source) = if flags.has("--corpus") {
        let dir = flags.get("--corpus").ok_or("--corpus needs a directory")?;
        for flag in ["--seed", "--count", "--max-ops"] {
            if flags.has(flag) {
                return Err(format!(
                    "{flag} does not apply to --corpus (the directory decides)"
                ));
            }
        }
        let corpus = load_corpus(dir).map_err(|e| format!("corpus {dir} is invalid:\n{e}"))?;
        let machine = match (flags.get("--machine"), corpus.machine) {
            (Some(spec), _) => parse_machine(spec)?,
            (None, Some(m)) => m,
            (None, None) => MachineConfig::p2l4(),
        };
        (corpus.loops, machine, format!("corpus:{dir}"))
    } else {
        // Small kernels by default: the oracle's search space grows fast
        // with op count, and the gap corpus is about proof coverage, not
        // stress volume.
        let seed: u64 = flags
            .get("--seed")
            .unwrap_or("7")
            .parse()
            .map_err(|_| "bad --seed value".to_string())?;
        let count: usize = match flags.get("--count").unwrap_or("100").parse() {
            Ok(n) if n > 0 => n,
            _ => return Err("--count must be a positive integer".into()),
        };
        let max_ops: usize = match flags.get("--max-ops").unwrap_or("12").parse() {
            Ok(n) if n >= 2 => n,
            _ => return Err("--max-ops must be an integer >= 2".into()),
        };
        let defaults = GenParams::default();
        let params = GenParams { min_ops: defaults.min_ops.min(max_ops), max_ops, ..defaults };
        let loops = generate(seed, count, &params)?;
        let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
        (loops, machine, format!("gen:seed={seed},count={count},max_ops={max_ops}"))
    };

    let spill_budget: u32 =
        match flags.get("--spill-budget") {
            None => regpipe::bench::DEFAULT_SPILL_BUDGET,
            Some(raw) => raw.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("--spill-budget must be a positive integer, got '{raw}'")
            })?,
        };
    let config = regpipe::bench::GapConfig {
        machine,
        node_budget,
        jobs,
        source,
        spill_policy: flags.spill_policy()?,
        spill_budget,
    };
    let report = regpipe::bench::run_gap(&loops, &config);
    let proven = report.proven();
    println!(
        "=== optimality gaps: {} loops ({}), machine {}, node budget {} ===",
        report.loops.len(),
        config.source,
        config.machine.name(),
        config.node_budget
    );
    println!(
        "proven optimal: {proven}/{} loops ({} search nodes)",
        report.loops.len(),
        report.nodes_total()
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>16}",
        "sched", "II-optimal", "sum II gap", "sum SC gap", "sum MaxLive gap"
    );
    for a in report.aggregates() {
        println!(
            "{:<8} {:>7}/{proven} {:>12} {:>12} {:>16}",
            a.scheduler.slug(),
            a.ii_optimal,
            a.ii_gap_total,
            a.sc_gap_total,
            a.max_live_gap_total
        );
    }
    println!(
        "spill policies (budget {}, {} comparable loops, deltas vs {}):",
        config.spill_budget,
        report.spill_comparable(),
        config.spill_policy
    );
    println!(
        "{:<18} {:>7} {:>12} {:>9} {:>10} {:>7}",
        "policy", "fitted", "sum spilled", "d-spill", "sum II", "d-II"
    );
    for a in report.spill_aggregates() {
        println!(
            "{:<18} {:>7} {:>12} {:>+9} {:>10} {:>+7}",
            a.policy.slug(),
            a.fitted,
            a.spilled_total,
            a.spilled_delta,
            a.ii_total,
            a.ii_delta
        );
    }
    fs::write(out_path, report.to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

/// `regpipe check`: validate a corpus directory without compiling.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let dir = flags.positional().ok_or("check: missing corpus directory")?;
    let corpus = match load_corpus(dir) {
        Ok(corpus) => corpus,
        Err(e) => {
            for file_error in &e.errors {
                eprintln!("{file_error}");
            }
            let n = e.errors.len();
            return Err(format!("corpus {dir} has {n} error{}", if n == 1 { "" } else { "s" }));
        }
    };
    let ops: usize = corpus.loops.iter().map(|l| l.ddg.num_ops()).sum();
    let machine = corpus
        .machine
        .as_ref()
        .map_or_else(|| "none (default applies)".to_string(), |m| m.to_string());
    println!("corpus {dir}: OK");
    println!("  loops:   {} ({ops} ops total)", corpus.loops.len());
    println!("  machine: {machine}");
    Ok(())
}

/// Serve/replay options shared by several flags.
fn serve_options(flags: &Flags<'_>) -> Result<ServeOptions, String> {
    let defaults = ServeOptions::default();
    let size = |flag: &str, default: usize| -> Result<usize, String> {
        match flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} must be a positive integer, got '{raw}'")),
        }
    };
    let size64 = |flag: &str, default: u64| -> Result<u64, String> {
        match flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} must be a positive integer, got '{raw}'")),
        }
    };
    Ok(ServeOptions {
        cache: !flags.has("--no-cache"),
        capacity_bytes: size("--cache-bytes", defaults.capacity_bytes)?,
        shards: size("--shards", defaults.shards)?,
        max_request_bytes: size("--max-request-bytes", defaults.max_request_bytes)?,
        cache_dir: flags.get("--cache-dir").map(std::path::PathBuf::from),
        deadline_ms: match flags.get("--deadline-ms") {
            None => None,
            Some(_) => Some(size64("--deadline-ms", 0)?),
        },
        compact_appends: size64("--compact-appends", defaults.compact_appends)?,
        drain_ms: size64("--drain-ms", defaults.drain_ms)?,
        default_spill_policy: flags.spill_policy()?,
    })
}

/// `regpipe serve`: the persistent compile daemon.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    // A malformed fault plan is a configuration error, not "no faults".
    regpipe::serve::fault::validate_env()?;
    let server = Server::open(serve_options(&flags)?)?;
    match flags.get("--socket") {
        None => serve_stdin(&server).map_err(|e| format!("serve: {e}")),
        Some(path) => {
            #[cfg(unix)]
            {
                eprintln!("regpipe serve: listening on {path}");
                regpipe::serve::serve_socket(&server, std::path::Path::new(path))
                    .map_err(|e| format!("serve: cannot listen on {path}: {e}"))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err("serve: --socket requires a unix platform".into())
            }
        }
    }
}

/// `regpipe replay`: drive a request stream at a daemon.
fn cmd_replay(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("49626")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let count: usize = match flags.get("--count").unwrap_or("100").parse() {
        Ok(n) if n > 0 => n,
        _ => return Err("--count must be a positive integer".into()),
    };
    let repeat: usize = match flags.get("--repeat").unwrap_or("1").parse() {
        Ok(n) if n > 0 => n,
        _ => return Err("--repeat must be a positive integer".into()),
    };
    let jobs = resolve_jobs(flags.get("--jobs"))?;
    let config = ReplayConfig {
        budgets: flags
            .get("--budgets")
            .unwrap_or("32")
            .split(',')
            .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
            .collect::<Result<Vec<_>, _>>()?,
        strategy: parse_strategy(flags.get("--strategy").unwrap_or("best"))?,
        scheduler: flags.scheduler()?,
        spill_policy: flags.spill_policy()?,
        machine_spec: Some(flags.get("--machine").unwrap_or("p2l4").to_string()),
    };
    let (source, ids) = match (flags.get("--file"), flags.get("--source").unwrap_or("gen")) {
        (Some(path), _) => (ReplaySource::File(path.to_string()), IdPolicy::Verbatim),
        (None, "gen") => (ReplaySource::Gen { seed, count }, IdPolicy::Stream),
        (None, "suite") => (ReplaySource::Suite { seed, size: count }, IdPolicy::Stream),
        (None, other) => return Err(format!("unknown --source '{other}' (gen|suite)")),
    };
    let base = base_requests(&source, &config)?;
    if base.is_empty() {
        return Err("replay: empty request stream".into());
    }

    let retry = RetryPolicy {
        attempts: match flags.get("--retry").unwrap_or("1").parse() {
            Ok(n) if n > 0 => n,
            _ => return Err("--retry must be a positive integer".into()),
        },
        backoff_ms: match flags.get("--backoff-ms").unwrap_or("50").parse() {
            Ok(n) => n,
            _ => return Err("--backoff-ms must be an integer".into()),
        },
        seed,
    };

    let (outcome, stats) = match flags.get("--socket") {
        None => {
            let server = Server::open(serve_options(&flags)?)?;
            let outcome = replay_in_process(&server, &base, repeat, jobs, ids);
            (outcome, server.stats_payload())
        }
        Some(path) => {
            #[cfg(unix)]
            {
                let path = std::path::Path::new(path);
                let outcome = replay_socket(path, &base, repeat, jobs, ids, retry)
                    .map_err(|e| format!("replay: {e}"))?;
                let stats = request_once(path, "{\"op\":\"stats\"}")
                    .map_err(|e| format!("replay: stats request failed: {e}"))?;
                if flags.has("--shutdown") {
                    request_once(path, "{\"op\":\"shutdown\"}")
                        .map_err(|e| format!("replay: shutdown request failed: {e}"))?;
                }
                (outcome, stats)
            }
            #[cfg(not(unix))]
            {
                let _ = (path, retry);
                return Err("replay: --socket requires a unix platform".into());
            }
        }
    };

    // Responses in request order: the byte-comparable stream.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    use std::io::Write as _;
    for line in &outcome.responses {
        writeln!(out, "{line}").map_err(|e| format!("replay: {e}"))?;
    }
    out.flush().map_err(|e| format!("replay: {e}"))?;
    if let Some(path) = flags.get("--stats-out") {
        fs::write(path, format!("{stats}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "replayed {} requests ({} x {repeat} passes) in {:.2}s",
        outcome.responses.len(),
        base.len(),
        outcome.wall_us as f64 / 1e6
    );
    Ok(())
}

/// `regpipe chaos`: the deterministic crash-recovery gate.
#[cfg(unix)]
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("7")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let cycles: u32 = match flags.get("--cycles").unwrap_or("3").parse() {
        Ok(n) if n > 0 => n,
        _ => return Err("--cycles must be a positive integer".into()),
    };
    let count: usize = match flags.get("--count").unwrap_or("12").parse() {
        Ok(n) if n >= 4 => n,
        _ => return Err("--count must be an integer >= 4".into()),
    };
    let pid = std::process::id();
    let socket = flags.get("--socket").map_or_else(
        || std::env::temp_dir().join(format!("regpipe-chaos-{pid}.sock")),
        std::path::PathBuf::from,
    );
    let scratch_cache = !flags.has("--cache-dir");
    let cache_dir = flags.get("--cache-dir").map_or_else(
        || std::env::temp_dir().join(format!("regpipe-chaos-cache-{pid}")),
        std::path::PathBuf::from,
    );
    let config = ChaosConfig {
        exe: std::env::current_exe()
            .map_err(|e| format!("chaos: cannot locate the regpipe binary: {e}"))?,
        socket,
        cache_dir,
        cycles,
        seed,
        count,
        jobs: resolve_jobs(flags.get("--jobs"))?,
        replay: ReplayConfig {
            budgets: flags
                .get("--budgets")
                .unwrap_or("32")
                .split(',')
                .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
                .collect::<Result<Vec<_>, _>>()?,
            strategy: parse_strategy(flags.get("--strategy").unwrap_or("best"))?,
            scheduler: flags.scheduler()?,
            spill_policy: flags.spill_policy()?,
            machine_spec: Some(flags.get("--machine").unwrap_or("p2l4").to_string()),
        },
    };
    let result = run_chaos(&config);
    if scratch_cache {
        let _ = fs::remove_dir_all(&config.cache_dir);
    }
    let report = result?;
    if let Some(path) = flags.get("--out") {
        write_responses(std::path::Path::new(path), &report.final_responses)?;
    }
    println!("{}", report.render_json());
    Ok(())
}

/// `regpipe chaos` spawns daemons over unix sockets; nothing to gate
/// elsewhere.
#[cfg(not(unix))]
fn cmd_chaos(_args: &[String]) -> Result<(), String> {
    Err("chaos: requires a unix platform".into())
}

/// `regpipe bench-serve`: benchmark the daemon and write `BENCH_serve.json`.
fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let defaults = ServeBenchConfig::default();
    let config = ServeBenchConfig {
        seed: match flags.get("--seed") {
            None => 49626,
            Some(raw) => raw.parse().map_err(|_| "bad --seed value".to_string())?,
        },
        count: match flags.get("--count") {
            None => defaults.count,
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("--count must be a positive integer")?,
        },
        repeat: match flags.get("--repeat") {
            None => defaults.repeat,
            Some(raw) => raw
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("--repeat must be a positive integer")?,
        },
        budgets: match flags.get("--budgets") {
            None => defaults.budgets,
            Some(raw) => raw
                .split(',')
                .map(|b| b.parse::<u32>().map_err(|_| format!("bad budget '{b}' in --budgets")))
                .collect::<Result<Vec<_>, _>>()?,
        },
        strategy: parse_strategy(flags.get("--strategy").unwrap_or("best"))?,
        scheduler: flags.scheduler()?,
        spill_policy: flags.spill_policy()?,
        machine_spec: {
            let spec = flags.get("--machine").unwrap_or("p2l4");
            parse_machine(spec)?; // validate the spelling up front
            spec.to_string()
        },
        jobs: resolve_jobs(flags.get("--jobs"))?,
        cache: !flags.has("--no-cache"),
        timed: std::env::var("REGPIPE_BENCH_TIMING").is_ok_and(|v| v == "1"),
    };
    let out_path = flags.get("--out").unwrap_or("BENCH_serve.json");
    let report = run_serve_bench(&config).map_err(|e| format!("bench-serve: {e}"))?;
    println!(
        "=== serve bench: {} kernels x {:?} budgets x {} passes, machine {}, scheduler {} ===",
        config.count, config.budgets, config.repeat, config.machine_spec, config.scheduler
    );
    println!(
        "requests {}  fitted {}  failed {}  hits {}  misses {}  evictions {}  hit rate {:.2}%",
        report.requests,
        report.fitted,
        report.failed,
        report.hits,
        report.misses,
        report.evictions,
        report.hit_rate * 100.0
    );
    if let Some(t) = &report.timing {
        eprintln!(
            "wall {:.2}s, {:.0} compiles/sec, p50 {} us, p99 {} us ({} jobs)",
            t.total_wall_us as f64 / 1e6,
            t.compiles_per_sec,
            t.p50_us,
            t.p99_us,
            config.jobs
        );
    }
    fs::write(out_path, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
