//! The `regpipe` command-line tool: compile loop dependence graphs under a
//! register budget from the terminal.
//!
//! ```text
//! regpipe info <file.ddg>                      facts about a loop
//! regpipe compile <file.ddg> [options]         schedule under a budget
//! regpipe suite --size N [--seed S] [--dir D]  emit a synthetic corpus
//!
//! compile options:
//!   --machine p1l4|p2l4|p2l6|uniform:<units>,<latency>   (default p2l4)
//!   --regs <n>                                           (default 32)
//!   --strategy best|spill|increase-ii                    (default best)
//!   --heuristic lt|lt-traf                               (default lt-traf)
//!   --emit kernel|pipeline|dot|text                      (default kernel)
//! ```
//!
//! The input format is documented in `regpipe_ddg::textfmt`.

use std::fs;
use std::process::ExitCode;

use regpipe::core::{compile, CompileOptions, Strategy};
use regpipe::ddg::{textfmt, to_dot, Ddg};
use regpipe::loops::suite;
use regpipe::machine::MachineConfig;
use regpipe::regalloc::allocate;
use regpipe::sched::{mii, rec_mii, HrmsScheduler, PipelinedLoop, SchedRequest, Scheduler};
use regpipe::spill::SelectHeuristic;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("usage: regpipe <info|compile|suite> ... (see --help in the crate docs)");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("regpipe: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<Ddg, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    textfmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_machine(spec: &str) -> Result<MachineConfig, String> {
    match spec {
        "p1l4" => Ok(MachineConfig::p1l4()),
        "p2l4" => Ok(MachineConfig::p2l4()),
        "p2l6" => Ok(MachineConfig::p2l6()),
        other => {
            if let Some(rest) = other.strip_prefix("uniform:") {
                let (units, lat) = rest
                    .split_once(',')
                    .ok_or_else(|| format!("bad uniform spec '{other}'"))?;
                let units: u32 =
                    units.parse().map_err(|_| format!("bad unit count '{units}'"))?;
                let lat: u32 = lat.parse().map_err(|_| format!("bad latency '{lat}'"))?;
                if units == 0 || lat == 0 {
                    return Err("uniform machine needs positive units and latency".into());
                }
                Ok(MachineConfig::uniform(units, lat))
            } else {
                Err(format!("unknown machine '{other}'"))
            }
        }
    }
}

/// Pulls `--key value` pairs from an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn positional(&self) -> Option<&'a str> {
        self.args.first().filter(|a| !a.starts_with("--")).map(String::as_str)
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("info: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;

    println!(
        "loop '{}': {} ops, {} edges, {} invariants",
        g.name(),
        g.num_ops(),
        g.num_edges(),
        g.num_invariants()
    );
    let hist = g.kind_histogram();
    let labels = ["load", "store", "add", "mul", "div", "sqrt", "copy"];
    let mix: Vec<String> = labels
        .iter()
        .zip(hist.iter())
        .filter(|(_, &c)| c > 0)
        .map(|(l, c)| format!("{c} {l}"))
        .collect();
    println!("op mix: {}", mix.join(", "));
    println!(
        "machine {}: ResMII-bound MII = {}, RecMII = {}",
        machine.name(),
        mii(&g, &machine),
        rec_mii(&g, &machine)
    );
    let recs = regpipe::ddg::algo::recurrences(&g);
    println!("recurrences: {}", recs.len());
    let s = HrmsScheduler::new()
        .schedule(&g, &machine, &SchedRequest::default())
        .map_err(|e| e.to_string())?;
    let a = allocate(&g, &s);
    println!(
        "unconstrained schedule: II = {}, SC = {}, registers = {} (MaxLive {})",
        s.ii(),
        s.stage_count(),
        a.total(),
        a.max_live()
    );
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let path = flags.positional().ok_or("compile: missing input file")?;
    let g = load(path)?;
    let machine = parse_machine(flags.get("--machine").unwrap_or("p2l4"))?;
    let regs: u32 = flags
        .get("--regs")
        .unwrap_or("32")
        .parse()
        .map_err(|_| "bad --regs value".to_string())?;
    let strategy = match flags.get("--strategy").unwrap_or("best") {
        "best" => Strategy::BestOfAll,
        "spill" => Strategy::Spill,
        "increase-ii" => Strategy::IncreaseIi,
        other => return Err(format!("unknown strategy '{other}'")),
    };
    let heuristic = match flags.get("--heuristic").unwrap_or("lt-traf") {
        "lt" => SelectHeuristic::MaxLt,
        "lt-traf" => SelectHeuristic::MaxLtOverTraffic,
        other => return Err(format!("unknown heuristic '{other}'")),
    };
    let mut options = CompileOptions { strategy, ..CompileOptions::default() };
    options.spill.heuristic = heuristic;

    let compiled = compile(&g, &machine, regs, &options).map_err(|e| e.to_string())?;
    println!(
        "{}: II = {} (MII {}), registers = {}/{}, spilled = {}, strategy = {:?}",
        g.name(),
        compiled.ii(),
        mii(&g, &machine),
        compiled.registers_used(),
        regs,
        compiled.spilled(),
        compiled.strategy_used()
    );
    match flags.get("--emit").unwrap_or("kernel") {
        "kernel" => println!("\n{}", compiled.kernel()),
        "pipeline" => {
            println!("\n{}", PipelinedLoop::new(compiled.ddg(), compiled.schedule()));
        }
        "dot" => println!("{}", to_dot(compiled.ddg())),
        "text" => println!("{}", textfmt::format(compiled.ddg())),
        other => return Err(format!("unknown emit mode '{other}'")),
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let size: usize = flags
        .get("--size")
        .unwrap_or("100")
        .parse()
        .map_err(|_| "bad --size value".to_string())?;
    let seed: u64 = flags
        .get("--seed")
        .unwrap_or("49626") // 0xC1DA
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let dir = flags.get("--dir").unwrap_or("suite");
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let loops = suite(seed, size);
    for l in &loops {
        let path = format!("{dir}/{}.ddg", l.name);
        let mut text = format!("# weight {}\n", l.weight);
        text.push_str(&textfmt::format(&l.ddg));
        fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!("wrote {} loops to {dir}/", loops.len());
    Ok(())
}
