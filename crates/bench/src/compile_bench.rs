//! The `regpipe bench` harness: wall-times the full `compile` path over
//! seeded synthetic corpora at several kernel sizes and renders
//! `BENCH_compile.json` (schema `regpipe-bench-compile/v1`).
//!
//! The timing loop is the criterion-compat sampling plan
//! ([`criterion::measure`]) so numbers are comparable with the `cargo
//! bench` micro-benchmarks. As with `BENCH_suite.json`, the emitted file
//! contains only deterministic work counters unless timing is explicitly
//! requested (`REGPIPE_BENCH_TIMING=1` via the CLI), so smoke runs
//! byte-compare across machines and job counts; a previous timed report can
//! be threaded back in (`regpipe bench --before <file>`) to record
//! before/after speedups in one artifact.

use criterion::{measure, Measurement};
use regpipe_core::{compile, CompileOptions, SpillPolicyKind, Strategy};
use regpipe_exec::json::Value;
use regpipe_exec::strategy_slug;
use regpipe_loops::{generate, BenchLoop, GenParams};
use regpipe_machine::MachineConfig;
use regpipe_sched::SchedulerKind;

/// Configuration of one `regpipe bench` run.
#[derive(Clone, Debug)]
pub struct CompileBenchConfig {
    /// Generator seed for every per-size corpus.
    pub seed: u64,
    /// Kernels generated per size point.
    pub count: usize,
    /// Kernel sizes (exact op counts) to sweep.
    pub sizes: Vec<usize>,
    /// Register budgets per cell.
    pub budgets: Vec<u32>,
    /// Strategies per cell.
    pub strategies: Vec<Strategy>,
    /// The core modulo scheduler every cell runs (`--scheduler`).
    pub scheduler: SchedulerKind,
    /// Victim-ranking policy for every spilling cell (`--spill-policy`).
    pub spill_policy: SpillPolicyKind,
    /// Machine model.
    pub machine: MachineConfig,
    /// Whether to run the sampling loop and include wall-time fields.
    pub timed: bool,
}

impl Default for CompileBenchConfig {
    /// Mirrors the suite defaults: budgets 64/32, all three strategies,
    /// P2L4, sizes spanning small to stress-test kernels.
    fn default() -> Self {
        CompileBenchConfig {
            seed: 49626,
            count: 12,
            sizes: vec![16, 48, 96, 160, 256],
            budgets: vec![64, 32],
            strategies: vec![Strategy::BestOfAll, Strategy::Spill, Strategy::IncreaseIi],
            scheduler: SchedulerKind::default(),
            spill_policy: SpillPolicyKind::default(),
            machine: MachineConfig::p2l4(),
            timed: false,
        }
    }
}

/// Deterministic work counters plus (optionally) the timing of one size
/// point.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Ops per kernel at this point.
    pub ops: usize,
    /// Kernels compiled.
    pub loops: usize,
    /// `loops × budgets × strategies` compile calls per sweep.
    pub cells: usize,
    /// Cells that fit their budget.
    pub fitted: u32,
    /// Cells whose strategy failed (deterministic, counted not summed).
    pub failures: u32,
    /// Σ II·weight over fitted cells.
    pub cycles: u64,
    /// Σ lifetimes spilled over fitted cells.
    pub spilled: u64,
    /// Σ scheduling rounds over fitted cells.
    pub reschedules: u64,
    /// Wall measurement of one full sweep (present when timed).
    pub measurement: Option<Measurement>,
}

/// The collected result of a bench run.
#[derive(Clone, Debug)]
pub struct CompileBenchReport {
    /// The configuration that produced it.
    pub config: CompileBenchConfig,
    /// One point per entry of `config.sizes`, in order.
    pub points: Vec<SizePoint>,
}

/// One full sweep: compiles every `loop × budget × strategy` cell and
/// returns `(fitted, failures, cycles, spilled, reschedules)`.
fn sweep(loops: &[BenchLoop], cfg: &CompileBenchConfig) -> (u32, u32, u64, u64, u64) {
    let (mut fitted, mut failures) = (0u32, 0u32);
    let (mut cycles, mut spilled, mut reschedules) = (0u64, 0u64, 0u64);
    for l in loops {
        for &budget in &cfg.budgets {
            for &strategy in &cfg.strategies {
                let mut options = CompileOptions {
                    strategy,
                    scheduler: cfg.scheduler,
                    ..CompileOptions::default()
                };
                options.spill.policy = cfg.spill_policy;
                match compile(&l.ddg, &cfg.machine, budget, &options) {
                    Ok(c) => {
                        fitted += 1;
                        cycles += u64::from(c.ii()) * l.weight;
                        spilled += u64::from(c.spilled());
                        reschedules += u64::from(c.reschedules());
                    }
                    Err(_) => failures += 1,
                }
            }
        }
    }
    (fitted, failures, cycles, spilled, reschedules)
}

/// Runs the bench: one generated corpus and one (optionally sampled) sweep
/// per size.
///
/// # Errors
///
/// Propagates generator knob validation errors.
pub fn run_compile_bench(cfg: &CompileBenchConfig) -> Result<CompileBenchReport, String> {
    let mut points = Vec::with_capacity(cfg.sizes.len());
    for &ops in &cfg.sizes {
        let params = GenParams { min_ops: ops, max_ops: ops, ..GenParams::default() };
        let loops = generate(cfg.seed, cfg.count, &params)?;
        let (fitted, failures, cycles, spilled, reschedules) = sweep(&loops, cfg);
        let measurement =
            cfg.timed.then(|| measure(true, || std::hint::black_box(sweep(&loops, cfg))));
        points.push(SizePoint {
            ops,
            loops: loops.len(),
            cells: loops.len() * cfg.budgets.len() * cfg.strategies.len(),
            fitted,
            failures,
            cycles,
            spilled,
            reschedules,
            measurement,
        });
    }
    Ok(CompileBenchReport { config: cfg.clone(), points })
}

impl CompileBenchReport {
    /// Renders `BENCH_compile.json` (schema `regpipe-bench-compile/v3`;
    /// v2 added the top-level `scheduler` field recording the scheduler
    /// axis of the run, v3 the `spill_policy` field).
    ///
    /// Deterministic fields always appear; `mean_wall_us`/`iters` only for
    /// timed runs. When `before` carries a previously emitted *timed*
    /// report, each size point additionally records that run's
    /// `before_mean_wall_us` and the resulting `speedup` — the one-artifact
    /// before/after record for a perf PR.
    pub fn to_json(&self, before: Option<&Value>) -> String {
        let before_points: Vec<(i64, f64)> = before
            .and_then(|v| v.get("sizes"))
            .and_then(Value::as_array)
            .map(|sizes| {
                sizes
                    .iter()
                    .filter_map(|p| match (p.get("ops"), p.get("mean_wall_us")) {
                        (Some(&Value::Int(ops)), Some(&Value::Int(us))) => {
                            Some((ops, us as f64))
                        }
                        (Some(&Value::Int(ops)), Some(&Value::Num(us))) => Some((ops, us)),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();

        let mut top = vec![
            ("schema".to_string(), Value::Str("regpipe-bench-compile/v3".into())),
            ("machine".to_string(), Value::Str(self.config.machine.name().to_string())),
            ("scheduler".to_string(), Value::Str(self.config.scheduler.slug().into())),
            ("spill_policy".to_string(), Value::Str(self.config.spill_policy.slug().into())),
            ("seed".to_string(), Value::uint(self.config.seed)),
            ("count_per_size".to_string(), Value::uint(self.config.count as u64)),
            (
                "budgets".to_string(),
                Value::Array(
                    self.config.budgets.iter().map(|&b| Value::uint(u64::from(b))).collect(),
                ),
            ),
            (
                "strategies".to_string(),
                Value::Array(
                    self.config
                        .strategies
                        .iter()
                        .map(|&s| Value::Str(strategy_slug(s).into()))
                        .collect(),
                ),
            ),
        ];
        let sizes = self
            .points
            .iter()
            .map(|p| {
                let mut pairs = vec![
                    ("ops".to_string(), Value::uint(p.ops as u64)),
                    ("loops".to_string(), Value::uint(p.loops as u64)),
                    ("cells".to_string(), Value::uint(p.cells as u64)),
                    ("fitted".to_string(), Value::uint(u64::from(p.fitted))),
                    ("failures".to_string(), Value::uint(u64::from(p.failures))),
                    ("cycles".to_string(), Value::uint(p.cycles)),
                    ("spilled".to_string(), Value::uint(p.spilled)),
                    ("reschedules".to_string(), Value::uint(p.reschedules)),
                ];
                if let Some(m) = p.measurement {
                    let mean_us = m.mean_nanos() as f64 / 1e3;
                    pairs.push(("iters".into(), Value::uint(m.iters)));
                    pairs.push(("mean_wall_us".into(), Value::Num(round2(mean_us))));
                    if let Some(&(_, before_us)) =
                        before_points.iter().find(|&&(ops, _)| ops == p.ops as i64)
                    {
                        pairs.push(("before_mean_wall_us".into(), Value::Num(before_us)));
                        if mean_us > 0.0 {
                            pairs.push((
                                "speedup".into(),
                                Value::Num(round2(before_us / mean_us)),
                            ));
                        }
                    }
                }
                Value::Object(pairs)
            })
            .collect();
        top.push(("sizes".into(), Value::Array(sizes)));
        let mut text = Value::Object(top).render();
        text.push('\n');
        text
    }
}

/// Two-decimal rounding for report floats (stable rendering).
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CompileBenchConfig {
        CompileBenchConfig {
            count: 3,
            sizes: vec![6, 10],
            budgets: vec![32],
            strategies: vec![Strategy::BestOfAll],
            timed: false,
            ..CompileBenchConfig::default()
        }
    }

    #[test]
    fn untimed_report_is_deterministic_and_wall_free() {
        let a = run_compile_bench(&tiny()).unwrap().to_json(None);
        let b = run_compile_bench(&tiny()).unwrap().to_json(None);
        assert_eq!(a, b, "two untimed runs must render byte-identically");
        assert!(!a.contains("mean_wall_us"));
        let doc = regpipe_exec::json::parse(&a).expect("report parses");
        assert_eq!(doc.get("schema"), Some(&Value::Str("regpipe-bench-compile/v3".into())));
        assert_eq!(doc.get("scheduler"), Some(&Value::Str("hrms".into())));
        assert_eq!(doc.get("spill_policy"), Some(&Value::Str("paper".into())));
        assert_eq!(doc.get("sizes").and_then(Value::as_array).map(<[Value]>::len), Some(2));
    }

    /// A non-default scheduler flows into every cell and into the report's
    /// top-level `scheduler` field.
    #[test]
    fn scheduler_axis_is_recorded() {
        let cfg = CompileBenchConfig { scheduler: SchedulerKind::Sms, ..tiny() };
        let text = run_compile_bench(&cfg).unwrap().to_json(None);
        let doc = regpipe_exec::json::parse(&text).expect("report parses");
        assert_eq!(doc.get("scheduler"), Some(&Value::Str("sms".into())));
    }

    /// A non-default spill policy flows into every cell and into the
    /// report's top-level `spill_policy` field.
    #[test]
    fn spill_policy_axis_is_recorded() {
        let cfg = CompileBenchConfig {
            spill_policy: SpillPolicyKind::MinNextUse,
            budgets: vec![8],
            ..tiny()
        };
        let text = run_compile_bench(&cfg).unwrap().to_json(None);
        let doc = regpipe_exec::json::parse(&text).expect("report parses");
        assert_eq!(doc.get("spill_policy"), Some(&Value::Str("min-next-use".into())));
    }

    #[test]
    fn timed_report_records_speedup_against_before() {
        let cfg = CompileBenchConfig { timed: true, sizes: vec![6], count: 2, ..tiny() };
        let report = run_compile_bench(&cfg).unwrap();
        let timed = report.to_json(None);
        assert!(timed.contains("mean_wall_us"));
        let before = regpipe_exec::json::parse(&timed).unwrap();
        let chained = report.to_json(Some(&before));
        assert!(chained.contains("before_mean_wall_us"));
        assert!(chained.contains("speedup"));
        regpipe_exec::json::parse(&chained).expect("chained report parses");
    }

    #[test]
    fn work_counters_match_between_runs_of_different_timing_modes() {
        let untimed = run_compile_bench(&tiny()).unwrap();
        let timed = run_compile_bench(&CompileBenchConfig { timed: true, ..tiny() }).unwrap();
        for (u, t) in untimed.points.iter().zip(&timed.points) {
            assert_eq!((u.fitted, u.failures, u.cycles), (t.fitted, t.failures, t.cycles));
            assert!(t.measurement.is_some() && u.measurement.is_none());
        }
    }
}
