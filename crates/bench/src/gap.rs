//! The `regpipe gap` harness: heuristic optimality gaps against the exact
//! branch-and-bound oracle, rendered as `BENCH_gap.json` (schema
//! `regpipe-bench-gap/v2`; v2 added the per-spill-policy section).
//!
//! Every loop is scheduled once by [`ExactScheduler`] and once by each
//! registered heuristic ([`gap_heuristics`]), all sharing one
//! [`LoopAnalysis`] context. The report records per-loop and aggregate
//! II/SC/MaxLive gaps (`heuristic − exact`), the oracle's
//! `Proven`/`BudgetExhausted` status, and its node counts. Gap fields are
//! only attributed to loops whose optimum the oracle *proved*: against an
//! unproven best-effort schedule a difference is not an optimality gap.
//!
//! Alongside the scheduler comparison, every loop is also compiled under
//! a fixed register budget once per registered [`SpillPolicyKind`]; the
//! report's `spill_policies` section totals spill counts and achieved IIs
//! per policy — restricted to the loops every policy fitted, so the
//! deltas against the baseline policy (`--spill-policy`) compare
//! identical loop sets.
//!
//! The report carries no wall-clock fields at all — unlike `BENCH_suite`
//! and `BENCH_compile` there is no timing opt-in — so runs byte-compare
//! across machines and `--jobs` values unconditionally (per-loop work is
//! fanned out with [`parallel_map`] and folded in loop order).

use std::num::NonZeroUsize;

use regpipe_core::{compile, CompileOptions, SpillPolicyKind};
use regpipe_exec::json::Value;
use regpipe_exec::parallel_map;
use regpipe_loops::BenchLoop;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::allocate;
use regpipe_sched::{ExactScheduler, LoopAnalysis, SchedRequest, Scheduler, SchedulerKind};

/// Default register budget for the per-spill-policy comparison
/// (`--spill-budget`): tight enough that small generated kernels actually
/// spill, loose enough that every policy usually fits.
pub const DEFAULT_SPILL_BUDGET: u32 = 16;

/// The heuristic side of the comparison: every registered scheduler
/// except the oracle itself, in registry order.
pub fn gap_heuristics() -> impl Iterator<Item = SchedulerKind> {
    SchedulerKind::ALL.into_iter().filter(|k| *k != SchedulerKind::Exact)
}

/// Configuration of one `regpipe gap` run.
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Machine model every schedule targets.
    pub machine: MachineConfig,
    /// The oracle's search budget per loop (`--node-budget`).
    pub node_budget: u64,
    /// Worker threads for the per-loop fan-out.
    pub jobs: NonZeroUsize,
    /// Where the loops came from (recorded in the report, e.g.
    /// `gen:seed=7,count=100,max_ops=12` or `corpus:<dir>`).
    pub source: String,
    /// Baseline policy the per-policy deltas are taken against
    /// (`--spill-policy`).
    pub spill_policy: SpillPolicyKind,
    /// Register budget for the per-policy compile comparison
    /// (`--spill-budget`).
    pub spill_budget: u32,
}

/// One schedule's quality numbers: the three axes the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchedPoint {
    /// Initiation interval.
    pub ii: u32,
    /// Stage count.
    pub sc: u32,
    /// MaxLive plus invariants — the actual register requirement.
    pub max_live: u32,
}

/// One spill policy's compile outcome on one loop (`None` when the loop
/// did not fit the spill budget under that policy).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpillOutcome {
    /// Achieved initiation interval of the budgeted compile.
    pub ii: u32,
    /// Lifetimes spilled to fit the budget.
    pub spilled: u32,
}

/// One loop's oracle outcome next to every heuristic's schedule.
#[derive(Clone, Debug)]
pub struct LoopGap {
    /// Loop name (corpus file stem or generator serial).
    pub name: String,
    /// The oracle's (best-found) schedule quality.
    pub exact: SchedPoint,
    /// Whether the oracle *proved* `exact.ii` optimal within its budget.
    pub proven: bool,
    /// Search nodes the oracle charged.
    pub nodes: u64,
    /// One point per heuristic, in [`gap_heuristics`] order.
    pub heuristics: Vec<SchedPoint>,
    /// One budgeted-compile outcome per policy, in
    /// [`SpillPolicyKind::ALL`] order.
    pub spill: Vec<Option<SpillOutcome>>,
}

/// Aggregate of one spill policy over the comparable subset of a run
/// (the loops *every* policy fitted, so totals compare like with like).
#[derive(Clone, Copy, Debug)]
pub struct SpillPolicyAggregate {
    /// Which policy.
    pub policy: SpillPolicyKind,
    /// Loops this policy fitted within the budget (over all loops, not
    /// just the comparable subset).
    pub fitted: u32,
    /// Σ spilled lifetimes over the comparable subset.
    pub spilled_total: u64,
    /// Σ achieved II over the comparable subset.
    pub ii_total: u64,
    /// `spilled_total − baseline.spilled_total` (0 for the baseline).
    pub spilled_delta: i64,
    /// `ii_total − baseline.ii_total` (0 for the baseline).
    pub ii_delta: i64,
}

/// Aggregate gaps of one heuristic over the proven subset of a run.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerAggregate {
    /// Which heuristic.
    pub scheduler: SchedulerKind,
    /// Proven loops where the heuristic achieved the optimal II.
    pub ii_optimal: u32,
    /// Σ `heuristic II − optimal II` over proven loops (never negative:
    /// a heuristic II below a proven optimum would disprove the proof).
    pub ii_gap_total: u64,
    /// Σ `heuristic SC − exact SC` over proven loops (can be negative —
    /// the oracle optimizes II first, span second).
    pub sc_gap_total: i64,
    /// Σ `heuristic MaxLive − exact MaxLive` over proven loops (can be
    /// negative — the oracle does not optimize register pressure).
    pub max_live_gap_total: i64,
}

/// The collected result of a gap run.
#[derive(Clone, Debug)]
pub struct GapReport {
    /// The configuration that produced it.
    pub config: GapConfig,
    /// One entry per loop, in corpus order.
    pub loops: Vec<LoopGap>,
}

/// Runs the comparison: every loop through the oracle and every
/// registered heuristic. Results are identical for any worker count.
pub fn run_gap(loops: &[BenchLoop], config: &GapConfig) -> GapReport {
    let oracle = ExactScheduler::with_budget(config.node_budget);
    let per_loop = parallel_map(loops, config.jobs, |_, l| {
        let ctx = LoopAnalysis::new(&l.ddg, &config.machine);
        let request = SchedRequest::default();
        let outcome = oracle.solve_in(&ctx, &request).expect("corpus loops are schedulable");
        let heuristics = gap_heuristics()
            .map(|k| {
                let s = k.schedule_in(&ctx, &request).expect("corpus loops are schedulable");
                point(l, &s)
            })
            .collect();
        let spill = SpillPolicyKind::ALL
            .into_iter()
            .map(|policy| {
                let options = CompileOptions::with_spill_policy(policy);
                compile(&l.ddg, &config.machine, config.spill_budget, &options)
                    .ok()
                    .map(|c| SpillOutcome { ii: c.ii(), spilled: c.spilled() })
            })
            .collect();
        LoopGap {
            name: l.name.clone(),
            exact: point(l, &outcome.schedule),
            proven: outcome.proven(),
            nodes: outcome.nodes,
            heuristics,
            spill,
        }
    });
    GapReport { config: config.clone(), loops: per_loop }
}

fn point(l: &BenchLoop, s: &regpipe_sched::Schedule) -> SchedPoint {
    let a = allocate(&l.ddg, s);
    SchedPoint { ii: s.ii(), sc: s.stage_count(), max_live: a.max_live() }
}

impl GapReport {
    /// Loops whose optimal II the oracle proved.
    pub fn proven(&self) -> u32 {
        self.loops.iter().filter(|l| l.proven).count() as u32
    }

    /// Σ search nodes over all loops.
    pub fn nodes_total(&self) -> u64 {
        self.loops.iter().map(|l| l.nodes).sum()
    }

    /// Aggregates per heuristic (over the proven subset), in
    /// [`gap_heuristics`] order.
    pub fn aggregates(&self) -> Vec<SchedulerAggregate> {
        gap_heuristics()
            .enumerate()
            .map(|(i, scheduler)| {
                let mut agg = SchedulerAggregate {
                    scheduler,
                    ii_optimal: 0,
                    ii_gap_total: 0,
                    sc_gap_total: 0,
                    max_live_gap_total: 0,
                };
                for l in self.loops.iter().filter(|l| l.proven) {
                    let h = l.heuristics[i];
                    if h.ii == l.exact.ii {
                        agg.ii_optimal += 1;
                    }
                    agg.ii_gap_total += u64::from(h.ii - l.exact.ii);
                    agg.sc_gap_total += i64::from(h.sc) - i64::from(l.exact.sc);
                    agg.max_live_gap_total +=
                        i64::from(h.max_live) - i64::from(l.exact.max_live);
                }
                agg
            })
            .collect()
    }

    /// Loops that fitted the spill budget under *every* registered
    /// policy — the subset the per-policy totals and deltas range over.
    pub fn spill_comparable(&self) -> u32 {
        self.loops.iter().filter(|l| l.spill.iter().all(Option::is_some)).count() as u32
    }

    /// Per-policy totals and deltas against the configured baseline
    /// policy, in [`SpillPolicyKind::ALL`] order.
    pub fn spill_aggregates(&self) -> Vec<SpillPolicyAggregate> {
        let comparable: Vec<&LoopGap> =
            self.loops.iter().filter(|l| l.spill.iter().all(Option::is_some)).collect();
        let totals: Vec<SpillPolicyAggregate> = SpillPolicyKind::ALL
            .into_iter()
            .enumerate()
            .map(|(i, policy)| {
                let mut agg = SpillPolicyAggregate {
                    policy,
                    fitted: self.loops.iter().filter(|l| l.spill[i].is_some()).count() as u32,
                    spilled_total: 0,
                    ii_total: 0,
                    spilled_delta: 0,
                    ii_delta: 0,
                };
                for l in &comparable {
                    let o = l.spill[i].expect("comparable loops fitted every policy");
                    agg.spilled_total += u64::from(o.spilled);
                    agg.ii_total += u64::from(o.ii);
                }
                agg
            })
            .collect();
        let baseline_index = SpillPolicyKind::ALL
            .into_iter()
            .position(|p| p == self.config.spill_policy)
            .expect("the baseline policy is registered");
        let baseline = totals[baseline_index];
        totals
            .into_iter()
            .map(|mut agg| {
                agg.spilled_delta = agg.spilled_total as i64 - baseline.spilled_total as i64;
                agg.ii_delta = agg.ii_total as i64 - baseline.ii_total as i64;
                agg
            })
            .collect()
    }

    /// Renders `BENCH_gap.json` (schema `regpipe-bench-gap/v2`; v2 added
    /// the `spill_policy`/`spill_budget`/`spill_comparable`/
    /// `spill_policies` fields). Every field is deterministic; there are
    /// no timing fields to opt into.
    pub fn to_json(&self) -> String {
        let proven = self.proven();
        let aggregate = self
            .aggregates()
            .iter()
            .map(|a| {
                Value::Object(vec![
                    ("scheduler".into(), Value::Str(a.scheduler.slug().into())),
                    ("ii_optimal".into(), Value::uint(u64::from(a.ii_optimal))),
                    ("ii_gap_total".into(), Value::uint(a.ii_gap_total)),
                    ("sc_gap_total".into(), Value::Int(a.sc_gap_total)),
                    ("max_live_gap_total".into(), Value::Int(a.max_live_gap_total)),
                ])
            })
            .collect();
        let per_loop = self
            .loops
            .iter()
            .map(|l| {
                let schedulers = gap_heuristics()
                    .zip(&l.heuristics)
                    .map(|(k, h)| {
                        let mut pairs = vec![
                            ("scheduler".into(), Value::Str(k.slug().into())),
                            ("ii".into(), Value::uint(u64::from(h.ii))),
                            ("sc".into(), Value::uint(u64::from(h.sc))),
                            ("max_live".into(), Value::uint(u64::from(h.max_live))),
                        ];
                        if l.proven {
                            pairs.push((
                                "ii_gap".into(),
                                Value::uint(u64::from(h.ii - l.exact.ii)),
                            ));
                            pairs.push((
                                "sc_gap".into(),
                                Value::Int(i64::from(h.sc) - i64::from(l.exact.sc)),
                            ));
                            pairs.push((
                                "max_live_gap".into(),
                                Value::Int(i64::from(h.max_live) - i64::from(l.exact.max_live)),
                            ));
                        }
                        Value::Object(pairs)
                    })
                    .collect();
                Value::Object(vec![
                    ("name".into(), Value::Str(l.name.clone())),
                    ("proven".into(), Value::Bool(l.proven)),
                    ("nodes".into(), Value::uint(l.nodes)),
                    (
                        "exact".into(),
                        Value::Object(vec![
                            ("ii".into(), Value::uint(u64::from(l.exact.ii))),
                            ("sc".into(), Value::uint(u64::from(l.exact.sc))),
                            ("max_live".into(), Value::uint(u64::from(l.exact.max_live))),
                        ]),
                    ),
                    ("schedulers".into(), Value::Array(schedulers)),
                ])
            })
            .collect();
        let spill_policies = self
            .spill_aggregates()
            .iter()
            .map(|a| {
                Value::Object(vec![
                    ("policy".into(), Value::Str(a.policy.slug().into())),
                    ("fitted".into(), Value::uint(u64::from(a.fitted))),
                    ("spilled_total".into(), Value::uint(a.spilled_total)),
                    ("ii_total".into(), Value::uint(a.ii_total)),
                    ("spilled_delta".into(), Value::Int(a.spilled_delta)),
                    ("ii_delta".into(), Value::Int(a.ii_delta)),
                ])
            })
            .collect();
        let top = Value::Object(vec![
            ("schema".into(), Value::Str("regpipe-bench-gap/v2".into())),
            ("machine".into(), Value::Str(self.config.machine.name().to_string())),
            ("source".into(), Value::Str(self.config.source.clone())),
            ("node_budget".into(), Value::uint(self.config.node_budget)),
            ("loops".into(), Value::uint(self.loops.len() as u64)),
            ("proven".into(), Value::uint(u64::from(proven))),
            ("unproven".into(), Value::uint(self.loops.len() as u64 - u64::from(proven))),
            ("nodes_total".into(), Value::uint(self.nodes_total())),
            ("spill_policy".into(), Value::Str(self.config.spill_policy.slug().into())),
            ("spill_budget".into(), Value::uint(u64::from(self.config.spill_budget))),
            ("spill_comparable".into(), Value::uint(u64::from(self.spill_comparable()))),
            ("spill_policies".into(), Value::Array(spill_policies)),
            ("aggregate".into(), Value::Array(aggregate)),
            ("per_loop".into(), Value::Array(per_loop)),
        ]);
        let mut text = top.render();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_loops::{generate, GenParams};
    use regpipe_sched::DEFAULT_NODE_BUDGET;

    fn small_corpus(count: usize) -> Vec<BenchLoop> {
        let params = GenParams { min_ops: 2, max_ops: 8, ..GenParams::default() };
        generate(7, count, &params).unwrap()
    }

    fn config(node_budget: u64) -> GapConfig {
        GapConfig {
            machine: MachineConfig::p2l4(),
            node_budget,
            jobs: NonZeroUsize::new(2).unwrap(),
            source: "test".into(),
            spill_policy: SpillPolicyKind::default(),
            spill_budget: DEFAULT_SPILL_BUDGET,
        }
    }

    #[test]
    fn report_is_deterministic_across_worker_counts() {
        let loops = small_corpus(12);
        let a = run_gap(&loops, &config(DEFAULT_NODE_BUDGET)).to_json();
        let b = run_gap(
            &loops,
            &GapConfig { jobs: NonZeroUsize::new(5).unwrap(), ..config(DEFAULT_NODE_BUDGET) },
        )
        .to_json();
        assert_eq!(a, b, "worker count changed BENCH_gap.json bytes");
        assert!(!a.contains("wall"), "gap reports never carry timing");
        let doc = regpipe_exec::json::parse(&a).expect("report parses");
        assert_eq!(doc.get("schema"), Some(&Value::Str("regpipe-bench-gap/v2".into())));
        assert_eq!(doc.get("per_loop").and_then(Value::as_array).map(<[Value]>::len), Some(12));
    }

    #[test]
    fn proven_loops_never_show_a_negative_ii_gap() {
        let loops = small_corpus(15);
        let report = run_gap(&loops, &config(DEFAULT_NODE_BUDGET));
        assert!(report.proven() > 0, "small kernels must mostly prove");
        for l in report.loops.iter().filter(|l| l.proven) {
            for h in &l.heuristics {
                assert!(
                    h.ii >= l.exact.ii,
                    "{}: heuristic II {} below proven optimum {}",
                    l.name,
                    h.ii,
                    l.exact.ii
                );
            }
        }
    }

    #[test]
    fn spill_section_covers_every_policy_and_zeroes_the_baseline_deltas() {
        let loops = small_corpus(12);
        let report = run_gap(&loops, &config(DEFAULT_NODE_BUDGET));
        let aggs = report.spill_aggregates();
        assert_eq!(aggs.len(), SpillPolicyKind::ALL.len());
        assert!(report.spill_comparable() > 0, "small kernels must fit budget 16");
        let baseline = aggs
            .iter()
            .find(|a| a.policy == SpillPolicyKind::Paper)
            .expect("the baseline is registered");
        assert_eq!((baseline.spilled_delta, baseline.ii_delta), (0, 0));
        // A non-paper baseline re-centres the deltas, nothing else.
        let recentred = GapReport {
            config: GapConfig {
                spill_policy: SpillPolicyKind::MinNextUse,
                ..report.config.clone()
            },
            loops: report.loops.clone(),
        };
        let shifted = recentred.spill_aggregates();
        let minu = shifted.iter().find(|a| a.policy == SpillPolicyKind::MinNextUse).unwrap();
        assert_eq!((minu.spilled_delta, minu.ii_delta), (0, 0));
        for (a, b) in aggs.iter().zip(&shifted) {
            assert_eq!((a.spilled_total, a.ii_total), (b.spilled_total, b.ii_total));
        }
        let text = report.to_json();
        for policy in SpillPolicyKind::ALL {
            assert!(
                text.contains(&format!("\"policy\":\"{}\"", policy.slug())),
                "missing {policy} in:\n{text}"
            );
        }
    }

    #[test]
    fn zero_budget_runs_report_everything_unproven() {
        let loops = small_corpus(5);
        let report = run_gap(&loops, &config(0));
        assert_eq!(report.proven(), 0);
        let text = report.to_json();
        assert!(!text.contains("\"ii_gap\":"), "no gap fields without a proof:\n{text}");
        // Aggregates over an empty proven subset are all zero.
        for a in report.aggregates() {
            assert_eq!((a.ii_optimal, a.ii_gap_total), (0, 0));
        }
    }
}
