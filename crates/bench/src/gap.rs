//! The `regpipe gap` harness: heuristic optimality gaps against the exact
//! branch-and-bound oracle, rendered as `BENCH_gap.json` (schema
//! `regpipe-bench-gap/v1`).
//!
//! Every loop is scheduled once by [`ExactScheduler`] and once by each
//! registered heuristic ([`gap_heuristics`]), all sharing one
//! [`LoopAnalysis`] context. The report records per-loop and aggregate
//! II/SC/MaxLive gaps (`heuristic − exact`), the oracle's
//! `Proven`/`BudgetExhausted` status, and its node counts. Gap fields are
//! only attributed to loops whose optimum the oracle *proved*: against an
//! unproven best-effort schedule a difference is not an optimality gap.
//!
//! The report carries no wall-clock fields at all — unlike `BENCH_suite`
//! and `BENCH_compile` there is no timing opt-in — so runs byte-compare
//! across machines and `--jobs` values unconditionally (per-loop work is
//! fanned out with [`parallel_map`] and folded in loop order).

use std::num::NonZeroUsize;

use regpipe_exec::json::Value;
use regpipe_exec::parallel_map;
use regpipe_loops::BenchLoop;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::allocate;
use regpipe_sched::{ExactScheduler, LoopAnalysis, SchedRequest, Scheduler, SchedulerKind};

/// The heuristic side of the comparison: every registered scheduler
/// except the oracle itself, in registry order.
pub fn gap_heuristics() -> impl Iterator<Item = SchedulerKind> {
    SchedulerKind::ALL.into_iter().filter(|k| *k != SchedulerKind::Exact)
}

/// Configuration of one `regpipe gap` run.
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Machine model every schedule targets.
    pub machine: MachineConfig,
    /// The oracle's search budget per loop (`--node-budget`).
    pub node_budget: u64,
    /// Worker threads for the per-loop fan-out.
    pub jobs: NonZeroUsize,
    /// Where the loops came from (recorded in the report, e.g.
    /// `gen:seed=7,count=100,max_ops=12` or `corpus:<dir>`).
    pub source: String,
}

/// One schedule's quality numbers: the three axes the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchedPoint {
    /// Initiation interval.
    pub ii: u32,
    /// Stage count.
    pub sc: u32,
    /// MaxLive plus invariants — the actual register requirement.
    pub max_live: u32,
}

/// One loop's oracle outcome next to every heuristic's schedule.
#[derive(Clone, Debug)]
pub struct LoopGap {
    /// Loop name (corpus file stem or generator serial).
    pub name: String,
    /// The oracle's (best-found) schedule quality.
    pub exact: SchedPoint,
    /// Whether the oracle *proved* `exact.ii` optimal within its budget.
    pub proven: bool,
    /// Search nodes the oracle charged.
    pub nodes: u64,
    /// One point per heuristic, in [`gap_heuristics`] order.
    pub heuristics: Vec<SchedPoint>,
}

/// Aggregate gaps of one heuristic over the proven subset of a run.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerAggregate {
    /// Which heuristic.
    pub scheduler: SchedulerKind,
    /// Proven loops where the heuristic achieved the optimal II.
    pub ii_optimal: u32,
    /// Σ `heuristic II − optimal II` over proven loops (never negative:
    /// a heuristic II below a proven optimum would disprove the proof).
    pub ii_gap_total: u64,
    /// Σ `heuristic SC − exact SC` over proven loops (can be negative —
    /// the oracle optimizes II first, span second).
    pub sc_gap_total: i64,
    /// Σ `heuristic MaxLive − exact MaxLive` over proven loops (can be
    /// negative — the oracle does not optimize register pressure).
    pub max_live_gap_total: i64,
}

/// The collected result of a gap run.
#[derive(Clone, Debug)]
pub struct GapReport {
    /// The configuration that produced it.
    pub config: GapConfig,
    /// One entry per loop, in corpus order.
    pub loops: Vec<LoopGap>,
}

/// Runs the comparison: every loop through the oracle and every
/// registered heuristic. Results are identical for any worker count.
pub fn run_gap(loops: &[BenchLoop], config: &GapConfig) -> GapReport {
    let oracle = ExactScheduler::with_budget(config.node_budget);
    let per_loop = parallel_map(loops, config.jobs, |_, l| {
        let ctx = LoopAnalysis::new(&l.ddg, &config.machine);
        let request = SchedRequest::default();
        let outcome = oracle.solve_in(&ctx, &request).expect("corpus loops are schedulable");
        let heuristics = gap_heuristics()
            .map(|k| {
                let s = k.schedule_in(&ctx, &request).expect("corpus loops are schedulable");
                point(l, &s)
            })
            .collect();
        LoopGap {
            name: l.name.clone(),
            exact: point(l, &outcome.schedule),
            proven: outcome.proven(),
            nodes: outcome.nodes,
            heuristics,
        }
    });
    GapReport { config: config.clone(), loops: per_loop }
}

fn point(l: &BenchLoop, s: &regpipe_sched::Schedule) -> SchedPoint {
    let a = allocate(&l.ddg, s);
    SchedPoint { ii: s.ii(), sc: s.stage_count(), max_live: a.max_live() }
}

impl GapReport {
    /// Loops whose optimal II the oracle proved.
    pub fn proven(&self) -> u32 {
        self.loops.iter().filter(|l| l.proven).count() as u32
    }

    /// Σ search nodes over all loops.
    pub fn nodes_total(&self) -> u64 {
        self.loops.iter().map(|l| l.nodes).sum()
    }

    /// Aggregates per heuristic (over the proven subset), in
    /// [`gap_heuristics`] order.
    pub fn aggregates(&self) -> Vec<SchedulerAggregate> {
        gap_heuristics()
            .enumerate()
            .map(|(i, scheduler)| {
                let mut agg = SchedulerAggregate {
                    scheduler,
                    ii_optimal: 0,
                    ii_gap_total: 0,
                    sc_gap_total: 0,
                    max_live_gap_total: 0,
                };
                for l in self.loops.iter().filter(|l| l.proven) {
                    let h = l.heuristics[i];
                    if h.ii == l.exact.ii {
                        agg.ii_optimal += 1;
                    }
                    agg.ii_gap_total += u64::from(h.ii - l.exact.ii);
                    agg.sc_gap_total += i64::from(h.sc) - i64::from(l.exact.sc);
                    agg.max_live_gap_total +=
                        i64::from(h.max_live) - i64::from(l.exact.max_live);
                }
                agg
            })
            .collect()
    }

    /// Renders `BENCH_gap.json` (schema `regpipe-bench-gap/v1`). Every
    /// field is deterministic; there are no timing fields to opt into.
    pub fn to_json(&self) -> String {
        let proven = self.proven();
        let aggregate = self
            .aggregates()
            .iter()
            .map(|a| {
                Value::Object(vec![
                    ("scheduler".into(), Value::Str(a.scheduler.slug().into())),
                    ("ii_optimal".into(), Value::uint(u64::from(a.ii_optimal))),
                    ("ii_gap_total".into(), Value::uint(a.ii_gap_total)),
                    ("sc_gap_total".into(), Value::Int(a.sc_gap_total)),
                    ("max_live_gap_total".into(), Value::Int(a.max_live_gap_total)),
                ])
            })
            .collect();
        let per_loop = self
            .loops
            .iter()
            .map(|l| {
                let schedulers = gap_heuristics()
                    .zip(&l.heuristics)
                    .map(|(k, h)| {
                        let mut pairs = vec![
                            ("scheduler".into(), Value::Str(k.slug().into())),
                            ("ii".into(), Value::uint(u64::from(h.ii))),
                            ("sc".into(), Value::uint(u64::from(h.sc))),
                            ("max_live".into(), Value::uint(u64::from(h.max_live))),
                        ];
                        if l.proven {
                            pairs.push((
                                "ii_gap".into(),
                                Value::uint(u64::from(h.ii - l.exact.ii)),
                            ));
                            pairs.push((
                                "sc_gap".into(),
                                Value::Int(i64::from(h.sc) - i64::from(l.exact.sc)),
                            ));
                            pairs.push((
                                "max_live_gap".into(),
                                Value::Int(i64::from(h.max_live) - i64::from(l.exact.max_live)),
                            ));
                        }
                        Value::Object(pairs)
                    })
                    .collect();
                Value::Object(vec![
                    ("name".into(), Value::Str(l.name.clone())),
                    ("proven".into(), Value::Bool(l.proven)),
                    ("nodes".into(), Value::uint(l.nodes)),
                    (
                        "exact".into(),
                        Value::Object(vec![
                            ("ii".into(), Value::uint(u64::from(l.exact.ii))),
                            ("sc".into(), Value::uint(u64::from(l.exact.sc))),
                            ("max_live".into(), Value::uint(u64::from(l.exact.max_live))),
                        ]),
                    ),
                    ("schedulers".into(), Value::Array(schedulers)),
                ])
            })
            .collect();
        let top = Value::Object(vec![
            ("schema".into(), Value::Str("regpipe-bench-gap/v1".into())),
            ("machine".into(), Value::Str(self.config.machine.name().to_string())),
            ("source".into(), Value::Str(self.config.source.clone())),
            ("node_budget".into(), Value::uint(self.config.node_budget)),
            ("loops".into(), Value::uint(self.loops.len() as u64)),
            ("proven".into(), Value::uint(u64::from(proven))),
            ("unproven".into(), Value::uint(self.loops.len() as u64 - u64::from(proven))),
            ("nodes_total".into(), Value::uint(self.nodes_total())),
            ("aggregate".into(), Value::Array(aggregate)),
            ("per_loop".into(), Value::Array(per_loop)),
        ]);
        let mut text = top.render();
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_loops::{generate, GenParams};
    use regpipe_sched::DEFAULT_NODE_BUDGET;

    fn small_corpus(count: usize) -> Vec<BenchLoop> {
        let params = GenParams { min_ops: 2, max_ops: 8, ..GenParams::default() };
        generate(7, count, &params).unwrap()
    }

    fn config(node_budget: u64) -> GapConfig {
        GapConfig {
            machine: MachineConfig::p2l4(),
            node_budget,
            jobs: NonZeroUsize::new(2).unwrap(),
            source: "test".into(),
        }
    }

    #[test]
    fn report_is_deterministic_across_worker_counts() {
        let loops = small_corpus(12);
        let a = run_gap(&loops, &config(DEFAULT_NODE_BUDGET)).to_json();
        let b = run_gap(
            &loops,
            &GapConfig { jobs: NonZeroUsize::new(5).unwrap(), ..config(DEFAULT_NODE_BUDGET) },
        )
        .to_json();
        assert_eq!(a, b, "worker count changed BENCH_gap.json bytes");
        assert!(!a.contains("wall"), "gap reports never carry timing");
        let doc = regpipe_exec::json::parse(&a).expect("report parses");
        assert_eq!(doc.get("schema"), Some(&Value::Str("regpipe-bench-gap/v1".into())));
        assert_eq!(doc.get("per_loop").and_then(Value::as_array).map(<[Value]>::len), Some(12));
    }

    #[test]
    fn proven_loops_never_show_a_negative_ii_gap() {
        let loops = small_corpus(15);
        let report = run_gap(&loops, &config(DEFAULT_NODE_BUDGET));
        assert!(report.proven() > 0, "small kernels must mostly prove");
        for l in report.loops.iter().filter(|l| l.proven) {
            for h in &l.heuristics {
                assert!(
                    h.ii >= l.exact.ii,
                    "{}: heuristic II {} below proven optimum {}",
                    l.name,
                    h.ii,
                    l.exact.ii
                );
            }
        }
    }

    #[test]
    fn zero_budget_runs_report_everything_unproven() {
        let loops = small_corpus(5);
        let report = run_gap(&loops, &config(0));
        assert_eq!(report.proven(), 0);
        let text = report.to_json();
        assert!(!text.contains("\"ii_gap\":"), "no gap fields without a proof:\n{text}");
        // Aggregates over an empty proven subset are all zero.
        for a in report.aggregates() {
            assert_eq!((a.ii_optimal, a.ii_gap_total), (0, 0));
        }
    }
}
