//! Figure 9: increasing the II versus adding spill code versus the
//! best-of-all combination, on the subset of loops that (1) need a register
//! reduction and (2) converge under increase-II.

use regpipe_bench::{evaluation_suite, fig9_row, mcycles, suite_size, REGISTER_BUDGETS};
use regpipe_machine::MachineConfig;

fn main() {
    regpipe_bench::apply_jobs_flag();
    let loops = evaluation_suite();
    println!(
        "=== Figure 9: increase-II vs spill vs best-of-all ({} loops) ===\n",
        suite_size()
    );
    println!(
        "{:<8} {:>6} {:>8} {:>14} {:>12} {:>12} {:>10}",
        "config", "regs", "subset", "increase-II", "spill", "best", "II wins"
    );
    for machine in MachineConfig::paper_configs() {
        for regs in REGISTER_BUDGETS {
            let row = fig9_row(&loops, &machine, regs);
            println!(
                "{:<8} {:>6} {:>8} {:>13}M {:>11}M {:>11}M {:>10}",
                machine.name(),
                regs,
                row.subset,
                mcycles(row.increase_ii_cycles),
                mcycles(row.spill_cycles),
                mcycles(row.best_cycles),
                row.increase_ii_wins
            );
        }
    }
    println!(
        "\nPaper's shape: spilling beats increasing the II on average in every configuration;\n\
         a few loops prefer increase-II, and best-of-all matches or improves on both."
    );
}
