//! Figure 7: evolution of registers, MII, II and memory traffic as
//! lifetimes are spilled one at a time with Max(LT), for the APSI-47-like
//! and APSI-50-like loops.

use regpipe_core::{SpillDriver, SpillDriverOptions};
use regpipe_loops::paper::{apsi47_like, apsi50_like};
use regpipe_machine::MachineConfig;
use regpipe_spill::SelectHeuristic;

fn trace(name: &str, g: &regpipe_ddg::Ddg, machine: &MachineConfig, budget: u32) {
    let driver = SpillDriver::new(SpillDriverOptions {
        heuristic: SelectHeuristic::MaxLt,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 512,
    });
    println!("--- {name}: Max(LT), one lifetime per reschedule, budget {budget} ---");
    println!(
        "{:>8} {:>5} {:>5} {:>6} {:>8} {:>9}",
        "spilled", "MII", "II", "regs", "mem ops", "bus use %"
    );
    match driver.run(g, machine, budget) {
        Ok(out) => {
            for p in &out.trace {
                println!(
                    "{:>8} {:>5} {:>5} {:>6} {:>8} {:>9.1}",
                    p.spilled, p.mii, p.ii, p.regs, p.memory_ops, p.memory_utilization
                );
            }
            println!(
                "=> fits {budget} regs with {} lifetimes spilled, II {} (first II was {})\n",
                out.spilled,
                out.schedule.ii(),
                out.first_ii()
            );
        }
        Err(e) => {
            for p in &e.trace {
                println!(
                    "{:>8} {:>5} {:>5} {:>6} {:>8} {:>9.1}",
                    p.spilled, p.mii, p.ii, p.regs, p.memory_ops, p.memory_utilization
                );
            }
            println!("=> failed: {e}\n");
        }
    }
}

fn main() {
    let machine = MachineConfig::p2l4();
    println!("=== Figure 7: spilling trace ({machine}) ===\n");
    for budget in [32, 16] {
        trace("Figure 7a: APSI-47-like", &apsi47_like(), &machine, budget);
    }
    for budget in [32, 16] {
        trace("Figure 7b: APSI-50-like", &apsi50_like(), &machine, budget);
    }
}
