//! Figure 7: evolution of registers, MII, II and memory traffic as
//! lifetimes are spilled one at a time with Max(LT), for the APSI-47-like
//! and APSI-50-like loops.
//!
//! The four `(loop, budget)` traces are independent, so they run as a
//! fan-out on the `regpipe_exec` engine (`--jobs`/`REGPIPE_JOBS`) and are
//! printed in figure order afterwards, identical for any worker count.

use std::fmt::Write as _;

use regpipe_bench::harness_jobs;
use regpipe_core::{SpillDriver, SpillDriverOptions};
use regpipe_exec::parallel_map;
use regpipe_loops::paper::{apsi47_like, apsi50_like};
use regpipe_machine::MachineConfig;
use regpipe_spill::SelectHeuristic;

fn trace(name: &str, g: &regpipe_ddg::Ddg, machine: &MachineConfig, budget: u32) -> String {
    let mut out = String::new();
    let driver = SpillDriver::new(SpillDriverOptions {
        heuristic: SelectHeuristic::MaxLt,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 512,
        ..SpillDriverOptions::default()
    });
    let _ =
        writeln!(out, "--- {name}: Max(LT), one lifetime per reschedule, budget {budget} ---");
    let _ = writeln!(
        out,
        "{:>8} {:>5} {:>5} {:>6} {:>8} {:>9}",
        "spilled", "MII", "II", "regs", "mem ops", "bus use %"
    );
    match driver.run(g, machine, budget) {
        Ok(run) => {
            for p in &run.trace {
                point(&mut out, p);
            }
            let _ = writeln!(
                out,
                "=> fits {budget} regs with {} lifetimes spilled, II {} (first II was {})\n",
                run.spilled,
                run.schedule.ii(),
                run.first_ii()
            );
        }
        Err(e) => {
            for p in &e.trace {
                point(&mut out, p);
            }
            let _ = writeln!(out, "=> failed: {e}\n");
        }
    }
    out
}

fn point(out: &mut String, p: &regpipe_core::SpillTracePoint) {
    let _ = writeln!(
        out,
        "{:>8} {:>5} {:>5} {:>6} {:>8} {:>9.1}",
        p.spilled, p.mii, p.ii, p.regs, p.memory_ops, p.memory_utilization
    );
}

fn main() {
    regpipe_bench::apply_jobs_flag();
    let machine = MachineConfig::p2l4();
    println!("=== Figure 7: spilling trace ({machine}) ===\n");
    let cells = [
        ("Figure 7a: APSI-47-like", apsi47_like(), 32),
        ("Figure 7a: APSI-47-like", apsi47_like(), 16),
        ("Figure 7b: APSI-50-like", apsi50_like(), 32),
        ("Figure 7b: APSI-50-like", apsi50_like(), 16),
    ];
    let sections = parallel_map(&cells, harness_jobs(), |_, (name, g, budget)| {
        trace(name, g, &machine, *budget)
    });
    for section in sections {
        print!("{section}");
    }
}
