//! Figure 4: register requirements as the II increases, for the convergent
//! APSI-47-like loop (4a) and the non-convergent APSI-50-like loop (4b).

use regpipe_core::IncreaseIiDriver;
use regpipe_loops::paper::{apsi47_like, apsi50_like};
use regpipe_machine::MachineConfig;
use regpipe_sched::mii;

fn sweep(name: &str, g: &regpipe_ddg::Ddg, machine: &MachineConfig) {
    let driver = IncreaseIiDriver::new();
    let lo = mii(g, machine);
    println!("--- {name} (MII = {lo}) ---");
    println!("{:>5} {:>6} {:>4}", "II", "regs", "SC");
    let mut last_regs = u32::MAX;
    let mut reached_16 = false;
    let mut reached_32 = false;
    for ii in lo..lo + 40 {
        let Ok((s, a)) = driver.probe(g, machine, ii) else { continue };
        println!("{:>5} {:>6} {:>4}", s.ii(), a.total(), s.stage_count());
        if a.total() <= 32 && !reached_32 {
            println!(
                "      ^ fits 32 registers (II {} = {:.0}% of peak throughput)",
                s.ii(),
                100.0 * f64::from(lo) / f64::from(s.ii())
            );
            reached_32 = true;
        }
        if a.total() <= 16 && !reached_16 {
            println!("      ^ fits 16 registers");
            reached_16 = true;
        }
        if s.stage_count() == 1 && a.total() >= last_regs {
            println!("      (stage count 1: the requirement has hit its floor)");
            break;
        }
        last_regs = a.total();
        if reached_16 {
            break;
        }
    }
    match driver.run(g, machine, 32) {
        Ok(out) => println!(
            "=> converges to 32 registers at II {} ({} tries)\n",
            out.schedule.ii(),
            out.trace.len()
        ),
        Err(e) => println!("=> NEVER converges to 32 registers: {e}\n"),
    }
}

fn main() {
    let machine = MachineConfig::p2l4();
    println!("=== Figure 4: behaviour under increasing II ({}) ===\n", machine);
    sweep("Figure 4a: APSI-47-like (converges)", &apsi47_like(), &machine);
    sweep("Figure 4b: APSI-50-like (does not converge)", &apsi50_like(), &machine);
}
