//! Figure 4: register requirements as the II increases, for the convergent
//! APSI-47-like loop (4a) and the non-convergent APSI-50-like loop (4b).
//!
//! The two sweeps are independent, so they run as a two-item fan-out on
//! the `regpipe_exec` engine (`--jobs`/`REGPIPE_JOBS`); the sections are
//! printed in figure order afterwards, identical for any worker count.

use std::fmt::Write as _;

use regpipe_bench::harness_jobs;
use regpipe_core::IncreaseIiDriver;
use regpipe_exec::parallel_map;
use regpipe_loops::paper::{apsi47_like, apsi50_like};
use regpipe_machine::MachineConfig;
use regpipe_sched::mii;

fn sweep(name: &str, g: &regpipe_ddg::Ddg, machine: &MachineConfig) -> String {
    let mut out = String::new();
    let driver = IncreaseIiDriver::new();
    let lo = mii(g, machine);
    let _ = writeln!(out, "--- {name} (MII = {lo}) ---");
    let _ = writeln!(out, "{:>5} {:>6} {:>4}", "II", "regs", "SC");
    let mut last_regs = u32::MAX;
    let mut reached_16 = false;
    let mut reached_32 = false;
    for ii in lo..lo + 40 {
        let Ok((s, a)) = driver.probe(g, machine, ii) else { continue };
        let _ = writeln!(out, "{:>5} {:>6} {:>4}", s.ii(), a.total(), s.stage_count());
        if a.total() <= 32 && !reached_32 {
            let _ = writeln!(
                out,
                "      ^ fits 32 registers (II {} = {:.0}% of peak throughput)",
                s.ii(),
                100.0 * f64::from(lo) / f64::from(s.ii())
            );
            reached_32 = true;
        }
        if a.total() <= 16 && !reached_16 {
            let _ = writeln!(out, "      ^ fits 16 registers");
            reached_16 = true;
        }
        if s.stage_count() == 1 && a.total() >= last_regs {
            let _ = writeln!(out, "      (stage count 1: the requirement has hit its floor)");
            break;
        }
        last_regs = a.total();
        if reached_16 {
            break;
        }
    }
    match driver.run(g, machine, 32) {
        Ok(run) => {
            let _ = writeln!(
                out,
                "=> converges to 32 registers at II {} ({} tries)\n",
                run.schedule.ii(),
                run.trace.len()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "=> NEVER converges to 32 registers: {e}\n");
        }
    }
    out
}

fn main() {
    regpipe_bench::apply_jobs_flag();
    let machine = MachineConfig::p2l4();
    println!("=== Figure 4: behaviour under increasing II ({}) ===\n", machine);
    let figures = [
        ("Figure 4a: APSI-47-like (converges)", apsi47_like()),
        ("Figure 4b: APSI-50-like (does not converge)", apsi50_like()),
    ];
    let sections =
        parallel_map(&figures, harness_jobs(), |_, (name, g)| sweep(name, g, &machine));
    for section in sections {
        print!("{section}");
    }
}
