//! Figures 2, 3, 5 and 6: the paper's running example walkthrough.
//!
//! `x(i) = y(i)*a + y(i-3)` on the didactic machine (4 universal units,
//! latency 2): schedule at II=1 (11 variant registers), reschedule at II=2
//! (7 registers), then spill V1 and land on 5 registers at II=2.

use regpipe_bench::harness_jobs;
use regpipe_core::{SpillDriver, SpillDriverOptions};
use regpipe_ddg::to_dot;
use regpipe_exec::parallel_map;
use regpipe_loops::paper::example_loop;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::{allocate, LifetimeAnalysis};
use regpipe_sched::{mii, HrmsScheduler, Kernel, SchedRequest, Scheduler};
use regpipe_spill::SelectHeuristic;

fn main() {
    regpipe_bench::apply_jobs_flag();
    let g = example_loop();
    let m = MachineConfig::uniform(4, 2);
    let scheduler = HrmsScheduler::new();

    println!("=== Paper example: x(i) = y(i)*a + y(i-3) (Figures 2/3/5/6) ===\n");
    println!("{g}");
    println!("MII = {}\n", mii(&g, &m));

    // Figures 2 and 3 are independent schedules of the same graph (best II
    // and II = 2); compute both as a fan-out on the batch engine.
    let requests = [SchedRequest::default(), SchedRequest::starting_at(2)];
    let mut schedules = parallel_map(&requests, harness_jobs(), |_, req| {
        scheduler.schedule(&g, &m, req).expect("schedulable")
    })
    .into_iter();

    // Figure 2: II = 1.
    let s1 = schedules.next().unwrap();
    s1.verify(&g, &m).expect("valid");
    let lt1 = LifetimeAnalysis::new(&g, &s1);
    let a1 = allocate(&g, &s1);
    println!("--- Figure 2: II = {} ---", s1.ii());
    println!("{}", Kernel::new(&g, &s1));
    for lt in lt1.lifetimes() {
        println!(
            "  {:<4} LT {:>2} = sched {} + dist {}",
            g.op(lt.producer()).name(),
            lt.length(),
            lt.sched_component(),
            lt.dist_component()
        );
    }
    println!(
        "  MaxLive (variants) = {}   allocated = {} (paper: 11)\n",
        lt1.max_live_variants(),
        a1.variant_regs()
    );

    // Figure 3: II = 2.
    let s2 = schedules.next().unwrap();
    let lt2 = LifetimeAnalysis::new(&g, &s2);
    println!("--- Figure 3: II = {} ---", s2.ii());
    println!(
        "  MaxLive (variants) = {} (paper: 7)  — scheduling components shrank, distance components grew\n",
        lt2.max_live_variants()
    );

    // Figures 5/6: spill V1 and reschedule.
    let driver = SpillDriver::new(SpillDriverOptions {
        heuristic: SelectHeuristic::MaxLt,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 64,
        ..SpillDriverOptions::default()
    });
    // The paper's Figure 6 counts 5 *variant* registers; the invariant `a`
    // occupies one more, so the total budget is 6.
    let out = driver.run(&g, &m, 6).expect("fits 6 registers after spilling");
    out.schedule.verify(&out.ddg, &m).expect("valid");
    println!("--- Figures 5/6: spill V1, budget 6 registers (5 variants + invariant a) ---");
    println!("{}", out.ddg);
    println!("{}", Kernel::new(&out.ddg, &out.schedule));
    println!(
        "  II = {} (paper: 2), variant regs = {} (paper: 5), lifetimes spilled = {}",
        out.schedule.ii(),
        out.allocation.variant_regs(),
        out.spilled
    );
    println!("  memory ops/iteration: {} -> {}", g.memory_ops(), out.ddg.memory_ops());
    println!("\n--- DOT of the rewritten graph (Figure 5c/5d) ---");
    println!("{}", to_dot(&out.ddg));
}
