//! Ablations beyond the paper's figures:
//!
//! 1. **Scheduler register sensitivity** — HRMS vs the ASAP baseline at
//!    equal IIs (the paper's motivation for using a register-sensitive
//!    scheduler, citing its reference \[21\]).
//! 2. **Rotating register file vs MVE** — the register and code-size cost
//!    of modulo variable expansion when no rotating file exists
//!    (Section 2.3's alternative).
//! 3. **Dead-code elimination after spilling** — the paper keeps dead
//!    loads (Figure 5c); what does removing them buy?
//! 4. **Stage scheduling post-pass** — register reduction at constant II
//!    (the paper's reference \[13\]) applied on top of both schedulers.

use regpipe_bench::{evaluation_suite, harness_jobs};
use regpipe_core::{SpillDriver, SpillDriverOptions};
use regpipe_exec::parallel_map;
use regpipe_loops::paper;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::{allocate, LifetimeAnalysis, MveAllocator};
use regpipe_sched::{stage_schedule, AsapScheduler, HrmsScheduler, SchedRequest, Scheduler};
use regpipe_spill::eliminate_dead_ops;

fn main() {
    regpipe_bench::apply_jobs_flag();
    let loops = evaluation_suite();
    let machine = MachineConfig::p2l4();
    let hrms = HrmsScheduler::new();
    let asap = AsapScheduler::new();

    // ------------------------------------------------------------------
    // 1. HRMS vs ASAP register pressure (same-II subset).
    // ------------------------------------------------------------------
    let per_loop = parallel_map(&loops, harness_jobs(), |_, l| {
        let h = hrms.schedule(&l.ddg, &machine, &SchedRequest::default()).unwrap();
        let a = asap.schedule(&l.ddg, &machine, &SchedRequest::default()).unwrap();
        if h.ii() != a.ii() {
            return None;
        }
        // 4. Stage scheduling on top of each.
        let hs = stage_schedule(&l.ddg, &machine, &h);
        let as_ = stage_schedule(&l.ddg, &machine, &a);
        Some((
            u64::from(allocate(&l.ddg, &h).total()),
            u64::from(allocate(&l.ddg, &a).total()),
            u64::from(allocate(&l.ddg, &hs).total()),
            u64::from(allocate(&l.ddg, &as_).total()),
        ))
    });
    let (mut n, mut hrms_regs, mut asap_regs, mut hrms_stage, mut asap_stage) =
        (0u32, 0u64, 0u64, 0u64, 0u64);
    for (h, a, hs, as_) in per_loop.into_iter().flatten() {
        n += 1;
        hrms_regs += h;
        asap_regs += a;
        hrms_stage += hs;
        asap_stage += as_;
    }
    println!(
        "=== Ablation 1/4: scheduler register sensitivity ({n} same-II loops, {machine}) ==="
    );
    println!("  total registers, HRMS:              {hrms_regs}");
    println!("  total registers, ASAP baseline:     {asap_regs}");
    println!("  total registers, HRMS + stage-sched: {hrms_stage}");
    println!("  total registers, ASAP + stage-sched: {asap_stage}");
    println!(
        "  -> register-sensitive scheduling saves {:.1}%; stage scheduling recovers {:.1}% of the ASAP penalty\n",
        100.0 * (asap_regs as f64 - hrms_regs as f64) / asap_regs as f64,
        100.0 * (asap_regs as f64 - asap_stage as f64)
            / (asap_regs as f64 - hrms_regs as f64).max(1.0)
    );

    // ------------------------------------------------------------------
    // 2. Rotating file vs MVE.
    // ------------------------------------------------------------------
    let per_loop = parallel_map(&loops, harness_jobs(), |_, l| {
        let s = hrms.schedule(&l.ddg, &machine, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&l.ddg, &s);
        let mve = MveAllocator::new().allocate(&analysis);
        (u64::from(allocate(&l.ddg, &s).total()), u64::from(mve.total()), mve.unroll())
    });
    let (mut rot_total, mut mve_total, mut worst_unroll) = (0u64, 0u64, 1u32);
    for (rot, mve, unroll) in per_loop {
        rot_total += rot;
        mve_total += mve;
        worst_unroll = worst_unroll.max(unroll);
    }
    println!("=== Ablation 2/4: rotating register file vs modulo variable expansion ===");
    println!("  total registers, rotating file: {rot_total}");
    println!("  total registers, MVE:           {mve_total}");
    println!("  worst kernel unroll under MVE:  x{worst_unroll}");
    println!(
        "  -> rotating hardware saves {:.1}% registers and all of the code growth\n",
        100.0 * (mve_total as f64 - rot_total as f64) / mve_total as f64
    );

    // ------------------------------------------------------------------
    // 3. DCE after spilling (paper keeps dead loads).
    // ------------------------------------------------------------------
    println!("=== Ablation 3/4: dead-code elimination after spilling (budget 32) ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "loop", "II", "mem ops", "II+dce", "mem+dce", "removed"
    );
    let driver = SpillDriver::new(SpillDriverOptions::default());
    for g in [paper::apsi47_like(), paper::apsi50_like()] {
        let out = driver.run(&g, &machine, 32).expect("spill fits 32");
        let clean = eliminate_dead_ops(&out.ddg);
        let post = hrms
            .schedule(&clean.ddg, &machine, &SchedRequest::default())
            .expect("cleaned graph schedules");
        post.verify(&clean.ddg, &machine).unwrap();
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            g.name(),
            out.schedule.ii(),
            out.ddg.memory_ops(),
            post.ii(),
            clean.ddg.memory_ops(),
            clean.removed.len()
        );
    }
    println!("  -> removing dead loads trims memory traffic and can lower the MII\n");

    // ------------------------------------------------------------------
    // 4. Stage scheduling summary (printed above alongside ablation 1).
    // ------------------------------------------------------------------
    println!("=== Ablation 4/4: stage scheduling is reported with ablation 1 ===");
}
