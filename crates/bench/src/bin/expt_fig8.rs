//! Figure 8: (a) execution cycles, (b) dynamic memory references and
//! (c) scheduling effort for the spilling-heuristic variants, across the
//! three machine configurations and both register-file sizes.

use regpipe_bench::{
    evaluation_suite, fig8_variants, mcycles, run_ideal, run_spill_variant, suite_size,
    REGISTER_BUDGETS,
};
use regpipe_exec::stable_output;
use regpipe_machine::MachineConfig;

fn main() {
    regpipe_bench::apply_jobs_flag();
    let loops = evaluation_suite();
    println!("=== Figure 8: heuristic evaluation ({} loops) ===", suite_size());
    for machine in MachineConfig::paper_configs() {
        let ideal = run_ideal(&loops, &machine);
        for regs in REGISTER_BUDGETS {
            println!("\n--- {} with {} registers ---", machine.name(), regs);
            println!(
                "{:<28} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
                "variant", "Mcycles", "Mmem refs", "fail", "resched", "IIs tried", "time"
            );
            println!(
                "{:<28} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
                "ideal (infinite regs)",
                mcycles(ideal.cycles),
                mcycles(ideal.memory_refs),
                0,
                "-",
                "-",
                "-"
            );
            for variant in fig8_variants() {
                let agg = run_spill_variant(&loops, &machine, regs, variant.options);
                // Wall time is the one non-deterministic column; suppress
                // it under REGPIPE_STABLE_OUTPUT=1 so runs byte-compare.
                let time = if stable_output() {
                    "         -".to_string()
                } else {
                    format!("{:>9.2}s", agg.sched_time.as_secs_f64())
                };
                println!(
                    "{:<28} {:>12} {:>12} {:>8} {:>10} {:>10} {time}",
                    variant.label,
                    mcycles(agg.cycles),
                    mcycles(agg.memory_refs),
                    agg.failures,
                    agg.reschedules,
                    agg.iis_explored,
                );
            }
        }
    }
    println!(
        "\nPaper's shape: Max(LT/Traf) ≤ Max(LT) in cycles and traffic; 64-register results ≈ ideal;\n\
         the two accelerations cost little performance but cut scheduling effort by an order of magnitude."
    );
}
