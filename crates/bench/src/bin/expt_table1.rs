//! Table 1: loops for which increasing the II never converges to the
//! available number of registers, and the share of execution cycles they
//! represent — per machine configuration and register-file size.

use regpipe_bench::{evaluation_suite, suite_size, table1_row, REGISTER_BUDGETS};
use regpipe_machine::MachineConfig;

fn main() {
    regpipe_bench::apply_jobs_flag();
    let loops = evaluation_suite();
    println!(
        "=== Table 1: non-convergence of the increase-II strategy ({} loops) ===\n",
        suite_size()
    );
    println!("{:<8} {:>6} {:>14} {:>14}", "config", "regs", "never-converge", "% of cycles");
    for machine in MachineConfig::paper_configs() {
        for regs in REGISTER_BUDGETS {
            let row = table1_row(&loops, &machine, regs);
            println!(
                "{:<8} {:>6} {:>14} {:>13.1}%",
                machine.name(),
                regs,
                row.non_convergent.len(),
                row.cycle_share
            );
        }
    }
    println!();
    // The paper observes the same loops fail regardless of configuration;
    // list the 32-register failures of P2L4 as the representative set.
    let row = table1_row(&loops, &MachineConfig::p2l4(), 32);
    println!("Non-convergent loops on P2L4 with 32 registers:");
    for name in row.non_convergent.iter().take(30) {
        println!("  {name}");
    }
    if row.non_convergent.len() > 30 {
        println!("  ... and {} more", row.non_convergent.len() - 30);
    }
    println!(
        "\nPaper's shape: a handful of loops (<2%), but ≈20% (64 regs) to ≈30% (32 regs) of cycles."
    );
}
