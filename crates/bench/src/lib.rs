//! Shared experiment harness for the paper's evaluation (Section 5).
//!
//! The binaries in `src/bin/` regenerate each table and figure:
//!
//! | binary         | reproduces                                            |
//! |----------------|--------------------------------------------------------|
//! | `expt_example` | Figures 2/3/5/6 — the running example walkthrough      |
//! | `expt_fig4`    | Figure 4 — register requirement vs II, both APSI loops |
//! | `expt_fig7`    | Figure 7 — regs/MII/II/traffic vs lifetimes spilled    |
//! | `expt_table1`  | Table 1 — loops that never converge + their cycles     |
//! | `expt_fig8`    | Figure 8 — cycles / traffic / scheduling time          |
//! | `expt_fig9`    | Figure 9 — increase-II vs spill vs best-of-all         |
//!
//! Beyond the paper figures, [`run_gap`] backs the `regpipe gap` verb:
//! it schedules a corpus under the exact branch-and-bound oracle and
//! every registered heuristic and reports the optimality gaps, plus a
//! register-squeezed comparison of every registered spill policy
//! (`BENCH_gap.json`, schema `regpipe-bench-gap/v2`).
//!
//! Run them in release mode, e.g.
//! `cargo run --release -p regpipe-bench --bin expt_table1`.
//! Every binary honours `REGPIPE_SUITE_SIZE` (default 1258; a set value
//! must be a positive integer — anything else is a hard error, not a
//! silent fallback) so quick passes are possible, and fans independent
//! per-loop work out across `REGPIPE_JOBS` / `--jobs` worker threads via
//! `regpipe_exec` — results are identical for every worker count.

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod compile_bench;
mod gap;

pub use compile_bench::{run_compile_bench, CompileBenchConfig, CompileBenchReport, SizePoint};
pub use gap::{
    gap_heuristics, run_gap, GapConfig, GapReport, LoopGap, SchedPoint, SchedulerAggregate,
    SpillOutcome, SpillPolicyAggregate, DEFAULT_SPILL_BUDGET,
};

use std::num::NonZeroUsize;
use std::time::Duration;

use regpipe_core::{
    BestOfAllDriver, IncreaseIiDriver, SpillDriver, SpillDriverOptions, Winner,
};
use regpipe_exec::{parallel_map, resolve_jobs};
use regpipe_loops::{suite, suite_size_from_env, BenchLoop};
use regpipe_machine::MachineConfig;
use regpipe_regalloc::allocate;
use regpipe_sched::{HrmsScheduler, SchedRequest, Scheduler};
use regpipe_spill::SelectHeuristic;

/// The suite size, honouring `REGPIPE_SUITE_SIZE` (default 1258).
///
/// A set but invalid value (unparsable or zero) is a hard error: the
/// process exits with a message rather than silently benchmarking 1258
/// loops. The parsing rule itself is [`regpipe_loops::parse_suite_size`].
pub fn suite_size() -> usize {
    suite_size_from_env().unwrap_or_else(|e| die(&e))
}

/// The worker count for the harness's parallel sweeps: `REGPIPE_JOBS` if
/// set (strictly validated), otherwise the machine's parallelism.
pub fn harness_jobs() -> NonZeroUsize {
    resolve_jobs(None).unwrap_or_else(|e| die(&e))
}

/// Applies a `--jobs N` argument from an `expt_*` binary's command line by
/// exporting it as `REGPIPE_JOBS` (which [`harness_jobs`] then picks up).
/// Call this first thing in `main`, before any threads exist.
pub fn apply_jobs_flag() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let value = args.get(i + 1).map(String::as_str).unwrap_or("");
        // Validate eagerly so a typo fails here, not mid-run.
        if let Err(e) = resolve_jobs(Some(value)) {
            die(&e);
        }
        std::env::set_var("REGPIPE_JOBS", value);
    }
}

fn die(message: &str) -> ! {
    eprintln!("regpipe-bench: {message}");
    std::process::exit(2);
}

/// The evaluation suite at the configured size (fixed seed).
pub fn evaluation_suite() -> Vec<BenchLoop> {
    suite(0xC1DA, suite_size())
}

/// The register budgets of the paper's evaluation.
pub const REGISTER_BUDGETS: [u32; 2] = [64, 32];

/// Ideal (infinite registers) schedule: `(ii, regs)`.
pub fn ideal(l: &BenchLoop, machine: &MachineConfig) -> (u32, u32) {
    let s = HrmsScheduler::new()
        .schedule(&l.ddg, machine, &SchedRequest::default())
        .expect("suite loops are schedulable");
    let a = allocate(&l.ddg, &s);
    (s.ii(), a.total())
}

/// One spilling-heuristic variant of Figure 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fig8Variant {
    /// Display label (matches the paper's bar names).
    pub label: &'static str,
    /// Spill-driver configuration.
    pub options: SpillDriverOptions,
}

/// The four heuristic variants of Figure 8, in the paper's order.
pub fn fig8_variants() -> Vec<Fig8Variant> {
    let base = |heuristic| SpillDriverOptions {
        heuristic,
        multi_spill: false,
        last_ii_pruning: false,
        ii_relief: true,
        max_rounds: 1024,
        ..SpillDriverOptions::default()
    };
    vec![
        Fig8Variant { label: "Max(LT)", options: base(SelectHeuristic::MaxLt) },
        Fig8Variant { label: "Max(LT/Traf)", options: base(SelectHeuristic::MaxLtOverTraffic) },
        Fig8Variant {
            label: "Max(LT/Traf)+multi",
            options: SpillDriverOptions {
                multi_spill: true,
                ..base(SelectHeuristic::MaxLtOverTraffic)
            },
        },
        Fig8Variant {
            label: "Max(LT/Traf)+multi+lastII",
            options: SpillDriverOptions {
                multi_spill: true,
                last_ii_pruning: true,
                ..base(SelectHeuristic::MaxLtOverTraffic)
            },
        },
    ]
}

/// Aggregates of one (variant × machine × budget) run over the whole suite.
#[derive(Clone, Debug, Default)]
pub struct SuiteAggregate {
    /// Σ II·weight over all loops (execution cycles).
    pub cycles: u64,
    /// Σ memory-ops·weight (dynamic memory references).
    pub memory_refs: u64,
    /// Loops that could not be fitted (counted, excluded from sums).
    pub failures: u32,
    /// Σ reschedules.
    pub reschedules: u64,
    /// Σ candidate IIs explored by the scheduler.
    pub iis_explored: u64,
    /// Wall-clock time spent scheduling.
    pub sched_time: Duration,
    /// Σ lifetimes spilled.
    pub spilled: u64,
}

/// Runs one spill variant over the suite, one worker thread per
/// [`harness_jobs`] slot. Loops are independent, so the fold below visits
/// per-loop outcomes in suite order and the aggregate is identical for any
/// worker count (wall-clock `sched_time` aside).
pub fn run_spill_variant(
    loops: &[BenchLoop],
    machine: &MachineConfig,
    regs: u32,
    options: SpillDriverOptions,
) -> SuiteAggregate {
    let driver = SpillDriver::new(options);
    let per_loop =
        parallel_map(loops, harness_jobs(), |_, l| driver.run(&l.ddg, machine, regs));
    let mut agg = SuiteAggregate::default();
    for (l, outcome) in loops.iter().zip(per_loop) {
        match outcome {
            Ok(out) => {
                agg.cycles += l.cycles(out.schedule.ii());
                agg.memory_refs += u64::from(out.memory_ops()) * l.weight;
                agg.reschedules += u64::from(out.reschedules);
                agg.iis_explored += u64::from(out.iis_explored);
                agg.sched_time += out.elapsed;
                agg.spilled += u64::from(out.spilled);
            }
            Err(_) => agg.failures += 1,
        }
    }
    agg
}

/// The ideal (infinite-register) aggregate for the same loops.
pub fn run_ideal(loops: &[BenchLoop], machine: &MachineConfig) -> SuiteAggregate {
    let per_loop = parallel_map(loops, harness_jobs(), |_, l| ideal(l, machine));
    let mut agg = SuiteAggregate::default();
    for (l, (ii, _)) in loops.iter().zip(per_loop) {
        agg.cycles += l.cycles(ii);
        agg.memory_refs += u64::from(l.ddg.memory_ops() as u32) * l.weight;
    }
    agg
}

/// Table 1 numbers for one machine/budget: which loops never converge by
/// increasing the II, and the share of (ideal) cycles they represent.
pub struct Table1Row {
    /// Names of the non-convergent loops.
    pub non_convergent: Vec<String>,
    /// Their share of total ideal cycles, in percent.
    pub cycle_share: f64,
}

/// Computes one Table 1 row.
pub fn table1_row(loops: &[BenchLoop], machine: &MachineConfig, regs: u32) -> Table1Row {
    let driver = IncreaseIiDriver::new();
    let per_loop = parallel_map(loops, harness_jobs(), |_, l| {
        let (ii, ideal_regs) = ideal(l, machine);
        // Loops that fit outright converged at the first try; only the
        // rest exercise the increase-II driver.
        let converges = ideal_regs <= regs || driver.run(&l.ddg, machine, regs).is_ok();
        (l.cycles(ii), converges)
    });
    let mut non_convergent = Vec::new();
    let mut bad_cycles = 0u64;
    let mut total_cycles = 0u64;
    for (l, (cycles, converges)) in loops.iter().zip(per_loop) {
        total_cycles += cycles;
        if !converges {
            non_convergent.push(l.name.clone());
            bad_cycles += cycles;
        }
    }
    Table1Row {
        non_convergent,
        cycle_share: if total_cycles == 0 {
            0.0
        } else {
            100.0 * bad_cycles as f64 / total_cycles as f64
        },
    }
}

/// Figure 9 comparison over the subset of loops that (1) need a register
/// reduction and (2) converge under increase-II.
#[derive(Clone, Debug, Default)]
pub struct Fig9Row {
    /// Loops in the comparable subset.
    pub subset: u32,
    /// Σ cycles with increase-II.
    pub increase_ii_cycles: u64,
    /// Σ cycles with the best spill configuration.
    pub spill_cycles: u64,
    /// Σ cycles with best-of-all.
    pub best_cycles: u64,
    /// Loops where increase-II strictly beat spilling.
    pub increase_ii_wins: u32,
}

/// Computes one Figure 9 row.
pub fn fig9_row(loops: &[BenchLoop], machine: &MachineConfig, regs: u32) -> Fig9Row {
    let ii_driver = IncreaseIiDriver::new();
    let spill_driver = SpillDriver::new(SpillDriverOptions::default());
    let best_driver = BestOfAllDriver::new(SpillDriverOptions::default());
    // Per loop: `(ii_of_increase_ii, ii_of_spill, ii_of_best)` for the
    // comparable subset, `None` for loops that need no reduction or are
    // non-convergent (excluded, as in the paper).
    let per_loop = parallel_map(loops, harness_jobs(), |_, l| {
        let (_, ideal_regs) = ideal(l, machine);
        if ideal_regs <= regs {
            return None; // no reduction needed
        }
        let by_ii = ii_driver.run(&l.ddg, machine, regs).ok()?;
        let by_spill = spill_driver.run(&l.ddg, machine, regs).ok()?;
        let by_best = best_driver.run(&l.ddg, machine, regs).ok()?;
        debug_assert!(matches!(by_best.winner, Winner::Spill | Winner::IncreaseIi));
        Some((by_ii.schedule.ii(), by_spill.schedule.ii(), by_best.schedule.ii()))
    });
    let mut row = Fig9Row::default();
    for (l, iis) in loops.iter().zip(per_loop) {
        let Some((ii_ii, spill_ii, best_ii)) = iis else { continue };
        row.subset += 1;
        row.increase_ii_cycles += l.cycles(ii_ii);
        row.spill_cycles += l.cycles(spill_ii);
        row.best_cycles += l.cycles(best_ii);
        if ii_ii < spill_ii {
            row.increase_ii_wins += 1;
        }
    }
    row
}

/// Formats a cycle count in units of 10⁶ cycles, like the paper's axes
/// (scaled down from 10⁹ because the synthetic weights are smaller).
pub fn mcycles(c: u64) -> String {
    format!("{:.1}", c as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_suite() -> Vec<BenchLoop> {
        suite(5, 40)
    }

    #[test]
    fn ideal_is_cheapest() {
        let loops = small_suite();
        let m = MachineConfig::p2l4();
        let ideal_agg = run_ideal(&loops, &m);
        let constrained = run_spill_variant(&loops, &m, 32, SpillDriverOptions::default());
        assert!(constrained.failures == 0, "all loops must fit after spilling");
        assert!(constrained.cycles >= ideal_agg.cycles);
        assert!(constrained.memory_refs >= ideal_agg.memory_refs);
    }

    #[test]
    fn generous_budget_matches_ideal() {
        let loops = small_suite();
        let m = MachineConfig::p2l4();
        let ideal_agg = run_ideal(&loops, &m);
        let roomy = run_spill_variant(&loops, &m, 4096, SpillDriverOptions::default());
        assert_eq!(roomy.cycles, ideal_agg.cycles);
        assert_eq!(roomy.spilled, 0);
    }

    #[test]
    fn accelerated_variant_reschedules_less() {
        let loops = small_suite();
        let m = MachineConfig::p1l4();
        let variants = fig8_variants();
        let slow = run_spill_variant(&loops, &m, 32, variants[1].options);
        let fast = run_spill_variant(&loops, &m, 32, variants[3].options);
        assert!(fast.reschedules <= slow.reschedules);
        assert!(fast.iis_explored <= slow.iis_explored);
    }

    #[test]
    fn table1_row_is_consistent() {
        let loops = small_suite();
        let m = MachineConfig::p2l4();
        let row = table1_row(&loops, &m, 32);
        assert!(row.cycle_share >= 0.0 && row.cycle_share <= 100.0);
        // 64 registers can only shrink the non-convergent set.
        let row64 = table1_row(&loops, &m, 64);
        assert!(row64.non_convergent.len() <= row.non_convergent.len());
    }

    #[test]
    fn fig9_best_never_loses() {
        let loops = small_suite();
        let m = MachineConfig::p2l4();
        let row = fig9_row(&loops, &m, 32);
        assert!(row.best_cycles <= row.increase_ii_cycles.max(row.spill_cycles));
        if row.subset > 0 {
            assert!(row.best_cycles <= row.spill_cycles);
        }
    }
}
