//! Criterion micro-benchmarks for the scheduling substrate: HRMS and the
//! ASAP baseline per machine configuration, MII computation, lifetime
//! analysis and register allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regpipe_loops::{paper, suite};
use regpipe_machine::MachineConfig;
use regpipe_regalloc::{allocate, LifetimeAnalysis, RotatingAllocator};
use regpipe_sched::{mii, rec_mii, AsapScheduler, HrmsScheduler, SchedRequest, Scheduler};

fn bench_schedulers(c: &mut Criterion) {
    let loops = suite(0xC1DA, 64);
    let mut group = c.benchmark_group("schedule_suite64");
    for machine in MachineConfig::paper_configs() {
        group.bench_with_input(BenchmarkId::new("hrms", machine.name()), &machine, |b, m| {
            let sched = HrmsScheduler::new();
            b.iter(|| {
                for l in &loops {
                    black_box(sched.schedule(&l.ddg, m, &SchedRequest::default()).unwrap());
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("asap", machine.name()), &machine, |b, m| {
            let sched = AsapScheduler::new();
            b.iter(|| {
                for l in &loops {
                    black_box(sched.schedule(&l.ddg, m, &SchedRequest::default()).unwrap());
                }
            });
        });
    }
    group.finish();
}

fn bench_mii(c: &mut Criterion) {
    let loops = suite(0xC1DA, 128);
    let machine = MachineConfig::p2l4();
    c.bench_function("rec_mii_suite128", |b| {
        b.iter(|| {
            for l in &loops {
                black_box(rec_mii(&l.ddg, &machine));
            }
        })
    });
    c.bench_function("mii_suite128", |b| {
        b.iter(|| {
            for l in &loops {
                black_box(mii(&l.ddg, &machine));
            }
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    let machine = MachineConfig::p2l4();
    let g = paper::apsi50_like();
    let s = HrmsScheduler::new().schedule(&g, &machine, &SchedRequest::default()).unwrap();
    c.bench_function("lifetime_analysis_apsi50", |b| {
        b.iter(|| black_box(LifetimeAnalysis::new(&g, &s)))
    });
    let analysis = LifetimeAnalysis::new(&g, &s);
    c.bench_function("rotating_alloc_apsi50", |b| {
        b.iter(|| black_box(RotatingAllocator::new().allocate(&analysis)))
    });
    c.bench_function("allocate_apsi50", |b| b.iter(|| black_box(allocate(&g, &s))));
}

criterion_group!(benches, bench_schedulers, bench_mii, bench_allocation);
criterion_main!(benches);
