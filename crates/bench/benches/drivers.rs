//! Criterion benchmarks for the register-constrained drivers, including the
//! ablation of the paper's two scheduling-time accelerations (Section 4.5)
//! and the best-of-all combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use regpipe_core::{BestOfAllDriver, IncreaseIiDriver, SpillDriver, SpillDriverOptions};
use regpipe_loops::paper;
use regpipe_machine::MachineConfig;
use regpipe_spill::SelectHeuristic;

fn bench_spill_ablation(c: &mut Criterion) {
    let machine = MachineConfig::p2l4();
    let g = paper::apsi50_like();
    let variants: [(&str, SpillDriverOptions); 4] = [
        (
            "one-at-a-time",
            SpillDriverOptions {
                heuristic: SelectHeuristic::MaxLtOverTraffic,
                multi_spill: false,
                last_ii_pruning: false,
                ii_relief: true,
                max_rounds: 1024,
                ..SpillDriverOptions::default()
            },
        ),
        (
            "multi-spill",
            SpillDriverOptions {
                heuristic: SelectHeuristic::MaxLtOverTraffic,
                multi_spill: true,
                last_ii_pruning: false,
                ii_relief: true,
                max_rounds: 1024,
                ..SpillDriverOptions::default()
            },
        ),
        (
            "last-ii",
            SpillDriverOptions {
                heuristic: SelectHeuristic::MaxLtOverTraffic,
                multi_spill: false,
                last_ii_pruning: true,
                ii_relief: true,
                max_rounds: 1024,
                ..SpillDriverOptions::default()
            },
        ),
        ("both", SpillDriverOptions::default()),
    ];
    let mut group = c.benchmark_group("spill_apsi50_regs32");
    for (label, options) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &options, |b, &o| {
            let driver = SpillDriver::new(o);
            b.iter(|| black_box(driver.run(&g, &machine, 32).unwrap()));
        });
    }
    group.finish();
}

fn bench_increase_ii(c: &mut Criterion) {
    let machine = MachineConfig::p2l4();
    let g = paper::apsi47_like();
    c.bench_function("increase_ii_apsi47_regs32", |b| {
        let driver = IncreaseIiDriver::new();
        b.iter(|| black_box(driver.run(&g, &machine, 32).unwrap()));
    });
}

fn bench_best_of_all(c: &mut Criterion) {
    let machine = MachineConfig::p2l4();
    let g = paper::apsi47_like();
    c.bench_function("best_of_all_apsi47_regs32", |b| {
        let driver = BestOfAllDriver::new(SpillDriverOptions::default());
        b.iter(|| black_box(driver.run(&g, &machine, 32).unwrap()));
    });
}

criterion_group!(benches, bench_spill_ablation, bench_increase_ii, bench_best_of_all);
criterion_main!(benches);
