//! Register requirements of modulo schedules.
//!
//! Implements Sections 2.3–2.4 of the paper:
//!
//! * [`LifetimeAnalysis`] — per-loop-variant lifetimes with the paper's
//!   split into a *scheduling component* (`LTSch`, distance in cycles from
//!   producer to last consumer) and a *distance component* (`LTDist = δ·II`,
//!   due to loop-carried consumption). The distance component is the part
//!   that **grows** with the II — the reason increasing the II fails to
//!   converge on some loops (Section 3.1).
//! * `MaxLive` — the maximum number of simultaneously live values, an
//!   accurate lower bound for the registers required (the paper's register
//!   estimate in all examples).
//! * [`RotatingAllocator`] — actual allocation on a rotating register file
//!   using adjacency (start-time) ordering with first/end-fit, in the
//!   spirit of Rau et al.'s "wands-only" strategies, which "almost never
//!   required more than MaxLive + 1 registers".
//! * [`MveAllocator`] — modulo variable expansion for machines *without*
//!   rotating files (kernel unrolling + renaming), the alternative sketched
//!   in Section 2.3.
//!
//! ```
//! use regpipe_ddg::{DdgBuilder, OpKind};
//! use regpipe_sched::Schedule;
//! use regpipe_regalloc::LifetimeAnalysis;
//!
//! // Figure 2: x(i) = y(i)*a + y(i-3) at II = 1, hand schedule.
//! let mut b = DdgBuilder::new("fig2");
//! let ld = b.add_op(OpKind::Load, "Ld");
//! let mul = b.add_op(OpKind::Mul, "*");
//! let add = b.add_op(OpKind::Add, "+");
//! let st = b.add_op(OpKind::Store, "St");
//! b.reg(ld, mul);
//! b.reg_dist(ld, add, 3);
//! b.reg(mul, add);
//! b.reg(add, st);
//! b.invariant("a", &[mul]);
//! let g = b.build()?;
//! let schedule = Schedule::new(1, vec![0, 2, 4, 6]);
//!
//! let lt = LifetimeAnalysis::new(&g, &schedule);
//! assert_eq!(lt.max_live_variants(), 11);           // the paper's Figure 2f
//! assert_eq!(lt.max_live(), 12);                    // + the invariant `a`
//! assert_eq!(lt.lifetime(ld).unwrap().length(), 7); // LTSch 4 + LTDist 3
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod chart;
mod lifetime;
mod mve;
mod rotating;

pub use chart::pressure_chart;
pub use lifetime::{Lifetime, LifetimeAnalysis};
pub use mve::{MveAllocation, MveAllocator};
pub use rotating::{AllocationResult, RotatingAllocator};

use regpipe_ddg::Ddg;
use regpipe_sched::Schedule;

/// One-call allocation: lifetime analysis plus rotating-file allocation.
///
/// Returns the actual register requirement of `schedule` — rotating
/// registers for the loop variants plus one static register per live
/// loop-invariant. This is what the register-constrained drivers compare
/// against the machine's register file size.
pub fn allocate(ddg: &Ddg, schedule: &Schedule) -> AllocationResult {
    let analysis = LifetimeAnalysis::new(ddg, schedule);
    RotatingAllocator::new().allocate(&analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn allocate_combines_variants_and_invariants() {
        let mut b = DdgBuilder::new("l");
        let ld = b.add_op(OpKind::Load, "ld");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(ld, st);
        b.invariant("a", &[st]);
        b.invariant("b", &[st]);
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 2]);
        let res = allocate(&g, &s);
        assert_eq!(res.invariant_regs(), 2);
        assert!(res.variant_regs() >= 1);
        assert_eq!(res.total(), res.variant_regs() + res.invariant_regs());
    }
}
