//! Modulo variable expansion (MVE).
//!
//! Without a rotating register file, a lifetime longer than the II would be
//! overwritten by the next iteration's instance. Lam's modulo variable
//! expansion fixes this at compile time: unroll the kernel `K` times and
//! rename each variant's definitions across the copies (paper Section 2.3
//! mentions it as the software alternative to rotating hardware).

use std::fmt;

use crate::lifetime::LifetimeAnalysis;

/// The result of MVE-style allocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MveAllocation {
    unroll: u32,
    variant_regs: u32,
    invariant_regs: u32,
}

impl MveAllocation {
    /// The kernel unroll factor `K` (1 = no unrolling needed).
    pub fn unroll(&self) -> u32 {
        self.unroll
    }

    /// Registers needed by loop variants after renaming
    /// (`Σ ⌈lifetime / II⌉` — each variant needs one name per concurrently
    /// live instance).
    pub fn variant_regs(&self) -> u32 {
        self.variant_regs
    }

    /// Static registers for the live loop invariants.
    pub fn invariant_regs(&self) -> u32 {
        self.invariant_regs
    }

    /// Total register requirement.
    pub fn total(&self) -> u32 {
        self.variant_regs + self.invariant_regs
    }

    /// Code-size multiplier of the unrolled kernel.
    pub fn code_growth(&self) -> u32 {
        self.unroll
    }
}

impl fmt::Display for MveAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MVE: unroll x{}, {} regs ({} variant + {} invariant)",
            self.unroll,
            self.total(),
            self.variant_regs,
            self.invariant_regs
        )
    }
}

/// Modulo-variable-expansion allocator.
///
/// Uses the standard "smallest sufficient unroll" policy: `K` is the least
/// common multiple of each variant's instance count (capped — beyond the
/// cap, the maximum instance count is used, which wastes no registers but
/// forces some copies to be renamed modulo a non-dividing period and is
/// then accounted conservatively).
#[derive(Clone, Copy, Debug)]
pub struct MveAllocator {
    lcm_cap: u32,
}

impl Default for MveAllocator {
    fn default() -> Self {
        MveAllocator { lcm_cap: 64 }
    }
}

impl MveAllocator {
    /// Creates the allocator with the default unroll cap (64 kernel copies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum tolerated unroll factor.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_unroll_cap(cap: u32) -> Self {
        assert!(cap > 0, "unroll cap must be positive");
        MveAllocator { lcm_cap: cap }
    }

    /// Computes the MVE allocation for `analysis`.
    pub fn allocate(&self, analysis: &LifetimeAnalysis) -> MveAllocation {
        let ii = analysis.ii();
        let mut unroll: u64 = 1;
        let mut variant_regs: u32 = 0;
        for lt in analysis.lifetimes() {
            let k = lt.concurrent_instances(ii).max(1);
            variant_regs += k;
            unroll = lcm(unroll, u64::from(k)).min(u64::from(self.lcm_cap));
        }
        MveAllocation {
            unroll: u32::try_from(unroll).expect("capped"),
            variant_regs,
            invariant_regs: analysis.live_invariants(),
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeAnalysis;
    use regpipe_ddg::{DdgBuilder, OpKind};
    use regpipe_sched::Schedule;

    #[test]
    fn short_lifetimes_need_no_unrolling() {
        let mut b = DdgBuilder::new("short");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(p, c);
        let g = b.build().unwrap();
        let s = Schedule::new(4, vec![0, 4]); // lifetime 4 = II
        let alloc = MveAllocator::new().allocate(&LifetimeAnalysis::new(&g, &s));
        assert_eq!(alloc.unroll(), 1);
        assert_eq!(alloc.variant_regs(), 1);
    }

    #[test]
    fn unroll_is_lcm_of_instance_counts() {
        let mut b = DdgBuilder::new("mix");
        let p1 = b.add_op(OpKind::Add, "p1");
        let c1 = b.add_op(OpKind::Copy, "c1");
        let p2 = b.add_op(OpKind::Mul, "p2");
        let c2 = b.add_op(OpKind::Copy, "c2");
        b.reg(p1, c1);
        b.reg(p2, c2);
        let g = b.build().unwrap();
        // II=2: lifetime of p1 = 4 cycles (2 instances), p2 = 6 (3).
        let s = Schedule::from_fixed(2, &[(p1, 0), (c1, 4), (p2, 0), (c2, 6)]);
        let alloc = MveAllocator::new().allocate(&LifetimeAnalysis::new(&g, &s));
        assert_eq!(alloc.unroll(), 6, "lcm(2, 3)");
        assert_eq!(alloc.variant_regs(), 5, "2 + 3 names");
        assert_eq!(alloc.code_growth(), 6);
    }

    #[test]
    fn unroll_cap_is_respected() {
        let mut b = DdgBuilder::new("caps");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Copy, "c");
        b.reg_dist(p, c, 9);
        let g = b.build().unwrap();
        let s = Schedule::from_fixed(1, &[(p, 0), (c, 1)]); // lifetime 10
        let alloc = MveAllocator::with_unroll_cap(4).allocate(&LifetimeAnalysis::new(&g, &s));
        assert!(alloc.unroll() <= 4);
        assert_eq!(alloc.variant_regs(), 10);
    }

    #[test]
    fn mve_needs_at_least_rotating_requirement() {
        // MVE's per-variant ceil sum is never below the cylinder packing.
        let mut b = DdgBuilder::new("cmp");
        let p1 = b.add_op(OpKind::Add, "p1");
        let p2 = b.add_op(OpKind::Mul, "p2");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(p1, c);
        b.reg(p2, c);
        let g = b.build().unwrap();
        let s = Schedule::from_fixed(3, &[(p1, 0), (p2, 1), (c, 7)]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        let mve = MveAllocator::new().allocate(&analysis);
        let rot = crate::RotatingAllocator::new().allocate(&analysis);
        assert!(mve.total() >= rot.total());
    }
}
