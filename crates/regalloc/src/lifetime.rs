//! Lifetime analysis for modulo schedules.

use std::fmt;

use regpipe_ddg::{Ddg, OpId};
use regpipe_sched::Schedule;

/// The lifetime of one loop variant under a given schedule.
///
/// Following the paper's model, a value is live from the *start* of its
/// producer until the *start* of its last consumer (in absolute steady-state
/// time, i.e. accounting for loop-carried consumption δ·II cycles later).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lifetime {
    producer: OpId,
    start: i64,
    end: i64,
    next_use: i64,
    sched_component: i64,
    dist_component: i64,
    last_consumer: OpId,
}

impl Lifetime {
    /// The producing operation (the variant's identity).
    pub fn producer(&self) -> OpId {
        self.producer
    }

    /// Start cycle (the producer's issue cycle).
    pub fn start(&self) -> i64 {
        self.start
    }

    /// End cycle (issue cycle of the last consumer, plus δ·II if the last
    /// use is loop-carried). The value is live during `[start, end)`.
    pub fn end(&self) -> i64 {
        self.end
    }

    /// Total length in cycles (`LTSch + LTDist`).
    pub fn length(&self) -> i64 {
        self.end - self.start
    }

    /// Issue cycle of the *earliest* consumer (plus δ·II for loop-carried
    /// consumption) — the value's next use after being produced. Spill
    /// policies in the Braun & Hack tradition rank victims by the distance
    /// from [`Lifetime::start`] to this cycle.
    pub fn next_use(&self) -> i64 {
        self.next_use
    }

    /// Cycles from production to the first consumption
    /// (`next_use - start`). Can be 0 when one consumer fires at the
    /// production cycle while a later consumer keeps the value live.
    pub fn next_use_distance(&self) -> i64 {
        self.next_use - self.start
    }

    /// The scheduling component `LTSch` (Section 2.4): the distance in the
    /// *schedule* between producer and last consumer. Shrinks (in register
    /// terms) when the II is increased.
    pub fn sched_component(&self) -> i64 {
        self.sched_component
    }

    /// The distance component `LTDist = δ·II` (Section 2.4): grows
    /// proportionally to the II — the registers it requires can never be
    /// reduced by rescheduling with a larger II.
    pub fn dist_component(&self) -> i64 {
        self.dist_component
    }

    /// The consumer that keeps the value alive longest.
    pub fn last_consumer(&self) -> OpId {
        self.last_consumer
    }

    /// The number of simultaneously live instances of this variant
    /// (`⌈length / II⌉`): a lower bound on the registers it occupies alone.
    pub fn concurrent_instances(&self, ii: u32) -> u32 {
        let ii = i64::from(ii);
        u32::try_from((self.length() + ii - 1).div_euclid(ii).max(0)).unwrap_or(u32::MAX)
    }
}

impl fmt::Display for Lifetime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}, {}) len {} (sched {} + dist {})",
            self.producer,
            self.start,
            self.end,
            self.length(),
            self.sched_component,
            self.dist_component
        )
    }
}

/// Lifetimes, register pressure and `MaxLive` for a schedule.
#[derive(Clone, Debug)]
pub struct LifetimeAnalysis {
    ii: u32,
    /// Lifetime per op (None for stores, dead values, zero-length values).
    lifetimes: Vec<Option<Lifetime>>,
    /// Live loop-variant values per kernel cycle (variants only).
    pressure: Vec<u32>,
    live_invariants: u32,
    max_live: u32,
}

impl LifetimeAnalysis {
    /// Analyzes `schedule` for `ddg`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the graph.
    pub fn new(ddg: &Ddg, schedule: &Schedule) -> Self {
        assert_eq!(ddg.num_ops(), schedule.num_ops(), "schedule/graph mismatch");
        let ii = schedule.ii();
        let ii64 = i64::from(ii);
        let mut lifetimes: Vec<Option<Lifetime>> = vec![None; ddg.num_ops()];
        let mut pressure = vec![0u32; ii as usize];

        for (id, node) in ddg.ops() {
            if !node.kind().defines_value() {
                continue;
            }
            let start = schedule.start(id);
            let mut best: Option<(i64, i64, OpId)> = None; // (end, dist_comp, consumer)
            let mut next_use = i64::MAX;
            for (consumer, dist) in ddg.reg_consumers(id) {
                let end = schedule.start(consumer) + i64::from(dist) * ii64;
                if best.is_none_or(|(e, _, _)| end > e) {
                    best = Some((end, i64::from(dist) * ii64, consumer));
                }
                next_use = next_use.min(end);
            }
            let Some((end, dist_component, last_consumer)) = best else {
                continue; // dead value: no register lifetime
            };
            if end <= start {
                continue; // zero-length: consumed as produced
            }
            for t in start..end {
                pressure[t.rem_euclid(ii64) as usize] += 1;
            }
            lifetimes[id.index()] = Some(Lifetime {
                producer: id,
                start,
                end,
                next_use,
                sched_component: end - dist_component - start,
                dist_component,
                last_consumer,
            });
        }

        let live_invariants =
            u32::try_from(ddg.num_live_invariants()).expect("invariant count overflows u32");
        let max_live = pressure.iter().copied().max().unwrap_or(0) + live_invariants;
        LifetimeAnalysis { ii, lifetimes, pressure, live_invariants, max_live }
    }

    /// The schedule's initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The lifetime of the value defined by `op`, if it has one.
    pub fn lifetime(&self, op: OpId) -> Option<&Lifetime> {
        self.lifetimes.get(op.index()).and_then(Option::as_ref)
    }

    /// All live lifetimes.
    pub fn lifetimes(&self) -> impl Iterator<Item = &Lifetime> {
        self.lifetimes.iter().flatten()
    }

    /// Loop-variant register pressure at each kernel cycle (Figure 2f).
    pub fn pressure(&self) -> &[u32] {
        &self.pressure
    }

    /// Number of loop invariants currently occupying a register.
    pub fn live_invariants(&self) -> u32 {
        self.live_invariants
    }

    /// `MaxLive`: the maximum number of simultaneously live values
    /// (loop variants at the worst kernel cycle, plus the invariants, which
    /// are live everywhere). An accurate lower bound on the registers
    /// required by the schedule.
    pub fn max_live(&self) -> u32 {
        self.max_live
    }

    /// `MaxLive` restricted to loop variants (the quantity the paper plots
    /// in its per-loop examples).
    pub fn max_live_variants(&self) -> u32 {
        self.max_live - self.live_invariants
    }

    /// Sum of the distance components, in registers (`Σ ⌈LTDist / II⌉`):
    /// the schedule-independent register floor contributed by loop-carried
    /// dependences (paper Section 3.1).
    pub fn distance_component_regs(&self) -> u32 {
        let ii = i64::from(self.ii);
        self.lifetimes()
            .map(|lt| u32::try_from((lt.dist_component() + ii - 1).div_euclid(ii)).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::DdgBuilder;
    use regpipe_ddg::OpKind;

    /// The paper's running example with its hand schedule at a given II.
    fn fig2(ii: u32) -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.invariant("a", &[mul]);
        let g = b.build().unwrap();
        let s = Schedule::new(ii, vec![0, 2, 4, 6]);
        (g, s)
    }

    #[test]
    fn fig2_lifetimes_match_paper() {
        let (g, s) = fig2(1);
        let lt = LifetimeAnalysis::new(&g, &s);
        let v1 = lt.lifetime(OpId::new(0)).unwrap();
        assert_eq!(v1.sched_component(), 4, "LTSch of V1 (Figure 2d)");
        assert_eq!(v1.dist_component(), 3, "LTDist of V1 at II=1");
        assert_eq!(v1.length(), 7);
        assert_eq!(v1.last_consumer(), OpId::new(2));
        let v2 = lt.lifetime(OpId::new(1)).unwrap();
        assert_eq!(v2.length(), 2);
        assert_eq!(v2.dist_component(), 0);
        // Store defines nothing.
        assert!(lt.lifetime(OpId::new(3)).is_none());
    }

    #[test]
    fn fig2_maxlive_is_11_variants_plus_invariant() {
        let (g, s) = fig2(1);
        let lt = LifetimeAnalysis::new(&g, &s);
        assert_eq!(lt.max_live_variants(), 11, "Figure 2f");
        assert_eq!(lt.live_invariants(), 1);
        assert_eq!(lt.max_live(), 12);
    }

    #[test]
    fn fig3_increasing_ii_to_2_drops_variants_to_7() {
        // Same start cycles, II = 2 (the paper's Figure 3).
        let (g, s) = fig2(2);
        let lt = LifetimeAnalysis::new(&g, &s);
        assert_eq!(lt.max_live_variants(), 7, "Figure 3d");
        // The scheduling component is unchanged; the distance component
        // doubled from 3 to 6 cycles.
        let v1 = lt.lifetime(OpId::new(0)).unwrap();
        assert_eq!(v1.sched_component(), 4);
        assert_eq!(v1.dist_component(), 6);
    }

    #[test]
    fn next_use_is_the_earliest_consumption() {
        let (g, s) = fig2(1);
        let lt = LifetimeAnalysis::new(&g, &s);
        // V1 is consumed by the multiply at cycle 2 and (3 iterations
        // later) by the add at 4 + 3·II = 7: the next use is the multiply.
        let v1 = lt.lifetime(OpId::new(0)).unwrap();
        assert_eq!(v1.next_use(), 2);
        assert_eq!(v1.next_use_distance(), 2);
        assert_eq!(v1.end(), 7, "last use stays the loop-carried add");
        // Single-consumer lifetimes have next use == end.
        let v2 = lt.lifetime(OpId::new(1)).unwrap();
        assert_eq!(v2.next_use(), v2.end());
    }

    #[test]
    fn concurrent_instances_counts_overlap() {
        let (g, s) = fig2(1);
        let lt = LifetimeAnalysis::new(&g, &s);
        let v1 = lt.lifetime(OpId::new(0)).unwrap();
        assert_eq!(v1.concurrent_instances(1), 7, "7 cycles at II 1");

        let (g2, s2) = fig2(2);
        let lt2 = LifetimeAnalysis::new(&g2, &s2);
        let v1 = lt2.lifetime(OpId::new(0)).unwrap();
        assert_eq!(v1.length(), 10, "LTSch 4 + LTDist 6 at II 2");
        assert_eq!(v1.concurrent_instances(2), 5, "10 cycles / II 2");
    }

    #[test]
    fn distance_component_floor() {
        let (g, s) = fig2(1);
        let lt = LifetimeAnalysis::new(&g, &s);
        // Only V1 has a distance component: 3 registers at any II.
        assert_eq!(lt.distance_component_regs(), 3);
        let (g2, s2) = fig2(2);
        let lt2 = LifetimeAnalysis::new(&g2, &s2);
        assert_eq!(lt2.distance_component_regs(), 3, "floor is II-invariant");
    }

    #[test]
    fn dead_and_zero_length_values_have_no_lifetime() {
        let mut b = DdgBuilder::new("dead");
        let a = b.add_op(OpKind::Add, "a"); // dead: no consumers
        let c = b.add_op(OpKind::Copy, "c");
        let d = b.add_op(OpKind::Store, "d");
        b.reg(c, d);
        let g = b.build().unwrap();
        // c@0, d@0: zero-length lifetime (consumed at birth).
        let s = Schedule::from_fixed(1, &[(a, 0), (c, 0), (d, 0)]);
        let lt = LifetimeAnalysis::new(&g, &s);
        assert!(lt.lifetime(a).is_none());
        assert!(lt.lifetime(c).is_none());
        assert_eq!(lt.max_live(), 0);
    }

    #[test]
    fn pressure_wraps_modulo_ii() {
        let mut b = DdgBuilder::new("wrap");
        let p = b.add_op(OpKind::Add, "p");
        let c = b.add_op(OpKind::Copy, "c");
        b.reg(p, c);
        let g = b.build().unwrap();
        // p@1, c@4 normalizes to p@0, c@3 at II=2: live cycles 0,1,2 ->
        // kernel pressure [2, 1] (cycle 0 carries both instance overlaps).
        let s = Schedule::from_fixed(2, &[(p, 1), (c, 4)]);
        let lt = LifetimeAnalysis::new(&g, &s);
        assert_eq!(lt.pressure(), &[2, 1]);
        assert_eq!(lt.max_live(), 2);
    }

    #[test]
    fn spilled_invariants_do_not_count() {
        let mut b = DdgBuilder::new("inv");
        let a = b.add_op(OpKind::Add, "a");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(a, st);
        let iv = b.invariant("k", &[a]);
        let mut g = b.build().unwrap();
        let s = Schedule::new(1, vec![0, 4]);
        assert_eq!(LifetimeAnalysis::new(&g, &s).live_invariants(), 1);
        g.invariant_mut(iv).mark_spilled();
        assert_eq!(LifetimeAnalysis::new(&g, &s).live_invariants(), 0);
    }
}
