//! Register allocation on a rotating register file.

use std::fmt;

use regpipe_ddg::OpId;

use crate::lifetime::LifetimeAnalysis;

/// The outcome of register allocation for one schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocationResult {
    variant_regs: u32,
    invariant_regs: u32,
    max_live: u32,
    /// Rotating register index per operation (None for ops without a
    /// lifetime).
    assignment: Vec<Option<u32>>,
}

impl AllocationResult {
    /// Rotating registers needed by the loop variants.
    pub fn variant_regs(&self) -> u32 {
        self.variant_regs
    }

    /// Static registers needed by the live loop invariants (one each).
    pub fn invariant_regs(&self) -> u32 {
        self.invariant_regs
    }

    /// Total register requirement of the schedule.
    pub fn total(&self) -> u32 {
        self.variant_regs + self.invariant_regs
    }

    /// The `MaxLive` lower bound the allocator was working against
    /// (variants + invariants).
    pub fn max_live(&self) -> u32 {
        self.max_live
    }

    /// How far the allocation landed above `MaxLive` (0 means optimal).
    pub fn excess(&self) -> u32 {
        self.total() - self.max_live
    }

    /// The rotating register assigned to the value defined by `op`.
    pub fn register(&self, op: OpId) -> Option<u32> {
        self.assignment.get(op.index()).copied().flatten()
    }
}

impl fmt::Display for AllocationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} regs ({} rotating + {} invariant; MaxLive {})",
            self.total(),
            self.variant_regs,
            self.invariant_regs,
            self.max_live
        )
    }
}

/// Allocator for rotating register files (the hardware model the paper
/// assumes, Section 2.3).
///
/// A rotating file renames registers every II cycles, so a lifetime longer
/// than the II occupies several consecutive rotating registers — one per
/// concurrently live instance. The allocator places lifetimes on the
/// `R`-register cylinder in *adjacency order* (sorted by start cycle) with
/// first-fit, growing `R` from `MaxLive` until every lifetime fits. This is
/// the family of heuristics from Rau et al.'s "Register allocation for
/// software pipelined loops" that the paper leans on; like theirs, it lands
/// on `MaxLive` or `MaxLive + 1` almost always.
#[derive(Clone, Copy, Default, Debug)]
pub struct RotatingAllocator {
    _private: (),
}

impl RotatingAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        RotatingAllocator { _private: () }
    }

    /// Allocates registers for all lifetimes in `analysis`.
    pub fn allocate(&self, analysis: &LifetimeAnalysis) -> AllocationResult {
        let ii = i64::from(analysis.ii());
        // Adjacency ordering: by start cycle, longest first on ties so the
        // big lifetimes grab compact runs early.
        let mut lifetimes: Vec<(i64, i64, OpId)> =
            analysis.lifetimes().map(|lt| (lt.start(), lt.end(), lt.producer())).collect();
        lifetimes.sort_by_key(|&(s, e, p)| (s, -(e - s), p));

        let max_live_variants = analysis.max_live_variants();
        let n_ops = analysis.lifetimes().map(|lt| lt.producer().index() + 1).max().unwrap_or(0);

        let mut r = max_live_variants.max(u32::from(!lifetimes.is_empty()));
        let (variant_regs, assignment) = loop {
            match try_allocate(&lifetimes, ii, r, n_ops) {
                Some(assignment) => {
                    break (if lifetimes.is_empty() { 0 } else { r }, assignment)
                }
                None => r += 1,
            }
        };
        AllocationResult {
            variant_regs,
            invariant_regs: analysis.live_invariants(),
            max_live: analysis.max_live(),
            assignment,
        }
    }
}

/// Attempts to place all lifetimes on an `r`-register cylinder; returns the
/// per-op register assignment on success.
fn try_allocate(
    lifetimes: &[(i64, i64, OpId)],
    ii: i64,
    r: u32,
    n_ops: usize,
) -> Option<Vec<Option<u32>>> {
    if lifetimes.is_empty() {
        return Some(vec![None; n_ops]);
    }
    let r = i64::from(r);
    let mut assignment: Vec<Option<u32>> = vec![None; n_ops];
    let mut placed: Vec<(i64, i64, i64)> = Vec::new(); // (start, end, rho)

    for &(s_j, e_j, op) in lifetimes {
        let len_j = e_j - s_j;
        // Self-overlap: instance k and instance k+d share a register iff
        // d ≡ 0 (mod r); they overlap in time iff |d|·II < len. So we need
        // r ≥ ⌈len / II⌉.
        let needed = (len_j + ii - 1).div_euclid(ii);
        if needed > r {
            return None;
        }
        let mut forbidden = vec![false; r as usize];
        for &(s_i, e_i, rho_i) in &placed {
            // Iteration-offset range where the intervals can overlap:
            // [s_i, e_i) vs [s_j + d·II, e_j + d·II).
            let d_lo = (s_i - e_j).div_euclid(ii); // smallest d with overlap possible
            let d_hi = (e_i - s_j).div_euclid(ii) + 1;
            for d in d_lo..=d_hi {
                let overlap = s_i < e_j + d * ii && s_j + d * ii < e_i;
                if overlap {
                    // Conflict if rho_i ≡ rho_j + d (mod r).
                    let bad = (rho_i - d).rem_euclid(r);
                    forbidden[bad as usize] = true;
                }
            }
        }
        let rho = (0..r).find(|&c| !forbidden[c as usize])?;
        placed.push((s_j, e_j, rho));
        assignment[op.index()] = Some(rho as u32);
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeAnalysis;
    use regpipe_ddg::{Ddg, DdgBuilder, OpKind};
    use regpipe_sched::Schedule;

    fn analyse(g: &Ddg, s: &Schedule) -> LifetimeAnalysis {
        LifetimeAnalysis::new(g, s)
    }

    /// Brute-force validity check: simulate the steady state over enough
    /// iterations and assert no two live instances share a register.
    fn assert_valid(analysis: &LifetimeAnalysis, result: &AllocationResult) {
        let ii = i64::from(analysis.ii());
        let r = i64::from(result.variant_regs());
        if r == 0 {
            return;
        }
        let lts: Vec<_> = analysis.lifetimes().collect();
        let horizon = lts.iter().map(|lt| lt.end()).max().unwrap_or(0) + 4 * ii;
        let span = 8; // iterations around steady state
        for t in -span * ii..horizon + span * ii {
            let mut used: Vec<(i64, OpId)> = Vec::new();
            for lt in &lts {
                let rho = i64::from(result.register(lt.producer()).unwrap());
                // Instance k live at t iff start + k·II <= t < end + k·II.
                let k_hi = (t - lt.start()).div_euclid(ii);
                let k_lo = (t - lt.end()).div_euclid(ii) + 1;
                for k in k_lo..=k_hi {
                    if lt.start() + k * ii <= t && t < lt.end() + k * ii {
                        let phys = (rho + k).rem_euclid(r);
                        assert!(
                            !used.iter().any(|&(p, o)| p == phys && o != lt.producer()),
                            "register clash at t={t} phys={phys} for {}",
                            lt.producer()
                        );
                        used.push((phys, lt.producer()));
                    }
                }
            }
        }
    }

    #[test]
    fn fig2_allocation_achieves_maxlive() {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        let analysis = analyse(&g, &s);
        let res = RotatingAllocator::new().allocate(&analysis);
        assert_eq!(res.max_live(), 11);
        assert!(res.total() <= 12, "MaxLive + 1 at worst, got {}", res.total());
        assert_valid(&analysis, &res);
    }

    #[test]
    fn empty_loop_needs_no_registers() {
        let mut b = DdgBuilder::new("stores");
        b.add_op(OpKind::Store, "s1");
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0]);
        let res = RotatingAllocator::new().allocate(&analyse(&g, &s));
        assert_eq!(res.total(), 0);
        assert_eq!(res.excess(), 0);
    }

    #[test]
    fn long_self_overlapping_lifetime_needs_multiple_registers() {
        let mut b = DdgBuilder::new("long");
        let p = b.add_op(OpKind::Load, "p");
        let c = b.add_op(OpKind::Copy, "c");
        b.reg_dist(p, c, 4);
        let g = b.build().unwrap();
        // p@0, c@1, distance 4, II=2: lifetime [0, 9) -> 5 instances.
        let s = Schedule::from_fixed(2, &[(p, 0), (c, 1)]);
        let analysis = analyse(&g, &s);
        let res = RotatingAllocator::new().allocate(&analysis);
        assert_eq!(res.variant_regs(), 5);
        assert_valid(&analysis, &res);
    }

    #[test]
    fn disjoint_lifetimes_share_a_register() {
        let mut b = DdgBuilder::new("disjoint");
        let p1 = b.add_op(OpKind::Add, "p1");
        let c1 = b.add_op(OpKind::Copy, "c1");
        let p2 = b.add_op(OpKind::Add, "p2");
        let c2 = b.add_op(OpKind::Copy, "c2");
        b.reg(p1, c1);
        b.reg(p2, c2);
        let g = b.build().unwrap();
        // [0,2) and [2,4) at II=4: no overlap anywhere, ever — one rotating
        // register carries both values back to back.
        let s = Schedule::from_fixed(4, &[(p1, 0), (c1, 2), (p2, 2), (c2, 4)]);
        let analysis = analyse(&g, &s);
        assert_eq!(analysis.max_live_variants(), 1);
        let res = RotatingAllocator::new().allocate(&analysis);
        assert_eq!(res.variant_regs(), 1);
        assert_valid(&analysis, &res);
    }

    #[test]
    fn allocation_is_never_below_maxlive() {
        let mut b = DdgBuilder::new("x");
        let p1 = b.add_op(OpKind::Add, "p1");
        let p2 = b.add_op(OpKind::Mul, "p2");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(p1, c);
        b.reg(p2, c);
        let g = b.build().unwrap();
        let s = Schedule::from_fixed(2, &[(p1, 0), (p2, 1), (c, 5)]);
        let analysis = analyse(&g, &s);
        let res = RotatingAllocator::new().allocate(&analysis);
        assert!(res.variant_regs() >= analysis.max_live_variants());
        assert_valid(&analysis, &res);
    }

    #[test]
    fn random_schedules_allocate_close_to_maxlive() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..60 {
            let n = rng.random_range(2..16usize);
            let ii = rng.random_range(1..6u32);
            let mut b = DdgBuilder::new(format!("r{case}"));
            let ops: Vec<OpId> = (0..n)
                .map(|i| {
                    let kind = if i % 3 == 0 { OpKind::Load } else { OpKind::Add };
                    b.add_op(kind, format!("n{i}"))
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.random_range(0..4u32) == 0 {
                        b.reg_dist(ops[i], ops[j], rng.random_range(0..3u32));
                    }
                }
            }
            let g = b.build().unwrap();
            let starts: Vec<i64> = (0..n).map(|_| rng.random_range(0..30i64)).collect();
            let s = Schedule::new(ii, starts);
            let analysis = analyse(&g, &s);
            let res = RotatingAllocator::new().allocate(&analysis);
            assert!(res.variant_regs() >= analysis.max_live_variants());
            assert!(
                res.variant_regs() <= analysis.max_live_variants().max(1) + 2,
                "case {case}: {} vs MaxLive {}",
                res.variant_regs(),
                analysis.max_live_variants()
            );
            assert_valid(&analysis, &res);
        }
    }
}
