//! ASCII register-pressure charts (the paper's Figure 2f visualization).

use std::fmt::Write as _;

use crate::lifetime::LifetimeAnalysis;

/// Renders the per-cycle loop-variant pressure of a kernel as a bar chart,
/// one row per kernel cycle, in the style of the paper's Figure 2f.
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind};
/// use regpipe_sched::Schedule;
/// use regpipe_regalloc::{pressure_chart, LifetimeAnalysis};
///
/// let mut b = DdgBuilder::new("l");
/// let p = b.add_op(OpKind::Add, "p");
/// let c = b.add_op(OpKind::Store, "c");
/// b.reg(p, c);
/// let g = b.build()?;
/// let s = Schedule::new(2, vec![0, 4]);
/// let chart = pressure_chart(&LifetimeAnalysis::new(&g, &s));
/// assert!(chart.contains("##"));
/// # Ok::<(), regpipe_ddg::DdgError>(())
/// ```
pub fn pressure_chart(analysis: &LifetimeAnalysis) -> String {
    let mut out = String::new();
    let max = analysis.pressure().iter().copied().max().unwrap_or(0);
    let _ = writeln!(
        out,
        "register pressure per kernel cycle (II = {}, MaxLive = {} variants + {} invariants):",
        analysis.ii(),
        analysis.max_live_variants(),
        analysis.live_invariants()
    );
    for (cycle, &p) in analysis.pressure().iter().enumerate() {
        let bar: String = std::iter::repeat_n('#', p as usize).collect();
        let marker = if p == max && max > 0 { " <- MaxLive" } else { "" };
        let _ = writeln!(out, "  {cycle:>3}: {bar:<w$} {p}{marker}", w = max as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};
    use regpipe_sched::Schedule;

    #[test]
    fn chart_marks_the_peak() {
        let mut b = DdgBuilder::new("peak");
        let p1 = b.add_op(OpKind::Add, "p1");
        let p2 = b.add_op(OpKind::Mul, "p2");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(p1, c);
        b.reg(p2, c);
        let g = b.build().unwrap();
        // II=3: p1 lives [0,4) (wrapping into the next instance's cycle 0),
        // p2 lives [2,4): pressure [3, 1, 2].
        let s = Schedule::new(3, vec![0, 2, 4]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        assert_eq!(analysis.pressure(), &[3, 1, 2]);
        let chart = pressure_chart(&analysis);
        assert!(chart.contains("MaxLive = 3 variants"));
        assert!(chart.contains("<- MaxLive"));
        assert_eq!(chart.lines().count(), 4, "header + one row per cycle");
    }

    #[test]
    fn empty_pressure_renders() {
        let mut b = DdgBuilder::new("empty");
        b.add_op(OpKind::Store, "s");
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0]);
        let chart = pressure_chart(&LifetimeAnalysis::new(&g, &s));
        assert!(chart.contains("MaxLive = 0 variants"));
        assert!(!chart.contains("<- MaxLive"));
    }
}
