//! Strategy 2: iterative spilling (paper Section 4, Figure 1b).

use std::error::Error;
use std::fmt;
use std::time::Duration;
use std::time::Instant;

use regpipe_ddg::Ddg;
use regpipe_machine::{MachineConfig, Mrt};
use regpipe_regalloc::{allocate, AllocationResult, LifetimeAnalysis};
use regpipe_sched::{
    HrmsScheduler, LoopAnalysis, SchedError, SchedRequest, Schedule, Scheduler,
};
use regpipe_spill::{
    candidates, spill_batch, RankContext, SelectHeuristic, SpillPolicy, SpillPolicyKind,
};

/// Options for the iterative spilling driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpillDriverOptions {
    /// Victim-ranking policy from the `regpipe_spill` registry; defaults to
    /// the paper's ranking.
    pub policy: SpillPolicyKind,
    /// Victim-selection heuristic (Section 4.1), consulted by the
    /// [`SpillPolicyKind::Paper`] policy.
    pub heuristic: SelectHeuristic,
    /// Spill several lifetimes per reschedule, driven by the optimistic
    /// MaxLive estimate (first acceleration of Section 4.5).
    pub multi_spill: bool,
    /// Restart each reschedule's II search at `max(MII, previous II)`
    /// (second acceleration of Section 4.5).
    pub last_ii_pruning: bool,
    /// When every lifetime has been spilled and the requirement is *still*
    /// above budget, sweep the II upward on the fully-spilled loop (its
    /// lifetimes are bonded, so pressure now genuinely shrinks with the II).
    /// This is an extension over the paper, whose flow simply fails to
    /// local scheduling at that point.
    pub ii_relief: bool,
    /// Safety cap on reschedule rounds.
    pub max_rounds: u32,
}

impl Default for SpillDriverOptions {
    /// The paper's best configuration: `Max(LT/Traf)` with both
    /// accelerations enabled.
    fn default() -> Self {
        SpillDriverOptions {
            policy: SpillPolicyKind::default(),
            heuristic: SelectHeuristic::MaxLtOverTraffic,
            multi_spill: true,
            last_ii_pruning: true,
            ii_relief: true,
            max_rounds: 256,
        }
    }
}

impl SpillDriverOptions {
    /// The paper's slow baseline: one lifetime per reschedule, full II
    /// exploration.
    pub fn unaccelerated(heuristic: SelectHeuristic) -> Self {
        SpillDriverOptions {
            policy: SpillPolicyKind::default(),
            heuristic,
            multi_spill: false,
            last_ii_pruning: false,
            ii_relief: true,
            max_rounds: 1024,
        }
    }
}

/// One row of the spill trace (the series of the paper's Figure 7).
#[derive(Clone, PartialEq, Debug)]
pub struct SpillTracePoint {
    /// Lifetimes spilled so far.
    pub spilled: u32,
    /// The rewritten loop's MII at this point.
    pub mii: u32,
    /// The II of the schedule found.
    pub ii: u32,
    /// Registers required.
    pub regs: u32,
    /// Memory operations per iteration in the loop body.
    pub memory_ops: u32,
    /// Memory-unit (bus) utilization of the schedule, percent.
    pub memory_utilization: f64,
}

/// Success: a register-fitting schedule of the (rewritten) loop.
#[derive(Clone, Debug)]
pub struct SpillOutcome {
    /// The rewritten dependence graph (spill code included).
    pub ddg: Ddg,
    /// The fitting schedule of the rewritten loop.
    pub schedule: Schedule,
    /// Its allocation.
    pub allocation: AllocationResult,
    /// Lifetimes spilled in total.
    pub spilled: u32,
    /// Times the loop was (re)scheduled, including the first attempt.
    pub reschedules: u32,
    /// Candidate IIs explored across all scheduling calls (the paper's
    /// scheduling-effort measure behind Figure 8c).
    pub iis_explored: u32,
    /// Wall-clock time spent inside the driver.
    pub elapsed: Duration,
    /// One point per reschedule (Figure 7's series).
    pub trace: Vec<SpillTracePoint>,
}

impl SpillOutcome {
    /// Memory operations per iteration after spilling (dynamic traffic).
    pub fn memory_ops(&self) -> u32 {
        self.ddg.memory_ops() as u32
    }

    /// The MII of the original (unspilled) loop is not retained here; the
    /// slowdown of spilling is judged against [`SpillOutcome::trace`]'s
    /// first point, which records the pre-spill schedule.
    pub fn first_ii(&self) -> u32 {
        self.trace.first().map_or(self.schedule.ii(), |p| p.ii)
    }
}

/// Failure of the spilling strategy.
#[derive(Clone, Debug)]
pub struct SpillFailure {
    /// Why the driver stopped.
    pub kind: SpillFailureKind,
    /// Best (lowest) register requirement observed, or `None` when the
    /// driver failed before completing a single schedule/allocate round
    /// (e.g. a round cap of 0, or an immediate scheduler error) — there is
    /// no observation to report in that case.
    pub best_regs: Option<u32>,
    /// The trace up to the failure.
    pub trace: Vec<SpillTracePoint>,
}

impl SpillFailure {
    /// `best_regs` rendered for humans: the number, or `n/a` when no
    /// round completed.
    fn best_regs_display(&self) -> String {
        self.best_regs.map_or_else(|| "n/a".to_string(), |r| r.to_string())
    }
}

/// Why spilling gave up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpillFailureKind {
    /// Every remaining lifetime is non-spillable and the requirement is
    /// still above budget: the loop intrinsically needs more registers
    /// (even acyclic scheduling could not help; cf. Section 3.1's third
    /// cause).
    Unspillable,
    /// The round cap was hit (diagnostics guard; not expected in practice).
    RoundCap,
    /// The scheduler failed.
    Sched(SchedError),
}

impl fmt::Display for SpillFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SpillFailureKind::Unspillable => write!(
                f,
                "no spillable lifetime left; loop floor is {} registers",
                self.best_regs_display()
            ),
            SpillFailureKind::RoundCap => write!(
                f,
                "spill driver hit its round cap at {} registers",
                self.best_regs_display()
            ),
            SpillFailureKind::Sched(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl Error for SpillFailure {}

/// The Figure 1b driver: schedule → allocate → (if over budget) select
/// victims → add spill code → reschedule, until the loop fits.
#[derive(Clone, Copy, Debug)]
pub struct SpillDriver<S = HrmsScheduler> {
    scheduler: S,
    options: SpillDriverOptions,
}

impl SpillDriver<HrmsScheduler> {
    /// Driver with the paper's HRMS core scheduler.
    pub fn new(options: SpillDriverOptions) -> Self {
        SpillDriver { scheduler: HrmsScheduler::new(), options }
    }
}

impl<S: Scheduler> SpillDriver<S> {
    /// Driver with a custom scheduler (the method is scheduler-agnostic —
    /// the convergence safeguards live in the graph rewrite, not here).
    pub fn with_scheduler(scheduler: S, options: SpillDriverOptions) -> Self {
        SpillDriver { scheduler, options }
    }

    /// The driver's options.
    pub fn options(&self) -> &SpillDriverOptions {
        &self.options
    }

    /// Runs the iterative spilling loop for a register budget of `regs`.
    ///
    /// # Errors
    ///
    /// [`SpillFailure`] when the loop cannot fit (nothing left to spill),
    /// the round cap is hit, or scheduling fails outright.
    pub fn run(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        regs: u32,
    ) -> Result<SpillOutcome, SpillFailure> {
        let started = Instant::now();
        let mut g = ddg.clone();
        let mut trace: Vec<SpillTracePoint> = Vec::new();
        let mut spilled = 0u32;
        let mut reschedules = 0u32;
        let mut iis_explored = 0u32;
        // No allocation observed yet: failing before the first round must
        // report "n/a", not a u32::MAX sentinel leaking into messages.
        let mut best: Option<u32> = None;
        let mut prev_ii: Option<u32> = None;

        loop {
            // Cooperative deadline check-point: one per spill round.
            regpipe_sched::deadline::check();
            if reschedules >= self.options.max_rounds {
                return Err(SpillFailure {
                    kind: SpillFailureKind::RoundCap,
                    best_regs: best,
                    trace,
                });
            }
            // One analysis context per spill round: every II probe of this
            // round's schedule call shares it, and the spill rewrite at the
            // end of the round is the only thing that invalidates it.
            let ctx = LoopAnalysis::new(&g, machine);
            let current_mii = ctx.mii();
            let min_ii = if self.options.last_ii_pruning {
                prev_ii.map(|p| p.max(current_mii))
            } else {
                None
            };
            let sched = match self
                .scheduler
                .schedule_in(&ctx, &SchedRequest { min_ii, max_ii: None })
            {
                Ok(s) => s,
                Err(e) => {
                    return Err(SpillFailure {
                        kind: SpillFailureKind::Sched(e),
                        best_regs: best,
                        trace,
                    })
                }
            };
            drop(ctx);
            reschedules += 1;
            iis_explored += sched.iis_tried();
            let allocation = allocate(&g, &sched);
            best = Some(best.map_or(allocation.total(), |b| b.min(allocation.total())));
            trace.push(SpillTracePoint {
                spilled,
                mii: current_mii,
                ii: sched.ii(),
                regs: allocation.total(),
                memory_ops: g.memory_ops() as u32,
                memory_utilization: memory_utilization(&g, machine, &sched),
            });

            if allocation.total() <= regs {
                return Ok(SpillOutcome {
                    ddg: g,
                    schedule: sched,
                    allocation,
                    spilled,
                    reschedules,
                    iis_explored,
                    elapsed: started.elapsed(),
                    trace,
                });
            }

            // Select and apply victims. Ranking is delegated to the
            // configured policy; the round counter feeds the stress
            // policy's rotation.
            let analysis = LifetimeAnalysis::new(&g, &sched);
            let pool = candidates(&g, &analysis);
            let rank_ctx = RankContext {
                analysis: &analysis,
                heuristic: self.options.heuristic,
                round: reschedules as usize,
            };
            let policy = self.options.policy;
            let victims: Vec<_> = if self.options.multi_spill {
                let batch = policy
                    .select_batch(&pool, &rank_ctx, regs)
                    .into_iter()
                    .cloned()
                    .collect::<Vec<_>>();
                if batch.is_empty() {
                    // The optimistic estimate already sits below budget but
                    // the real allocation does not: force progress.
                    policy.select(&pool, &rank_ctx).into_iter().cloned().collect()
                } else {
                    batch
                }
            } else {
                policy.select(&pool, &rank_ctx).into_iter().cloned().collect()
            };
            if victims.is_empty() {
                if self.options.ii_relief {
                    return self.ii_relief(
                        g,
                        machine,
                        regs,
                        sched.ii(),
                        spilled,
                        reschedules,
                        iis_explored,
                        best,
                        trace,
                        started,
                    );
                }
                return Err(SpillFailure {
                    kind: SpillFailureKind::Unspillable,
                    best_regs: best,
                    trace,
                });
            }
            // The one DDG mutation point of the driver: any LoopAnalysis of
            // `g` is stale from here on and is rebuilt next round.
            spill_batch(&mut g, &victims);
            spilled += victims.len() as u32;
            prev_ii = Some(sched.ii());
        }
    }

    /// Final fallback: everything spillable is spilled, so all remaining
    /// lifetimes are short and bonded — raising the II now reliably shrinks
    /// the pressure. Sweep upward until the budget fits or the schedule
    /// degenerates to one stage.
    #[allow(clippy::too_many_arguments)]
    fn ii_relief(
        &self,
        g: Ddg,
        machine: &MachineConfig,
        regs: u32,
        from_ii: u32,
        spilled: u32,
        mut reschedules: u32,
        mut iis_explored: u32,
        mut best: Option<u32>,
        mut trace: Vec<SpillTracePoint>,
        started: Instant,
    ) -> Result<SpillOutcome, SpillFailure> {
        // The graph no longer changes in this phase: one context serves
        // every sweep iteration. Scoped so `g` can be moved into the
        // outcome once the sweep settles.
        let fitted = {
            let ctx = LoopAnalysis::new(&g, machine);
            let mut ii = from_ii + 1;
            loop {
                // Cooperative deadline check-point: one per sweep step.
                regpipe_sched::deadline::check();
                if reschedules >= self.options.max_rounds {
                    break Err(SpillFailureKind::RoundCap);
                }
                let sched = match self
                    .scheduler
                    .schedule_in(&ctx, &SchedRequest { min_ii: Some(ii), max_ii: None })
                {
                    Ok(s) => s,
                    Err(e) => break Err(SpillFailureKind::Sched(e)),
                };
                reschedules += 1;
                iis_explored += sched.iis_tried();
                let allocation = allocate(&g, &sched);
                best = Some(best.map_or(allocation.total(), |b| b.min(allocation.total())));
                trace.push(SpillTracePoint {
                    spilled,
                    mii: ctx.mii(),
                    ii: sched.ii(),
                    regs: allocation.total(),
                    memory_ops: g.memory_ops() as u32,
                    memory_utilization: memory_utilization(&g, machine, &sched),
                });
                if allocation.total() <= regs {
                    break Ok((sched, allocation));
                }
                if sched.stage_count() == 1 {
                    // No overlap left: this is the loop's true floor.
                    break Err(SpillFailureKind::Unspillable);
                }
                ii = sched.ii() + 1;
            }
        };
        match fitted {
            Ok((schedule, allocation)) => Ok(SpillOutcome {
                ddg: g,
                schedule,
                allocation,
                spilled,
                reschedules,
                iis_explored,
                elapsed: started.elapsed(),
                trace,
            }),
            Err(kind) => Err(SpillFailure { kind, best_regs: best, trace }),
        }
    }
}

/// Memory-unit utilization of `schedule`, in percent.
fn memory_utilization(ddg: &Ddg, machine: &MachineConfig, schedule: &Schedule) -> f64 {
    let mut mrt = Mrt::new(machine, schedule.ii());
    for (id, node) in ddg.ops() {
        if node.kind().is_memory() {
            // Placement always fits: the schedule was verified resource-legal.
            mrt.place(node.kind(), schedule.start(id));
        }
    }
    mrt.memory_utilization()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn fig2() -> Ddg {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.build().unwrap()
    }

    /// A loop the increase-II strategy cannot fit in 16 registers but
    /// spilling can: wide long-distance taps whose consumers are pinned by
    /// zero-distance uses of the same values.
    fn taps() -> Ddg {
        let mut b = DdgBuilder::new("taps");
        for i in 0..7 {
            let ld = b.add_op(OpKind::Load, format!("ld{i}"));
            let add = b.add_op(OpKind::Add, format!("a{i}"));
            let st = b.add_op(OpKind::Store, format!("s{i}"));
            b.reg(ld, add);
            b.reg_dist(ld, add, 5);
            b.reg(add, st);
        }
        b.build().unwrap()
    }

    #[test]
    fn no_spill_needed_under_generous_budget() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = SpillDriver::new(SpillDriverOptions::default()).run(&g, &m, 32).unwrap();
        assert_eq!(out.spilled, 0);
        assert_eq!(out.reschedules, 1);
        assert_eq!(out.schedule.ii(), 1);
    }

    #[test]
    fn spilling_reaches_tight_budget_on_fig2() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = SpillDriver::new(SpillDriverOptions::unaccelerated(SelectHeuristic::MaxLt))
            .run(&g, &m, 5)
            .unwrap();
        assert!(out.allocation.total() <= 5);
        assert!(out.spilled >= 1);
        out.schedule.verify(&out.ddg, &m).unwrap();
    }

    #[test]
    fn spilling_succeeds_where_increase_ii_cannot() {
        let g = taps();
        let m = MachineConfig::p2l4();
        let out = SpillDriver::new(SpillDriverOptions::default()).run(&g, &m, 16).unwrap();
        assert!(out.allocation.total() <= 16);
        assert!(out.spilled > 0);
        out.schedule.verify(&out.ddg, &m).unwrap();
        // Spilling adds memory traffic.
        assert!(out.memory_ops() > 14);
    }

    #[test]
    fn multi_spill_uses_fewer_reschedules() {
        let g = taps();
        let m = MachineConfig::p2l4();
        let slow = SpillDriver::new(SpillDriverOptions {
            heuristic: SelectHeuristic::MaxLt,
            multi_spill: false,
            last_ii_pruning: false,
            ii_relief: true,
            max_rounds: 1024,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 16)
        .unwrap();
        let fast = SpillDriver::new(SpillDriverOptions {
            heuristic: SelectHeuristic::MaxLt,
            multi_spill: true,
            last_ii_pruning: false,
            ii_relief: true,
            max_rounds: 1024,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 16)
        .unwrap();
        assert!(
            fast.reschedules < slow.reschedules,
            "batch spilling must reduce rescheduling ({} vs {})",
            fast.reschedules,
            slow.reschedules
        );
    }

    #[test]
    fn last_ii_pruning_explores_fewer_iis() {
        let g = taps();
        let m = MachineConfig::p1l4();
        let base = SpillDriver::new(SpillDriverOptions {
            heuristic: SelectHeuristic::MaxLtOverTraffic,
            multi_spill: false,
            last_ii_pruning: false,
            ii_relief: true,
            max_rounds: 1024,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 12)
        .unwrap();
        let pruned = SpillDriver::new(SpillDriverOptions {
            heuristic: SelectHeuristic::MaxLtOverTraffic,
            multi_spill: false,
            last_ii_pruning: true,
            ii_relief: true,
            max_rounds: 1024,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 12)
        .unwrap();
        assert!(
            pruned.iis_explored <= base.iis_explored,
            "pruning must not explore more IIs ({} vs {})",
            pruned.iis_explored,
            base.iis_explored
        );
        // Both must still deliver a fitting schedule.
        assert!(pruned.allocation.total() <= 12);
        assert!(base.allocation.total() <= 12);
    }

    #[test]
    fn trace_records_every_reschedule() {
        let g = taps();
        let m = MachineConfig::p2l4();
        let out = SpillDriver::new(SpillDriverOptions::unaccelerated(SelectHeuristic::MaxLt))
            .run(&g, &m, 16)
            .unwrap();
        assert_eq!(out.trace.len() as u32, out.reschedules);
        assert_eq!(out.trace.last().unwrap().regs, out.allocation.total());
        // Spill counts are non-decreasing along the trace.
        for w in out.trace.windows(2) {
            assert!(w[1].spilled >= w[0].spilled);
            assert!(w[1].memory_ops >= w[0].memory_ops);
        }
    }

    #[test]
    fn impossible_budget_reports_unspillable() {
        let g = taps();
        let m = MachineConfig::p2l4();
        let err = SpillDriver::new(SpillDriverOptions::default()).run(&g, &m, 0).unwrap_err();
        assert!(matches!(err.kind, SpillFailureKind::Unspillable | SpillFailureKind::RoundCap));
    }

    /// Regression: with `max_rounds = 0` the driver fails before any
    /// schedule/allocate round, so there is no best requirement to report.
    /// `best_regs` used to be a `u32::MAX` sentinel that leaked into the
    /// message as "4294967295 registers"; it must render as "n/a" now.
    #[test]
    fn round_cap_before_first_round_reports_no_best_regs() {
        let g = taps();
        let m = MachineConfig::p2l4();
        let err = SpillDriver::new(SpillDriverOptions {
            max_rounds: 0,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 16)
        .unwrap_err();
        assert_eq!(err.kind, SpillFailureKind::RoundCap);
        assert_eq!(err.best_regs, None);
        let message = err.to_string();
        assert!(message.contains("n/a"), "message renders n/a: {message}");
        assert!(!message.contains("4294967295"), "sentinel leaked: {message}");
        // Once at least one round completes, the observation is real again.
        let err = SpillDriver::new(SpillDriverOptions {
            max_rounds: 1,
            ..SpillDriverOptions::default()
        })
        .run(&g, &m, 16)
        .unwrap_err();
        assert!(err.best_regs.is_some());
    }
}
