//! Register-constrained software pipelining.
//!
//! This crate is the paper's contribution proper: given a loop, a machine
//! and a register budget `R`, produce a modulo schedule whose register
//! requirement fits in `R`. Three strategies are provided:
//!
//! * [`IncreaseIiDriver`] — reschedule with ever larger IIs until the
//!   requirement fits (Figure 1a, the Cydra 5 approach). Cheap, but
//!   performance decays quickly and — the paper's key negative result —
//!   it **never converges** for some loops, because loop invariants and
//!   the distance components of lifetimes put an II-independent floor
//!   under the register requirement (Section 3.1).
//! * [`SpillDriver`] — iteratively select lifetimes (Max(LT) or
//!   Max(LT/Traf)), rewrite the graph with spill code, and reschedule until
//!   the requirement fits (Figure 1b, Section 4). Optional accelerations
//!   from Section 4.5: spilling *several lifetimes at once* driven by an
//!   optimistic MaxLive estimate, and *II-search pruning* that restarts
//!   each reschedule at `max(MII, previous II)`.
//! * [`BestOfAllDriver`] — the Section 5 combination: spill first, then
//!   probe the unspilled loop at IIs up to the spill result's II (binary
//!   search); keep whichever schedule is better.
//!
//! All three drivers are generic over the core modulo scheduler — the
//! paper's framework "can be applied to any software pipelining
//! technique" — and [`CompileOptions::scheduler`] selects one from the
//! `regpipe_sched` registry (`SchedulerKind`: HRMS, SMS, or the ASAP
//! baseline), making `strategy × scheduler` a full evaluation matrix.
//!
//! The one-call entry point is [`compile`].
//!
//! ```
//! use regpipe_core::{compile, CompileOptions};
//! use regpipe_ddg::{DdgBuilder, OpKind};
//! use regpipe_machine::MachineConfig;
//!
//! // A loop with a long loop-carried lifetime: y(i) = x(i) + x(i-5).
//! let mut b = DdgBuilder::new("stencil");
//! let ld = b.add_op(OpKind::Load, "ld x");
//! let add = b.add_op(OpKind::Add, "+");
//! let st = b.add_op(OpKind::Store, "st y");
//! b.reg(ld, add);
//! b.reg_dist(ld, add, 5);
//! b.reg(add, st);
//! let ddg = b.build()?;
//!
//! let machine = MachineConfig::p2l4();
//! let compiled = compile(&ddg, &machine, 4, &CompileOptions::default())
//!     .expect("fits in 4 registers after spilling");
//! assert!(compiled.registers_used() <= 4);
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod best_of_all;
mod compile;
mod increase_ii;
mod spill_driver;

pub use best_of_all::{BestOfAllDriver, BestOfAllOutcome, Winner};
pub use compile::{compile, CompileError, CompileOptions, CompiledLoop, Strategy};
// Part of `CompileOptions`' public surface: downstream crates select the
// scheduler axis without depending on `regpipe_sched` directly.
pub use increase_ii::{IiSweepPoint, IncreaseIiDriver, IncreaseIiFailure, IncreaseIiOutcome};
pub use regpipe_sched::SchedulerKind;
// Part of `CompileOptions`' public surface, like the scheduler axis above:
// downstream crates select the spill policy without depending on
// `regpipe_spill` directly.
pub use regpipe_spill::SpillPolicyKind;
pub use spill_driver::{
    SpillDriver, SpillDriverOptions, SpillFailure, SpillOutcome, SpillTracePoint,
};
