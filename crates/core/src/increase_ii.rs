//! Strategy 1: reschedule with an increased II (paper Section 3).

use std::error::Error;
use std::fmt;

use regpipe_ddg::Ddg;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::{allocate, AllocationResult, LifetimeAnalysis};
use regpipe_sched::{
    HrmsScheduler, LoopAnalysis, SchedError, SchedRequest, Schedule, Scheduler,
};

/// One measurement of the II sweep (a point of the paper's Figure 4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IiSweepPoint {
    /// The initiation interval tried.
    pub ii: u32,
    /// Actual registers required by the schedule found at this II.
    pub regs: u32,
    /// Stage count of that schedule.
    pub stage_count: u32,
}

/// Success: a schedule fitting the register budget.
#[derive(Clone, Debug)]
pub struct IncreaseIiOutcome {
    /// The fitting schedule.
    pub schedule: Schedule,
    /// Its register allocation.
    pub allocation: AllocationResult,
    /// The minimum II of the loop (for slowdown accounting).
    pub mii: u32,
    /// The `(II, regs)` trail leading here.
    pub trace: Vec<IiSweepPoint>,
}

/// Failure: the sweep will never fit the budget.
#[derive(Clone, Debug)]
pub struct IncreaseIiFailure {
    /// Why the sweep stopped.
    pub kind: IncreaseIiFailureKind,
    /// The smallest register requirement ever observed.
    pub best_regs: u32,
    /// The `(II, regs)` trail (the paper's Figure 4b when non-convergent).
    pub trace: Vec<IiSweepPoint>,
}

/// Why an II sweep gave up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IncreaseIiFailureKind {
    /// The schedule reached stage count 1 — no iteration overlap remains,
    /// so larger IIs cannot reduce the requirement further (the register
    /// floor of invariants + distance components + one iteration's values
    /// is above the budget). This loop **never converges** (Section 3.1).
    NeverConverges,
    /// The requirement plateaued for the configured window without
    /// improvement while still above budget (practical cutoff for the same
    /// phenomenon).
    Plateau,
    /// The scheduler failed outright.
    Sched(SchedError),
}

impl fmt::Display for IncreaseIiFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            IncreaseIiFailureKind::NeverConverges => {
                write!(f, "increasing the II never converges (floor {} regs)", self.best_regs)
            }
            IncreaseIiFailureKind::Plateau => write!(
                f,
                "register requirement plateaued at {} regs above the budget",
                self.best_regs
            ),
            IncreaseIiFailureKind::Sched(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl Error for IncreaseIiFailure {}

/// The Figure 1a driver: schedule, allocate, and retry with `II + 1` until
/// the allocation fits the register budget — detecting the loops for which
/// this can never happen.
#[derive(Clone, Copy, Debug)]
pub struct IncreaseIiDriver<S = HrmsScheduler> {
    scheduler: S,
    /// Give up after this many consecutive IIs without improvement.
    plateau_window: u32,
}

impl Default for IncreaseIiDriver<HrmsScheduler> {
    fn default() -> Self {
        IncreaseIiDriver { scheduler: HrmsScheduler::new(), plateau_window: 12 }
    }
}

impl IncreaseIiDriver<HrmsScheduler> {
    /// Driver with the paper's HRMS core scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S: Scheduler> IncreaseIiDriver<S> {
    /// Driver with a custom scheduler (the framework is scheduler-agnostic).
    pub fn with_scheduler(scheduler: S) -> Self {
        IncreaseIiDriver { scheduler, plateau_window: 12 }
    }

    /// Sets the plateau cutoff window (consecutive non-improving IIs).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn plateau_window(mut self, window: u32) -> Self {
        assert!(window > 0, "plateau window must be positive");
        self.plateau_window = window;
        self
    }

    /// Runs the sweep until the allocation fits in `regs`.
    ///
    /// # Errors
    ///
    /// [`IncreaseIiFailure`] with the sweep trace when the loop cannot fit:
    /// either provably (stage count 1) or by plateau cutoff.
    pub fn run(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        regs: u32,
    ) -> Result<IncreaseIiOutcome, IncreaseIiFailure> {
        // The graph never changes during a sweep: one analysis context
        // serves every II probe.
        let ctx = LoopAnalysis::new(ddg, machine);
        let lower = ctx.mii();
        let cap = ctx.fallback_max_ii().max(lower);
        let mut trace = Vec::new();
        let mut best = u32::MAX;
        let mut since_improvement = 0u32;

        let mut ii = lower;
        loop {
            // Cooperative deadline check-point: one per II probe.
            regpipe_sched::deadline::check();
            let sched = match self
                .scheduler
                .schedule_in(&ctx, &SchedRequest { min_ii: Some(ii), max_ii: None })
            {
                Ok(s) => s,
                Err(e) => {
                    return Err(IncreaseIiFailure {
                        kind: IncreaseIiFailureKind::Sched(e),
                        best_regs: best,
                        trace,
                    })
                }
            };
            // The scheduler may have skipped infeasible IIs; continue from
            // what it actually found.
            let found_ii = sched.ii();
            let allocation = allocate(ddg, &sched);
            let point = IiSweepPoint {
                ii: found_ii,
                regs: allocation.total(),
                stage_count: sched.stage_count(),
            };
            trace.push(point.clone());

            if allocation.total() <= regs {
                return Ok(IncreaseIiOutcome {
                    schedule: sched,
                    allocation,
                    mii: lower,
                    trace,
                });
            }
            if allocation.total() < best {
                best = allocation.total();
                since_improvement = 0;
            } else {
                since_improvement += 1;
            }
            // Stage count 1: no overlap left to remove. The remaining
            // requirement is the loop's floor; bigger IIs cannot help.
            if sched.stage_count() == 1 {
                return Err(IncreaseIiFailure {
                    kind: IncreaseIiFailureKind::NeverConverges,
                    best_regs: best,
                    trace,
                });
            }
            if since_improvement >= self.plateau_window {
                return Err(IncreaseIiFailure {
                    kind: IncreaseIiFailureKind::Plateau,
                    best_regs: best,
                    trace,
                });
            }
            if found_ii >= cap {
                return Err(IncreaseIiFailure {
                    kind: IncreaseIiFailureKind::NeverConverges,
                    best_regs: best,
                    trace,
                });
            }
            ii = found_ii + 1;
        }
    }

    /// Probes one exact II: schedules at `ii` (exactly) and allocates.
    ///
    /// Used by the best-of-all combination's binary search.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler error when no schedule exists at `ii`.
    pub fn probe(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        ii: u32,
    ) -> Result<(Schedule, AllocationResult), SchedError> {
        self.probe_in(&LoopAnalysis::new(ddg, machine), ii)
    }

    /// [`IncreaseIiDriver::probe`] within a prebuilt analysis context, so a
    /// probe sequence over one loop (the best-of-all binary search) shares
    /// the II-independent work across probes.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler error when no schedule exists at `ii`.
    pub fn probe_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        ii: u32,
    ) -> Result<(Schedule, AllocationResult), SchedError> {
        let sched = self.scheduler.schedule_in(ctx, &SchedRequest::exactly(ii))?;
        let allocation = allocate(ctx.ddg(), &sched);
        Ok((sched, allocation))
    }

    /// An II-independent lower bound on the loop's register requirement:
    /// live invariants plus the distance-component registers of the current
    /// schedule (Section 3.1's convergence predictor). When this exceeds
    /// the budget, the sweep is doomed before it starts.
    pub fn register_floor(&self, ddg: &Ddg, schedule: &Schedule) -> u32 {
        let analysis = LifetimeAnalysis::new(ddg, schedule);
        analysis.distance_component_regs() + analysis.live_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    /// The paper's example loop (Figure 2).
    fn fig2() -> Ddg {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.build().unwrap()
    }

    #[test]
    fn generous_budget_accepts_mii_schedule() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = IncreaseIiDriver::new().run(&g, &m, 32).unwrap();
        assert_eq!(out.schedule.ii(), 1);
        assert_eq!(out.trace.len(), 1);
    }

    #[test]
    fn tight_budget_forces_larger_ii() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        // At II=1 the loop needs ~11 registers; at II=2, ~7 (Figure 3).
        let out = IncreaseIiDriver::new().run(&g, &m, 7).unwrap();
        assert!(out.schedule.ii() >= 2);
        assert!(out.allocation.total() <= 7);
        assert!(out.trace.len() >= 2, "at least one refusal then success");
    }

    #[test]
    fn distance_floor_makes_budget_unreachable() {
        // Seven parallel long-distance taps, each pinned by a zero-distance
        // use of the same value (so the consumer cannot be hoisted before
        // the producer): every lifetime keeps a 5-iteration distance
        // component, 7 x 5 = 35 registers at *any* II.
        let mut b = DdgBuilder::new("floor");
        for i in 0..7 {
            let ld = b.add_op(OpKind::Load, format!("ld{i}"));
            let add = b.add_op(OpKind::Add, format!("a{i}"));
            let st = b.add_op(OpKind::Store, format!("s{i}"));
            b.reg(ld, add);
            b.reg_dist(ld, add, 5);
            b.reg(add, st);
        }
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let err = IncreaseIiDriver::new().run(&g, &m, 16).unwrap_err();
        assert!(
            matches!(
                err.kind,
                IncreaseIiFailureKind::NeverConverges | IncreaseIiFailureKind::Plateau
            ),
            "got {:?}",
            err.kind
        );
        assert!(err.best_regs > 16);
        assert!(err.trace.len() > 1);
    }

    #[test]
    fn trace_iis_are_strictly_increasing() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = IncreaseIiDriver::new().run(&g, &m, 5).unwrap();
        for w in out.trace.windows(2) {
            assert!(w[1].ii > w[0].ii);
        }
    }

    #[test]
    fn probe_schedules_exact_ii() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let (s, a) = IncreaseIiDriver::new().probe(&g, &m, 3).unwrap();
        assert_eq!(s.ii(), 3);
        assert!(a.total() > 0);
    }

    #[test]
    fn register_floor_counts_distance_and_invariants() {
        let mut b = DdgBuilder::new("f");
        let ld = b.add_op(OpKind::Load, "ld");
        let add = b.add_op(OpKind::Add, "a");
        b.reg_dist(ld, add, 4);
        b.invariant("k", &[add]);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let driver = IncreaseIiDriver::new();
        let (s, _) = driver.probe(&g, &m, regpipe_sched::mii(&g, &m)).unwrap();
        assert_eq!(driver.register_floor(&g, &s), 5, "4 distance regs + 1 invariant");
    }
}
