//! Strategy 3: the "best of all" combination (paper Section 5).
//!
//! For a few loops increasing the II beats spilling. The paper proposes a
//! cheap combination: run the spill driver first; its final II is an upper
//! bound for an II-increase schedule worth having. Probe the *unspilled*
//! loop by binary search between MII and that bound; if a fitting schedule
//! exists there, it is better or equal (same or lower II, no extra memory
//! traffic), so keep it — otherwise keep the spilled schedule.

use regpipe_ddg::Ddg;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::AllocationResult;
use regpipe_sched::{HrmsScheduler, LoopAnalysis, Schedule, Scheduler};

use crate::increase_ii::IncreaseIiDriver;
use crate::spill_driver::{SpillDriver, SpillDriverOptions, SpillFailure, SpillOutcome};

/// Which strategy produced the final schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Winner {
    /// The spilled loop won (or the budget was met at MII outright).
    Spill,
    /// The unspilled loop at an increased II won.
    IncreaseIi,
}

/// Outcome of the combined strategy.
#[derive(Clone, Debug)]
pub struct BestOfAllOutcome {
    /// The final loop body (rewritten only if the spill schedule won).
    pub ddg: Ddg,
    /// The winning schedule.
    pub schedule: Schedule,
    /// Its allocation.
    pub allocation: AllocationResult,
    /// Which strategy won.
    pub winner: Winner,
    /// The spill run (kept for its statistics even when it loses).
    pub spill: SpillOutcome,
    /// Additional scheduling probes spent on the binary search.
    pub probes: u32,
}

/// The combined driver.
#[derive(Clone, Copy, Debug)]
pub struct BestOfAllDriver<S = HrmsScheduler> {
    scheduler: S,
    options: SpillDriverOptions,
}

impl BestOfAllDriver<HrmsScheduler> {
    /// Driver with the paper's HRMS core scheduler.
    pub fn new(options: SpillDriverOptions) -> Self {
        BestOfAllDriver { scheduler: HrmsScheduler::new(), options }
    }
}

impl<S: Scheduler + Clone> BestOfAllDriver<S> {
    /// Driver with a custom scheduler.
    pub fn with_scheduler(scheduler: S, options: SpillDriverOptions) -> Self {
        BestOfAllDriver { scheduler, options }
    }

    /// Runs spill-then-probe for a register budget of `regs`.
    ///
    /// # Errors
    ///
    /// Fails only if the spill strategy fails (the probe is best-effort).
    pub fn run(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        regs: u32,
    ) -> Result<BestOfAllOutcome, SpillFailure> {
        let spill_driver = SpillDriver::with_scheduler(self.scheduler.clone(), self.options);
        let spill_outcome = spill_driver.run(ddg, machine, regs)?;

        if spill_outcome.spilled == 0 {
            // Fit at first try: nothing to compare.
            return Ok(BestOfAllOutcome {
                ddg: spill_outcome.ddg.clone(),
                schedule: spill_outcome.schedule.clone(),
                allocation: spill_outcome.allocation.clone(),
                winner: Winner::Spill,
                spill: spill_outcome,
                probes: 0,
            });
        }

        // Binary search the unspilled loop in [MII, spill II]. Register
        // requirements are treated as monotonically non-increasing in II
        // (true in the large; the paper makes the same assumption). All
        // probes target the same unspilled graph, so they share one
        // analysis context instead of paying for groups/recurrence
        // bounds/reachability once per probe.
        let prober = IncreaseIiDriver::with_scheduler(self.scheduler.clone());
        let ctx = LoopAnalysis::new(ddg, machine);
        let mut lo = ctx.mii();
        let mut hi = spill_outcome.schedule.ii();
        let mut probes = 0u32;
        let mut best: Option<(Schedule, AllocationResult)> = None;
        while lo <= hi {
            // Cooperative deadline check-point: one per search probe.
            regpipe_sched::deadline::check();
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            match prober.probe_in(&ctx, mid) {
                Ok((s, a)) if a.total() <= regs => {
                    hi = s.ii().saturating_sub(1);
                    best = Some((s, a));
                }
                _ => {
                    lo = mid + 1;
                }
            }
            if hi == 0 {
                break;
            }
        }

        match best {
            Some((schedule, allocation)) if schedule.ii() <= spill_outcome.schedule.ii() => {
                Ok(BestOfAllOutcome {
                    ddg: ddg.clone(),
                    schedule,
                    allocation,
                    winner: Winner::IncreaseIi,
                    spill: spill_outcome,
                    probes,
                })
            }
            _ => Ok(BestOfAllOutcome {
                ddg: spill_outcome.ddg.clone(),
                schedule: spill_outcome.schedule.clone(),
                allocation: spill_outcome.allocation.clone(),
                winner: Winner::Spill,
                spill: spill_outcome,
                probes,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn fig2() -> Ddg {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.build().unwrap()
    }

    #[test]
    fn generous_budget_short_circuits() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = BestOfAllDriver::new(SpillDriverOptions::default()).run(&g, &m, 32).unwrap();
        assert_eq!(out.winner, Winner::Spill);
        assert_eq!(out.probes, 0);
        assert_eq!(out.schedule.ii(), 1);
    }

    #[test]
    fn result_is_no_worse_than_spill_alone() {
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        for budget in [4, 5, 6, 7, 8] {
            let spill_only =
                SpillDriver::new(SpillDriverOptions::default()).run(&g, &m, budget);
            let combined =
                BestOfAllDriver::new(SpillDriverOptions::default()).run(&g, &m, budget);
            if let (Ok(s), Ok(c)) = (spill_only, combined) {
                assert!(
                    c.schedule.ii() <= s.schedule.ii(),
                    "budget {budget}: combined II {} vs spill II {}",
                    c.schedule.ii(),
                    s.schedule.ii()
                );
                assert!(c.allocation.total() <= budget);
            }
        }
    }

    #[test]
    fn increase_ii_wins_when_overlap_is_the_only_problem() {
        // Short lifetimes, no distance components: halving overlap fixes
        // pressure without any memory traffic, so the probe should win or
        // tie — and the winner must never carry more memory ops.
        let g = fig2();
        let m = MachineConfig::uniform(4, 2);
        let out = BestOfAllDriver::new(SpillDriverOptions::default()).run(&g, &m, 7).unwrap();
        assert!(out.allocation.total() <= 7);
        if out.winner == Winner::IncreaseIi {
            assert_eq!(out.ddg.memory_ops(), g.memory_ops(), "no spill traffic");
        }
        out.schedule.verify(&out.ddg, &m).unwrap();
    }
}
