//! One-call compilation of a loop under a register budget.

use std::error::Error;
use std::fmt;

use regpipe_ddg::Ddg;
use regpipe_machine::MachineConfig;
use regpipe_regalloc::AllocationResult;
use regpipe_sched::{Kernel, Schedule, SchedulerKind};
use regpipe_spill::{SelectHeuristic, SpillPolicyKind};

use crate::best_of_all::{BestOfAllDriver, Winner};
use crate::increase_ii::{IncreaseIiDriver, IncreaseIiFailure};
use crate::spill_driver::{SpillDriver, SpillDriverOptions, SpillFailure};

/// Which register-reduction strategy [`compile`] should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Reschedule with increased IIs only (Figure 1a). May never converge.
    IncreaseIi,
    /// Iterative spilling (Figure 1b).
    Spill,
    /// Spill, then probe the unspilled loop up to the spill II and keep the
    /// better schedule (Section 5). The paper's recommended combination.
    BestOfAll,
}

/// Options for [`compile`].
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// The strategy; defaults to [`Strategy::BestOfAll`].
    pub strategy: Strategy,
    /// The core modulo scheduler every driver round runs; defaults to the
    /// paper's [`SchedulerKind::Hrms`]. The strategies are
    /// scheduler-agnostic, so `strategy × scheduler` is a full matrix.
    pub scheduler: SchedulerKind,
    /// Spill-driver tuning (heuristic + accelerations).
    pub spill: SpillDriverOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            strategy: Strategy::BestOfAll,
            scheduler: SchedulerKind::default(),
            spill: SpillDriverOptions::default(),
        }
    }
}

impl CompileOptions {
    /// Convenience: default options with a different selection heuristic.
    pub fn with_heuristic(heuristic: SelectHeuristic) -> Self {
        let mut o = CompileOptions::default();
        o.spill.heuristic = heuristic;
        o
    }

    /// Convenience: default options with a different spill policy.
    pub fn with_spill_policy(policy: SpillPolicyKind) -> Self {
        let mut o = CompileOptions::default();
        o.spill.policy = policy;
        o
    }

    /// The spill policy the spill-capable strategies will rank victims
    /// with (a shorthand for `options.spill.policy`). The increase-II
    /// strategy never spills, so the policy is inert there.
    pub fn spill_policy(&self) -> SpillPolicyKind {
        self.spill.policy
    }
}

/// A loop compiled under a register budget.
#[derive(Clone, Debug)]
pub struct CompiledLoop {
    ddg: Ddg,
    schedule: Schedule,
    allocation: AllocationResult,
    strategy_used: Strategy,
    spilled: u32,
    reschedules: u32,
}

impl CompiledLoop {
    /// The final loop body (with spill code if any was added).
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// The final schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The final register allocation.
    pub fn allocation(&self) -> &AllocationResult {
        &self.allocation
    }

    /// Total registers used (rotating + invariants).
    pub fn registers_used(&self) -> u32 {
        self.allocation.total()
    }

    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }

    /// Which strategy produced the schedule.
    pub fn strategy_used(&self) -> Strategy {
        self.strategy_used
    }

    /// Lifetimes spilled along the way (0 when no reduction was needed).
    pub fn spilled(&self) -> u32 {
        self.spilled
    }

    /// Scheduling rounds consumed.
    pub fn reschedules(&self) -> u32 {
        self.reschedules
    }

    /// Memory operations per iteration of the final body.
    pub fn memory_ops(&self) -> u32 {
        self.ddg.memory_ops() as u32
    }

    /// Extracts the kernel (stage-annotated, Figure 2e style).
    pub fn kernel(&self) -> Kernel {
        Kernel::new(&self.ddg, &self.schedule)
    }
}

impl fmt::Display for CompiledLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "'{}': II={}, {} regs, {} spills, strategy {:?}",
            self.ddg.name(),
            self.ii(),
            self.registers_used(),
            self.spilled,
            self.strategy_used
        )
    }
}

/// Compilation failure.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// The increase-II strategy never converges for this loop/budget.
    IncreaseIi(IncreaseIiFailure),
    /// The spilling strategy failed (nothing spillable / scheduler error).
    Spill(SpillFailure),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::IncreaseIi(e) => write!(f, "increase-II strategy failed: {e}"),
            CompileError::Spill(e) => write!(f, "spill strategy failed: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::IncreaseIi(e) => Some(e),
            CompileError::Spill(e) => Some(e),
        }
    }
}

/// Compiles `ddg` for `machine` so the schedule fits in `regs` registers.
///
/// Schedules at the best II the core scheduler finds; if the allocation
/// exceeds the budget, applies the selected register-reduction strategy.
///
/// # Errors
///
/// Returns [`CompileError`] when the chosen strategy cannot reach the
/// budget; the error carries the driver's trace for diagnostics.
pub fn compile(
    ddg: &Ddg,
    machine: &MachineConfig,
    regs: u32,
    options: &CompileOptions,
) -> Result<CompiledLoop, CompileError> {
    match options.strategy {
        Strategy::IncreaseIi => {
            let out = IncreaseIiDriver::with_scheduler(options.scheduler)
                .run(ddg, machine, regs)
                .map_err(CompileError::IncreaseIi)?;
            Ok(CompiledLoop {
                ddg: ddg.clone(),
                schedule: out.schedule,
                allocation: out.allocation,
                strategy_used: Strategy::IncreaseIi,
                spilled: 0,
                reschedules: out.trace.len() as u32,
            })
        }
        Strategy::Spill => {
            let out = SpillDriver::with_scheduler(options.scheduler, options.spill)
                .run(ddg, machine, regs)
                .map_err(CompileError::Spill)?;
            Ok(CompiledLoop {
                ddg: out.ddg,
                schedule: out.schedule,
                allocation: out.allocation,
                strategy_used: Strategy::Spill,
                spilled: out.spilled,
                reschedules: out.reschedules,
            })
        }
        Strategy::BestOfAll => {
            let out = BestOfAllDriver::with_scheduler(options.scheduler, options.spill)
                .run(ddg, machine, regs)
                .map_err(CompileError::Spill)?;
            let strategy_used = match out.winner {
                Winner::Spill => Strategy::Spill,
                Winner::IncreaseIi => Strategy::IncreaseIi,
            };
            let spilled = match out.winner {
                Winner::Spill => out.spill.spilled,
                Winner::IncreaseIi => 0,
            };
            Ok(CompiledLoop {
                ddg: out.ddg,
                schedule: out.schedule,
                allocation: out.allocation,
                strategy_used,
                spilled,
                reschedules: out.spill.reschedules + out.probes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn stencil() -> Ddg {
        let mut b = DdgBuilder::new("stencil");
        let ld = b.add_op(OpKind::Load, "ld");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(ld, add);
        b.reg_dist(ld, add, 5);
        b.reg(add, st);
        b.build().unwrap()
    }

    #[test]
    fn default_compile_meets_budget() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        let c = compile(&g, &m, 4, &CompileOptions::default()).unwrap();
        assert!(c.registers_used() <= 4);
        c.schedule().verify(c.ddg(), &m).unwrap();
    }

    #[test]
    fn all_strategies_agree_under_generous_budget() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        for strategy in [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll] {
            let c =
                compile(&g, &m, 64, &CompileOptions { strategy, ..CompileOptions::default() })
                    .unwrap();
            assert_eq!(c.ii(), 1, "{strategy:?} should keep the optimal II");
            assert_eq!(c.spilled(), 0);
        }
    }

    #[test]
    fn increase_ii_error_carries_trace() {
        // 7 wide pinned taps cannot fit 16 regs by increasing the II.
        let mut b = DdgBuilder::new("taps");
        for i in 0..7 {
            let ld = b.add_op(OpKind::Load, format!("ld{i}"));
            let add = b.add_op(OpKind::Add, format!("a{i}"));
            b.reg(ld, add);
            b.reg_dist(ld, add, 5);
        }
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let err = compile(
            &g,
            &m,
            16,
            &CompileOptions { strategy: Strategy::IncreaseIi, ..CompileOptions::default() },
        )
        .unwrap_err();
        match err {
            CompileError::IncreaseIi(f) => assert!(!f.trace.is_empty()),
            other => panic!("expected increase-II failure, got {other}"),
        }
    }

    #[test]
    fn best_of_all_beats_or_ties_spill() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        let spill = compile(
            &g,
            &m,
            4,
            &CompileOptions { strategy: Strategy::Spill, ..CompileOptions::default() },
        )
        .unwrap();
        let both = compile(&g, &m, 4, &CompileOptions::default()).unwrap();
        assert!(both.ii() <= spill.ii());
    }

    /// Every cell of the scheduler × strategy matrix compiles, meets its
    /// budget, and verifies; the scheduler flows through every driver.
    #[test]
    fn scheduler_strategy_matrix_compiles_and_verifies() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        for scheduler in SchedulerKind::ALL {
            for strategy in [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll] {
                let options =
                    CompileOptions { strategy, scheduler, ..CompileOptions::default() };
                let c = compile(&g, &m, 6, &options)
                    .unwrap_or_else(|e| panic!("{scheduler}/{strategy:?}: {e}"));
                assert!(c.registers_used() <= 6, "{scheduler}/{strategy:?}");
                c.schedule().verify(c.ddg(), &m).unwrap();
                assert_eq!(c.schedule().scheduler(), scheduler.slug());
            }
        }
    }

    /// Every cell of the policy × strategy matrix compiles, meets its
    /// budget, and verifies; the policy flows through every spill-capable
    /// driver (and is inert for increase-II).
    #[test]
    fn spill_policy_strategy_matrix_compiles_and_verifies() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        for policy in SpillPolicyKind::ALL {
            for strategy in [Strategy::IncreaseIi, Strategy::Spill, Strategy::BestOfAll] {
                let mut options = CompileOptions::with_spill_policy(policy);
                options.strategy = strategy;
                assert_eq!(options.spill_policy(), policy);
                let c = compile(&g, &m, 6, &options)
                    .unwrap_or_else(|e| panic!("{policy}/{strategy:?}: {e}"));
                assert!(c.registers_used() <= 6, "{policy}/{strategy:?}");
                c.schedule().verify(c.ddg(), &m).unwrap();
            }
        }
    }

    /// The `paper` policy is the default and reproduces the pre-registry
    /// driver result exactly on the reference loop.
    #[test]
    fn default_policy_is_paper_and_matches_explicit_selection() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        assert_eq!(CompileOptions::default().spill_policy(), SpillPolicyKind::Paper);
        let implicit = compile(&g, &m, 4, &CompileOptions::default()).unwrap();
        let explicit =
            compile(&g, &m, 4, &CompileOptions::with_spill_policy(SpillPolicyKind::Paper))
                .unwrap();
        assert_eq!(implicit.ii(), explicit.ii());
        assert_eq!(implicit.registers_used(), explicit.registers_used());
        assert_eq!(implicit.spilled(), explicit.spilled());
        assert_eq!(implicit.schedule(), explicit.schedule());
    }

    #[test]
    fn kernel_extraction_works_on_compiled_loops() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        let c = compile(&g, &m, 4, &CompileOptions::default()).unwrap();
        let k = c.kernel();
        assert_eq!(k.ii(), c.ii());
        assert_eq!(k.slots().count(), c.ddg().num_ops());
    }

    #[test]
    fn display_summarizes() {
        let g = stencil();
        let m = MachineConfig::p2l4();
        let c = compile(&g, &m, 64, &CompileOptions::default()).unwrap();
        let s = c.to_string();
        assert!(s.contains("II=1"));
        assert!(s.contains("stencil"));
    }
}
