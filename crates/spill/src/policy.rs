//! The pluggable spill-policy registry.
//!
//! Spilling is split into three legs, and this module owns the middle one:
//!
//! 1. **analysis** — [`LifetimeAnalysis`](regpipe_regalloc::LifetimeAnalysis)
//!    plus [`candidates`](crate::candidates) turn a schedule into a pool of
//!    [`SpillCandidate`]s with their lifetimes, costs and next-use cycles;
//! 2. **candidate ranking** — a [`SpillPolicy`] orders the pool best-victim
//!    first (this module);
//! 3. **transform** — [`spill_batch`](crate::spill_batch) rewrites the graph
//!    for the chosen victims.
//!
//! The drivers in `regpipe-core` never rank candidates themselves; they hand
//! the pool to whichever [`SpillPolicyKind`] the compile options carry, in
//! the same registry shape as `regpipe_sched::SchedulerKind`.

use std::fmt;

use regpipe_regalloc::LifetimeAnalysis;

use crate::candidate::{key, rank, SelectHeuristic, SpillCandidate};

/// The registered spill policies.
///
/// Slugs identify policies everywhere a result is keyed — report fields,
/// CLI flags, and the serve daemon's content-addressed cache key — so the
/// variants carry no payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpillPolicyKind {
    /// The paper's Section 4.1 selection: rank by the configured
    /// [`SelectHeuristic`] (`Max(LT)` or `Max(LT/Traf)`). The default, and
    /// byte-identical to the pre-registry driver behaviour.
    #[default]
    Paper,
    /// Spill the value whose next use comes *soonest*. The contrarian
    /// counterpart of [`SpillPolicyKind::FurthestNextUse`]: reloads land
    /// close to the producer, so it trades pressure relief for locality.
    MinNextUse,
    /// Belady-style: spill the value whose next use is *furthest away*
    /// (the Braun & Hack ranking). Values idle the longest before their
    /// next consumption occupy a register least profitably.
    FurthestNextUse,
    /// Stress policy: a deterministic rotation over the identity-ordered
    /// pool, advanced by the reschedule round. Exists to exercise the
    /// drivers' convergence safeguards with adversarial victim choices,
    /// not to produce good schedules.
    RoundRobin,
}

impl SpillPolicyKind {
    /// Every registered policy, in registry order.
    pub const ALL: [SpillPolicyKind; 4] = [
        SpillPolicyKind::Paper,
        SpillPolicyKind::MinNextUse,
        SpillPolicyKind::FurthestNextUse,
        SpillPolicyKind::RoundRobin,
    ];

    /// The policy's stable identifier (CLI flag value, report field, cache
    /// key component).
    pub fn slug(self) -> &'static str {
        match self {
            SpillPolicyKind::Paper => "paper",
            SpillPolicyKind::MinNextUse => "min-next-use",
            SpillPolicyKind::FurthestNextUse => "furthest-next-use",
            SpillPolicyKind::RoundRobin => "round-robin",
        }
    }

    /// Parses a slug.
    ///
    /// # Errors
    ///
    /// Names the whole registry when the slug is unknown:
    ///
    /// ```
    /// use regpipe_spill::SpillPolicyKind;
    /// let err = SpillPolicyKind::parse("belady").unwrap_err();
    /// assert!(err.contains("unknown spill policy 'belady'"));
    /// assert!(err.contains("furthest-next-use"));
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "paper" => Ok(SpillPolicyKind::Paper),
            "min-next-use" => Ok(SpillPolicyKind::MinNextUse),
            "furthest-next-use" => Ok(SpillPolicyKind::FurthestNextUse),
            "round-robin" => Ok(SpillPolicyKind::RoundRobin),
            other => Err(format!(
                "unknown spill policy '{other}' (expected paper, min-next-use, \
                 furthest-next-use or round-robin)"
            )),
        }
    }
}

impl fmt::Display for SpillPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Everything a policy may rank over, besides the candidates themselves.
///
/// The fields of this struct *are* the determinism contract (see
/// [`SpillPolicy`]): a ranking must be a pure function of the candidate
/// pool and this context.
#[derive(Clone, Copy, Debug)]
pub struct RankContext<'a> {
    /// Lifetime analysis of the schedule the candidates were drawn from
    /// (provides next-use cycles, `MaxLive` and the II).
    pub analysis: &'a LifetimeAnalysis,
    /// The Section 4.1 heuristic; only [`SpillPolicyKind::Paper`] consults
    /// it, the next-use policies rank on the analysis alone.
    pub heuristic: SelectHeuristic,
    /// Completed reschedule rounds of the driving loop; only
    /// [`SpillPolicyKind::RoundRobin`] consults it.
    pub round: usize,
}

/// The candidate-ranking leg of the spill pipeline.
///
/// # Determinism contract
///
/// [`SpillPolicy::order`] must be a **pure function of the candidate pool
/// and the [`RankContext`]** — the lifetime analysis, the configured
/// heuristic, and the round counter. No hidden state, no iteration-order
/// dependence, no floating-point environment sensitivity: two calls with
/// equal inputs must produce the identical permutation, and the ordering
/// must be *total* (every tie broken, ultimately by candidate identity).
/// The batch engine, the serve cache and the differential oracle harness
/// all rely on this to reproduce results byte-identically at any job
/// count, on any transport, cached or not.
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind};
/// use regpipe_regalloc::LifetimeAnalysis;
/// use regpipe_sched::Schedule;
/// use regpipe_spill::{candidates, RankContext, SelectHeuristic, SpillPolicy, SpillPolicyKind};
///
/// let mut b = DdgBuilder::new("fig2");
/// let ld = b.add_op(OpKind::Load, "Ld");
/// let mul = b.add_op(OpKind::Mul, "*");
/// let add = b.add_op(OpKind::Add, "+");
/// let st = b.add_op(OpKind::Store, "St");
/// b.reg(ld, mul);
/// b.reg_dist(ld, add, 3);
/// b.reg(mul, add);
/// b.reg(add, st);
/// let g = b.build()?;
/// let schedule = Schedule::new(1, vec![0, 2, 4, 6]);
/// let analysis = LifetimeAnalysis::new(&g, &schedule);
/// let pool = candidates(&g, &analysis);
/// let ctx = RankContext { analysis: &analysis, heuristic: SelectHeuristic::MaxLt, round: 0 };
///
/// for policy in SpillPolicyKind::ALL {
///     // Same inputs, same permutation — the contract every policy obeys.
///     let a: Vec<_> = policy.ranked(&pool, &ctx);
///     let b: Vec<_> = policy.ranked(&pool, &ctx);
///     assert_eq!(a, b, "{policy} must rank deterministically");
/// }
/// # Ok::<(), regpipe_ddg::DdgError>(())
/// ```
pub trait SpillPolicy {
    /// Permutes `pool` so the best victim comes first, under the contract
    /// above.
    fn order(&self, pool: &mut [&SpillCandidate], ctx: &RankContext<'_>);

    /// The full ranking of `candidates`, best victim first.
    fn ranked<'a>(
        &self,
        candidates: &'a [SpillCandidate],
        ctx: &RankContext<'_>,
    ) -> Vec<&'a SpillCandidate> {
        let mut pool: Vec<&SpillCandidate> = candidates.iter().collect();
        self.order(&mut pool, ctx);
        pool
    }

    /// Picks the single best victim (the non-accelerated driver path).
    fn select<'a>(
        &self,
        candidates: &'a [SpillCandidate],
        ctx: &RankContext<'_>,
    ) -> Option<&'a SpillCandidate> {
        self.ranked(candidates, ctx).first().copied()
    }

    /// Greedy batch selection for the *multiple lifetimes at once*
    /// acceleration (Section 4.5), generic over the policy's order: keeps
    /// taking the next-ranked candidate while the optimistic
    /// `MaxLive`-based estimate stays at or above the register budget
    /// `available`. The estimate subtracts each victim's
    /// concurrent-instance count (`⌈lifetime / II⌉`, at least 1) and is
    /// deliberately optimistic so "spill code is not added in excess".
    fn select_batch<'a>(
        &self,
        candidates: &'a [SpillCandidate],
        ctx: &RankContext<'_>,
        available: u32,
    ) -> Vec<&'a SpillCandidate> {
        let mut selected = Vec::new();
        let mut estimate = i64::from(ctx.analysis.max_live());
        let ii = i64::from(ctx.analysis.ii().max(1));
        for cand in self.ranked(candidates, ctx) {
            if estimate < i64::from(available) {
                break;
            }
            let freed = (cand.lifetime() + ii - 1).div_euclid(ii).max(1);
            estimate -= freed;
            selected.push(cand);
        }
        selected
    }
}

impl SpillPolicy for SpillPolicyKind {
    fn order(&self, pool: &mut [&SpillCandidate], ctx: &RankContext<'_>) {
        match self {
            SpillPolicyKind::Paper => pool.sort_by(|a, b| {
                rank(b, ctx.heuristic)
                    .total_cmp(&rank(a, ctx.heuristic))
                    .then(b.lifetime().cmp(&a.lifetime()))
                    .then(a.cost().cmp(&b.cost()))
                    .then(key(a).cmp(&key(b)))
            }),
            SpillPolicyKind::MinNextUse => {
                pool.sort_by(|a, b| next_use_order(a, b, ctx).then(paper_ties(a, b, ctx)))
            }
            SpillPolicyKind::FurthestNextUse => {
                pool.sort_by(|a, b| next_use_order(b, a, ctx).then(paper_ties(a, b, ctx)))
            }
            SpillPolicyKind::RoundRobin => {
                pool.sort_by_key(|c| key(c));
                if !pool.is_empty() {
                    pool.rotate_left(ctx.round % pool.len());
                }
            }
        }
    }
}

/// Ascending next-use-distance order (`a` before `b` when `a`'s next use
/// comes sooner).
fn next_use_order(
    a: &SpillCandidate,
    b: &SpillCandidate,
    ctx: &RankContext<'_>,
) -> std::cmp::Ordering {
    next_use_distance(a, ctx).cmp(&next_use_distance(b, ctx))
}

/// The paper ordering as a tie-break chain, so the next-use policies stay
/// total (and sensible) when distances collide.
fn paper_ties(
    a: &SpillCandidate,
    b: &SpillCandidate,
    ctx: &RankContext<'_>,
) -> std::cmp::Ordering {
    rank(b, ctx.heuristic)
        .total_cmp(&rank(a, ctx.heuristic))
        .then(b.lifetime().cmp(&a.lifetime()))
        .then(a.cost().cmp(&b.cost()))
        .then(key(a).cmp(&key(b)))
}

/// Cycles from production to the candidate's first consumption.
///
/// Invariants have no producer in the schedule; they are live across the
/// whole kernel, so their next-use distance is defined as one II — the
/// furthest any use can be from "now" within the steady state.
fn next_use_distance(c: &SpillCandidate, ctx: &RankContext<'_>) -> i64 {
    match *c {
        SpillCandidate::Variant { producer, .. } => {
            ctx.analysis.lifetime(producer).map_or(i64::MAX, |lt| lt.next_use_distance())
        }
        SpillCandidate::Invariant { .. } => i64::from(ctx.analysis.ii()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{candidates, select, select_batch};
    use regpipe_ddg::{Ddg, DdgBuilder, OpKind};
    use regpipe_sched::Schedule;

    fn fig2() -> (Ddg, LifetimeAnalysis) {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.invariant("a", &[mul]);
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        (g, analysis)
    }

    fn ctx(analysis: &LifetimeAnalysis) -> RankContext<'_> {
        RankContext { analysis, heuristic: SelectHeuristic::MaxLt, round: 0 }
    }

    #[test]
    fn slugs_roundtrip_and_unknowns_are_named() {
        for kind in SpillPolicyKind::ALL {
            assert_eq!(SpillPolicyKind::parse(kind.slug()), Ok(kind));
            assert_eq!(kind.to_string(), kind.slug());
        }
        let err = SpillPolicyKind::parse("lru").unwrap_err();
        assert!(err.contains("unknown spill policy 'lru'"), "{err}");
        for kind in SpillPolicyKind::ALL {
            assert!(err.contains(kind.slug()), "error names {kind}: {err}");
        }
    }

    #[test]
    fn default_is_the_paper_policy() {
        assert_eq!(SpillPolicyKind::default(), SpillPolicyKind::Paper);
    }

    /// The registry's `Paper` entry must agree with the legacy free
    /// functions candidate-for-candidate — that equivalence is what keeps
    /// the refactored driver byte-identical for default options.
    #[test]
    fn paper_policy_matches_legacy_select_functions() {
        let (g, analysis) = fig2();
        let pool = candidates(&g, &analysis);
        for heuristic in [SelectHeuristic::MaxLt, SelectHeuristic::MaxLtOverTraffic] {
            let ctx = RankContext { analysis: &analysis, heuristic, round: 3 };
            assert_eq!(
                SpillPolicyKind::Paper.select(&pool, &ctx),
                select(&pool, heuristic),
                "single victim under {heuristic}"
            );
            for budget in [0, 2, 5, 9, 32] {
                assert_eq!(
                    SpillPolicyKind::Paper.select_batch(&pool, &ctx, budget),
                    select_batch(&pool, heuristic, analysis.max_live(), budget, analysis.ii()),
                    "batch under {heuristic} at budget {budget}"
                );
            }
        }
    }

    #[test]
    fn min_next_use_prefers_the_soonest_consumed_value() {
        let (g, analysis) = fig2();
        let pool = candidates(&g, &analysis);
        let ctx = ctx(&analysis);
        // Distances: V1 -> 2 (the multiply), V2 -> 2 (the add at 4 minus
        // start 2), V3 -> 2, invariant -> II = 1. The invariant wins.
        let best = SpillPolicyKind::MinNextUse.select(&pool, &ctx).unwrap();
        assert!(matches!(best, SpillCandidate::Invariant { .. }), "got {best}");
        // FurthestNextUse puts the invariant last for the same reason.
        let ranked = SpillPolicyKind::FurthestNextUse.ranked(&pool, &ctx);
        assert!(matches!(ranked.last().unwrap(), SpillCandidate::Invariant { .. }));
    }

    #[test]
    fn furthest_next_use_is_min_reversed_modulo_ties() {
        let (g, analysis) = fig2();
        let pool = candidates(&g, &analysis);
        let ctx = ctx(&analysis);
        let min: Vec<i64> = SpillPolicyKind::MinNextUse
            .ranked(&pool, &ctx)
            .iter()
            .map(|c| next_use_distance(c, &ctx))
            .collect();
        let max: Vec<i64> = SpillPolicyKind::FurthestNextUse
            .ranked(&pool, &ctx)
            .iter()
            .map(|c| next_use_distance(c, &ctx))
            .collect();
        let mut reversed = max.clone();
        reversed.reverse();
        assert_eq!(min, reversed, "distance sequences mirror each other");
        assert!(min.windows(2).all(|w| w[0] <= w[1]), "min ascends: {min:?}");
    }

    #[test]
    fn round_robin_rotates_with_the_round_counter() {
        let (g, analysis) = fig2();
        let pool = candidates(&g, &analysis);
        let n = pool.len();
        assert!(n >= 2);
        let mut firsts = Vec::new();
        for round in 0..n {
            let ctx =
                RankContext { analysis: &analysis, heuristic: SelectHeuristic::MaxLt, round };
            firsts.push(SpillPolicyKind::RoundRobin.select(&pool, &ctx).unwrap().clone());
            // One full rotation returns to the start.
            let wrapped = RankContext { round: round + n, ..ctx };
            assert_eq!(
                SpillPolicyKind::RoundRobin.select(&pool, &ctx),
                SpillPolicyKind::RoundRobin.select(&pool, &wrapped),
            );
        }
        firsts.sort_by_key(key);
        firsts.dedup();
        assert_eq!(firsts.len(), n, "every candidate gets a turn as victim");
    }

    #[test]
    fn batch_selection_respects_every_policy_order() {
        let (g, analysis) = fig2();
        let pool = candidates(&g, &analysis);
        let ctx = ctx(&analysis);
        for policy in SpillPolicyKind::ALL {
            let ranked = policy.ranked(&pool, &ctx);
            let batch = policy.select_batch(&pool, &ctx, 2);
            assert!(!batch.is_empty(), "{policy} must make progress over budget");
            assert_eq!(&ranked[..batch.len()], &batch[..], "{policy} takes a prefix");
            assert!(policy.select_batch(&pool, &ctx, 32).is_empty(), "{policy} under budget");
        }
    }

    #[test]
    fn empty_pools_are_handled() {
        let (_, analysis) = fig2();
        let ctx = ctx(&analysis);
        for policy in SpillPolicyKind::ALL {
            assert!(policy.select(&[], &ctx).is_none());
            assert!(policy.select_batch(&[], &ctx, 0).is_empty());
        }
    }
}
