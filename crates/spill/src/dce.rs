//! Dead-code elimination after spilling (an extension over the paper).
//!
//! The producer-is-load optimization of Section 4.2 leaves the original
//! load in the body even when *all* of its uses were redirected to reloads
//! (the paper's Figure 5c keeps `Ld`). The dead load still occupies a
//! memory-unit slot and issues a real memory access every iteration. This
//! module rebuilds the graph without dead value-producing operations so the
//! effect can be measured (see the `expt_ablation` binary).

use regpipe_ddg::{Ddg, Edge, EdgeKind, OpId};

/// Result of dead-code elimination.
#[derive(Clone, Debug)]
pub struct DceReport {
    /// The cleaned graph (node ids are re-densified).
    pub ddg: Ddg,
    /// Names of the removed operations.
    pub removed: Vec<String>,
}

/// Removes operations whose values are never consumed.
///
/// An operation is dead when it defines a value (i.e. it is not a store)
/// and has no outgoing register edges; removal cascades (an operation kept
/// alive only by a dead consumer dies too). Stores always stay (they have
/// memory side effects). Ordering and memory edges adjacent to removed
/// operations are dropped: they existed to time the dead value.
///
/// Invariant uses pointing at removed operations are dropped as well.
pub fn eliminate_dead_ops(ddg: &Ddg) -> DceReport {
    let n = ddg.num_ops();
    let mut dead = vec![false; n];
    // Fixpoint: a value-producing op with no live register consumer dies.
    let mut changed = true;
    while changed {
        changed = false;
        for (id, node) in ddg.ops() {
            if dead[id.index()] || !node.kind().defines_value() {
                continue;
            }
            let has_live_use = ddg
                .out_edges(id)
                .any(|e| e.kind() == EdgeKind::RegFlow && !dead[e.to().index()]);
            if !has_live_use {
                dead[id.index()] = true;
                changed = true;
            }
        }
    }

    // Rebuild with dense ids.
    let mut remap = vec![usize::MAX; n];
    let mut out = Ddg::new(ddg.name());
    let mut removed = Vec::new();
    for (id, node) in ddg.ops() {
        if dead[id.index()] {
            removed.push(node.name().to_string());
        } else {
            let new_id = out.add_op(node.kind(), node.name());
            remap[id.index()] = new_id.index();
            if ddg.is_value_marked_non_spillable(id) {
                out.mark_value_non_spillable(new_id);
            }
        }
    }
    for e in ddg.edges() {
        let (f, t) = (remap[e.from().index()], remap[e.to().index()]);
        if f == usize::MAX || t == usize::MAX {
            continue;
        }
        let (f, t) = (OpId::new(f), OpId::new(t));
        let edge = if e.is_fixed() {
            Edge::fixed_staggered(f, t, e.stagger())
        } else {
            Edge::new(f, t, e.kind(), e.distance())
        };
        out.add_edge(edge);
    }
    for (_, inv) in ddg.invariants() {
        let uses: Vec<OpId> = inv
            .uses()
            .iter()
            .filter(|u| remap[u.index()] != usize::MAX)
            .map(|u| OpId::new(remap[u.index()]))
            .collect();
        let new_id = out.add_invariant(inv.name(), &uses);
        if inv.is_spilled() {
            out.invariant_mut(new_id).mark_spilled();
        } else if !inv.is_spillable() && !inv.uses().is_empty() {
            out.invariant_mut(new_id).mark_non_spillable();
        }
    }
    DceReport { ddg: out, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{candidates, select, SelectHeuristic};
    use crate::rewrite::spill;
    use regpipe_ddg::{DdgBuilder, OpKind};
    use regpipe_regalloc::LifetimeAnalysis;
    use regpipe_sched::Schedule;

    #[test]
    fn live_graph_is_untouched() {
        let mut b = DdgBuilder::new("live");
        let l = b.add_op(OpKind::Load, "l");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, s);
        let g = b.build().unwrap();
        let r = eliminate_dead_ops(&g);
        assert!(r.removed.is_empty());
        assert_eq!(r.ddg.num_ops(), 2);
    }

    #[test]
    fn dead_load_after_full_spill_is_removed() {
        // Spill the load's value: the producer-is-load path leaves it dead.
        let mut b = DdgBuilder::new("fig5");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg(mul, st);
        let mut g = b.build().unwrap();
        let sched = Schedule::new(1, vec![0, 2, 6]);
        let analysis = LifetimeAnalysis::new(&g, &sched);
        let pool = candidates(&g, &analysis);
        let v_ld = pool
            .iter()
            .find(|c| matches!(c, crate::SpillCandidate::Variant { producer, .. } if *producer == ld))
            .unwrap()
            .clone();
        spill(&mut g, &v_ld);
        assert_eq!(g.reg_consumers(ld).count(), 0, "the load is now dead");

        let before_mem = g.memory_ops();
        let r = eliminate_dead_ops(&g);
        assert_eq!(r.removed, vec!["Ld".to_string()]);
        assert_eq!(r.ddg.memory_ops(), before_mem - 1, "one memory slot freed");
        r.ddg.validate().unwrap();
    }

    #[test]
    fn removal_cascades_through_chains() {
        // a -> b -> c where c is an Add with no consumers: all three die.
        let mut b = DdgBuilder::new("cascade");
        let x = b.add_op(OpKind::Load, "x");
        let y = b.add_op(OpKind::Mul, "y");
        let z = b.add_op(OpKind::Add, "z");
        b.reg(x, y);
        b.reg(y, z);
        let live = b.add_op(OpKind::Load, "live");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(live, st);
        let g = b.build().unwrap();
        let r = eliminate_dead_ops(&g);
        assert_eq!(r.removed.len(), 3);
        assert_eq!(r.ddg.num_ops(), 2);
        r.ddg.validate().unwrap();
    }

    #[test]
    fn invariant_uses_are_remapped() {
        let mut b = DdgBuilder::new("inv");
        let deadmul = b.add_op(OpKind::Mul, "dead");
        let l = b.add_op(OpKind::Load, "l");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, s);
        b.invariant("k", &[deadmul, s]);
        let g = b.build().unwrap();
        let r = eliminate_dead_ops(&g);
        assert_eq!(r.removed, vec!["dead".to_string()]);
        let (_, inv) = r.ddg.invariants().next().unwrap();
        assert_eq!(inv.uses().len(), 1, "use of the dead op dropped");
        r.ddg.validate().unwrap();
    }

    #[test]
    fn spill_then_dce_preserves_schedulability() {
        use regpipe_machine::MachineConfig;
        use regpipe_sched::{HrmsScheduler, SchedRequest, Scheduler};
        let mut b = DdgBuilder::new("pipeline");
        let ld = b.add_op(OpKind::Load, "ld");
        let a1 = b.add_op(OpKind::Add, "a1");
        let a2 = b.add_op(OpKind::Add, "a2");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(ld, a1);
        b.reg_dist(ld, a2, 3);
        b.reg(a1, a2);
        b.reg(a2, st);
        let mut g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let sched = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let analysis = LifetimeAnalysis::new(&g, &sched);
        let pool = candidates(&g, &analysis);
        let victim = select(&pool, SelectHeuristic::MaxLt).unwrap().clone();
        spill(&mut g, &victim);
        let r = eliminate_dead_ops(&g);
        let post = HrmsScheduler::new()
            .schedule(&r.ddg, &m, &SchedRequest::default())
            .expect("cleaned graph schedules");
        post.verify(&r.ddg, &m).unwrap();
    }
}
