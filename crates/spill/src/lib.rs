//! Spill-code insertion for software-pipelined loops (paper Section 4).
//!
//! Spilling a lifetime stores the value to memory right after it is
//! produced and reloads it just before each use, so the value occupies a
//! register only for a few cycles around the accesses instead of its whole
//! producer-to-last-consumer span. Software pipelining makes this harder
//! than the acyclic case:
//!
//! * lifetimes cross iteration boundaries (the spill store and its reloads
//!   can be δ iterations apart);
//! * the schedule is dense, so spill operations usually force a
//!   *reschedule* (handled by the drivers in `regpipe-core`);
//! * naive rescheduling can move the reloads away from their consumers and
//!   *increase* pressure, or re-select the fresh spill lifetimes and loop
//!   forever.
//!
//! The paper's safeguards — implemented here — are to mark every
//! spill-created value **non-spillable** and to **bond** spill operations to
//! their producer/consumer so they are scheduled as one *complex operation*
//! (fixed edges in `regpipe-ddg`, honoured atomically by the schedulers).
//!
//! Selection heuristics (Section 4.1): [`SelectHeuristic::MaxLt`] picks the
//! longest lifetime; [`SelectHeuristic::MaxLtOverTraffic`] divides by the
//! number of memory operations the spill would add, trading fewer freed
//! registers for less bus traffic — the paper's preferred variant.
//!
//! Victim *ranking* as a whole is pluggable: [`SpillPolicyKind`] is a
//! registry of [`SpillPolicy`] implementations — the paper's heuristic
//! ranking (`paper`, the default), two next-use-distance policies in the
//! Braun & Hack tradition (`min-next-use`, `furthest-next-use`), and a
//! `round-robin` stress policy — with a documented determinism contract so
//! every policy reproduces byte-identical results across job counts,
//! transports and caches.
//!
//! Rewrite optimizations (Section 4.2): values produced by a load are
//! reloaded without a store (the datum is already in memory); values already
//! consumed by a store reuse that store; loop invariants are stored once
//! before the loop and only the reloads appear in the body.
//!
//! ```
//! use regpipe_ddg::{DdgBuilder, OpKind};
//! use regpipe_sched::Schedule;
//! use regpipe_regalloc::LifetimeAnalysis;
//! use regpipe_spill::{candidates, select, spill, SelectHeuristic};
//!
//! // Figure 2 loop at II=1: V1 (the load's value) is the longest lifetime.
//! let mut b = DdgBuilder::new("fig2");
//! let ld = b.add_op(OpKind::Load, "Ld");
//! let mul = b.add_op(OpKind::Mul, "*");
//! let add = b.add_op(OpKind::Add, "+");
//! let st = b.add_op(OpKind::Store, "St");
//! b.reg(ld, mul);
//! b.reg_dist(ld, add, 3);
//! b.reg(mul, add);
//! b.reg(add, st);
//! let mut g = b.build()?;
//! let schedule = Schedule::new(1, vec![0, 2, 4, 6]);
//! let analysis = LifetimeAnalysis::new(&g, &schedule);
//!
//! let cands = candidates(&g, &analysis);
//! let victim = select(&cands, SelectHeuristic::MaxLt).unwrap().clone();
//! let report = spill(&mut g, &victim);
//! assert_eq!(report.stores_added, 0, "producer is a load: no store needed");
//! assert_eq!(report.loads_added, 2, "one reload per use");
//! g.validate()?;
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod candidate;
mod dce;
mod policy;
mod rewrite;

pub use candidate::{candidates, select, select_batch, SelectHeuristic, SpillCandidate};
pub use dce::{eliminate_dead_ops, DceReport};
pub use policy::{RankContext, SpillPolicy, SpillPolicyKind};
pub use rewrite::{spill, spill_batch, SpillOptimization, SpillReport};
