//! The spill graph rewrite of Section 4.2.

use std::fmt;

use regpipe_ddg::{Ddg, Edge, EdgeKind, OpId, OpKind};

use crate::candidate::SpillCandidate;

/// Which redundancy optimization the rewrite applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillOptimization {
    /// Full transformation: new store after the producer, one reload per
    /// use, memory edges carrying the original distances.
    General,
    /// The producer is a load: the value already lives in memory, so no
    /// store is added and the reloads read the original location
    /// (Figure 5c).
    ProducerIsLoad,
    /// One of the consumers is a store of this value: it doubles as the
    /// spill store.
    ReuseStoreConsumer,
    /// A loop invariant: stored before the loop, reloaded at each use.
    Invariant,
}

impl fmt::Display for SpillOptimization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpillOptimization::General => "general",
            SpillOptimization::ProducerIsLoad => "producer-is-load",
            SpillOptimization::ReuseStoreConsumer => "reuse-store",
            SpillOptimization::Invariant => "invariant",
        };
        f.write_str(s)
    }
}

/// What a spill rewrite did to the graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpillReport {
    /// Stores added to the loop body.
    pub stores_added: u32,
    /// Loads added to the loop body.
    pub loads_added: u32,
    /// The operations created by the rewrite.
    pub new_ops: Vec<OpId>,
    /// Which special case fired.
    pub optimization: SpillOptimization,
}

impl SpillReport {
    /// Total memory operations added to the loop body.
    pub fn memory_ops_added(&self) -> u32 {
        self.stores_added + self.loads_added
    }
}

/// Spills `candidate` by rewriting the dependence graph in place.
///
/// The rewrite follows Section 4.2: the value's register edges are removed;
/// a store (unless redundant) is **bonded** to the producer; one reload per
/// use is added, bonded to its consumer, with a memory edge from the store
/// carrying the original dependence distance. All values created by the
/// rewrite are marked non-spillable (the Section 4.3 convergence rule).
///
/// Every reload is bonded to its consumer. When an operation has several
/// spilled operands, later reloads are bonded with a one-cycle *stagger*
/// each: bonding them all at the same offset would demand as many memory
/// units in one cycle as there are reloads, which a machine with fewer
/// units could never schedule at any II.
///
/// # Panics
///
/// Panics if the candidate is stale: the variant is no longer spillable or
/// the invariant is no longer live (candidates must be re-enumerated after
/// every rewrite).
pub fn spill(ddg: &mut Ddg, candidate: &SpillCandidate) -> SpillReport {
    match *candidate {
        SpillCandidate::Variant { producer, .. } => spill_variant(ddg, producer),
        SpillCandidate::Invariant { id, .. } => spill_invariant(ddg, id),
    }
}

/// Applies a whole round of victims in order, returning one report per
/// rewrite.
///
/// This is the drivers' single graph-mutation point — and therefore the
/// *invalidation point* for every cached per-loop analysis: any
/// `regpipe_sched::LoopAnalysis` built from `ddg` is stale once this
/// returns and must be rebuilt before the next schedule call. (The borrow
/// checker enforces this for contexts that borrow `ddg`; the rule matters
/// for code holding clones or derived data.)
///
/// # Panics
///
/// As for [`spill`]: panics on stale candidates. All victims of a round
/// must come from one [`candidates`](crate::candidates) enumeration of the
/// *current* graph, and a multi-victim batch is sound because selection
/// never returns two candidates for the same value.
pub fn spill_batch(ddg: &mut Ddg, victims: &[SpillCandidate]) -> Vec<SpillReport> {
    victims.iter().map(|victim| spill(ddg, victim)).collect()
}

fn spill_variant(ddg: &mut Ddg, producer: OpId) -> SpillReport {
    assert!(ddg.is_value_spillable(producer), "stale candidate: {producer} is not spillable");
    let producer_name = ddg.op(producer).name().to_string();
    let uses: Vec<(OpId, u32)> = ddg.reg_consumers(producer).collect();
    debug_assert!(!uses.is_empty(), "spillable implies live");

    // Decide the shape before mutating. Reusing a store consumer as the
    // spill store is only safe when it covers *every* use: bonding the
    // producer to a pre-existing store while other consumers reload would
    // let pre-existing memory orderings (consumer before that store) close
    // contradictory zero-distance constraint cycles through the bonds.
    let producer_is_load = ddg.op(producer).kind() == OpKind::Load;
    let reusable_store = if producer_is_load {
        None
    } else {
        uses.iter()
            .find(|&&(c, dist)| {
                dist == 0
                    && ddg.op(c).kind() == OpKind::Store
                    && !ddg.in_edges(c).any(Edge::is_fixed)
            })
            .map(|&(c, _)| c)
            .filter(|&st| uses.iter().all(|&(c, d)| c == st && d == 0))
    };

    // 1. Remove the spilled value's register edges.
    ddg.remove_edges_where(|e| e.kind() == EdgeKind::RegFlow && e.from() == producer);
    ddg.mark_value_non_spillable(producer);

    let mut report = SpillReport {
        stores_added: 0,
        loads_added: 0,
        new_ops: Vec::new(),
        optimization: SpillOptimization::General,
    };

    // 2. Establish the store feeding the reloads (if any).
    let mut skip = vec![false; uses.len()];
    let store: Option<OpId> = if producer_is_load {
        report.optimization = SpillOptimization::ProducerIsLoad;
        None
    } else if let Some(st) = reusable_store {
        // All uses are this store's zero-distance consumptions: bond it to
        // the producer and no reload is needed at all.
        report.optimization = SpillOptimization::ReuseStoreConsumer;
        ddg.add_edge(Edge::fixed(producer, st));
        skip.iter_mut().for_each(|s| *s = true);
        None
    } else {
        let st = ddg.add_op(OpKind::Store, format!("{producer_name}.s"));
        ddg.add_edge(Edge::fixed(producer, st));
        report.stores_added += 1;
        report.new_ops.push(st);
        Some(st)
    };

    // 3. One reload per remaining use.
    for (i, &(consumer, dist)) in uses.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let load = ddg.add_op(OpKind::Load, format!("{producer_name}.l{i}"));
        report.loads_added += 1;
        report.new_ops.push(load);
        match store {
            Some(st) => {
                // True memory flow: the reload sees the stored value.
                ddg.add_edge(Edge::new(st, load, EdgeKind::Mem, dist));
            }
            None => {
                // Producer is a load: the datum pre-exists in memory; keep
                // the graph connected with a zero-latency ordering edge.
                ddg.add_edge(Edge::new(producer, load, EdgeKind::Order, dist));
            }
        }
        attach_reload(ddg, load, consumer);
    }
    report
}

fn spill_invariant(ddg: &mut Ddg, id: regpipe_ddg::InvariantId) -> SpillReport {
    assert!(ddg.invariant(id).is_spillable(), "stale candidate: {id} is not spillable");
    let name = ddg.invariant(id).name().to_string();
    let uses: Vec<OpId> = ddg.invariant(id).uses().to_vec();
    let mut report = SpillReport {
        stores_added: 0,
        loads_added: 0,
        new_ops: Vec::new(),
        optimization: SpillOptimization::Invariant,
    };
    for (i, &consumer) in uses.iter().enumerate() {
        let load = ddg.add_op(OpKind::Load, format!("{name}.l{i}"));
        report.loads_added += 1;
        report.new_ops.push(load);
        attach_reload(ddg, load, consumer);
    }
    ddg.invariant_mut(id).mark_spilled();
    report
}

/// Bonds a reload to its consumer so the pair is scheduled as a complex
/// operation (Section 4.3). The k-th reload bonded to the same consumer is
/// staggered k cycles earlier so reloads never pile onto one memory-unit
/// slot. The reload's value is non-spillable.
fn attach_reload(ddg: &mut Ddg, load: OpId, consumer: OpId) {
    let existing_bonds = ddg.in_edges(consumer).filter(|e| e.is_fixed()).count() as u32;
    ddg.add_edge(Edge::fixed_staggered(load, consumer, existing_bonds));
    ddg.mark_value_non_spillable(load);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{candidates, select, SelectHeuristic};
    use regpipe_ddg::DdgBuilder;
    use regpipe_regalloc::LifetimeAnalysis;
    use regpipe_sched::Schedule;

    fn fig2() -> Ddg {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.invariant("a", &[mul]);
        b.build().unwrap()
    }

    fn candidate_for(g: &Ddg, producer: OpId) -> SpillCandidate {
        let s = Schedule::new(1, (0..g.num_ops() as i64).map(|i| 2 * i).collect());
        let analysis = LifetimeAnalysis::new(g, &s);
        candidates(g, &analysis)
            .into_iter()
            .find(
                |c| matches!(c, SpillCandidate::Variant { producer: p, .. } if *p == producer),
            )
            .expect("candidate exists")
    }

    #[test]
    fn producer_is_load_spares_the_store() {
        // Spilling V1 of the paper's example (Figure 5c).
        let mut g = fig2();
        let v1 = candidate_for(&g, OpId::new(0));
        let report = spill(&mut g, &v1);
        assert_eq!(report.optimization, SpillOptimization::ProducerIsLoad);
        assert_eq!(report.stores_added, 0);
        assert_eq!(report.loads_added, 2);
        g.validate().unwrap();
        // The original load no longer feeds registers.
        assert_eq!(g.reg_consumers(OpId::new(0)).count(), 0);
        // Both reloads are bonded to their consumers and non-spillable.
        for &l in &report.new_ops {
            assert!(g.is_value_marked_non_spillable(l));
            assert!(g.out_edges(l).any(Edge::is_fixed));
        }
        // The ordering edges keep the original distances.
        let dists: Vec<u32> = g
            .out_edges(OpId::new(0))
            .filter(|e| e.kind() == EdgeKind::Order)
            .map(Edge::distance)
            .collect();
        assert_eq!(dists.len(), 2);
        assert!(dists.contains(&0) && dists.contains(&3));
    }

    #[test]
    fn general_case_adds_store_and_loads() {
        // Spilling V2 (the multiply's value): store + one load.
        let mut g = fig2();
        let v2 = candidate_for(&g, OpId::new(1));
        let report = spill(&mut g, &v2);
        assert_eq!(report.optimization, SpillOptimization::General);
        assert_eq!(report.stores_added, 1);
        assert_eq!(report.loads_added, 1);
        g.validate().unwrap();
        // Producer bonded to the new store.
        let store = report.new_ops[0];
        assert_eq!(g.op(store).kind(), OpKind::Store);
        assert!(g.out_edges(OpId::new(1)).any(|e| e.is_fixed() && e.to() == store));
        // Memory edge store -> load with the original distance (0).
        let load = report.new_ops[1];
        assert!(g
            .out_edges(store)
            .any(|e| e.kind() == EdgeKind::Mem && e.to() == load && e.distance() == 0));
    }

    #[test]
    fn store_consumer_is_reused() {
        // Spilling V3 (the add feeding only the store).
        let mut g = fig2();
        let v3 = candidate_for(&g, OpId::new(2));
        let report = spill(&mut g, &v3);
        assert_eq!(report.optimization, SpillOptimization::ReuseStoreConsumer);
        assert_eq!(report.memory_ops_added(), 0);
        g.validate().unwrap();
        // The producer is now bonded to the pre-existing store.
        assert!(g.out_edges(OpId::new(2)).any(|e| e.is_fixed() && e.to() == OpId::new(3)));
    }

    #[test]
    fn invariant_spill_adds_loads_only() {
        let mut g = fig2();
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        let inv = candidates(&g, &analysis)
            .into_iter()
            .find(|c| matches!(c, SpillCandidate::Invariant { .. }))
            .unwrap();
        let report = spill(&mut g, &inv);
        assert_eq!(report.optimization, SpillOptimization::Invariant);
        assert_eq!(report.stores_added, 0);
        assert_eq!(report.loads_added, 1);
        assert_eq!(g.num_live_invariants(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn spilled_values_never_reselected() {
        let mut g = fig2();
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        let all = candidates(&g, &analysis);
        let n_before = all.len();
        let best = select(&all, SelectHeuristic::MaxLt).unwrap().clone();
        spill(&mut g, &best);
        // Re-analyse: the fresh spill lifetimes are non-spillable, so the
        // candidate pool can only shrink (deadlock avoidance, Section 4.3).
        let s2 = Schedule::new(1, (0..g.num_ops() as i64).collect());
        let analysis2 = LifetimeAnalysis::new(&g, &s2);
        let after = candidates(&g, &analysis2);
        assert!(after.len() < n_before);
    }

    #[test]
    fn exhaustive_spilling_terminates() {
        // Keep spilling until nothing is left; the non-spillable marking
        // guarantees termination.
        let mut g = fig2();
        let mut rounds = 0;
        loop {
            let s = Schedule::new(1, (0..g.num_ops() as i64).map(|i| 2 * i).collect());
            let analysis = LifetimeAnalysis::new(&g, &s);
            let cands = candidates(&g, &analysis);
            let Some(best) = select(&cands, SelectHeuristic::MaxLtOverTraffic) else {
                break;
            };
            let best = best.clone();
            spill(&mut g, &best);
            g.validate().unwrap();
            rounds += 1;
            assert!(rounds < 20, "spilling must terminate");
        }
        assert!(rounds >= 3, "the example has at least V1..V3 plus an invariant");
    }

    #[test]
    fn second_spilled_operand_gets_a_staggered_bond() {
        // c consumes two values; spilling both bonds both reloads, the
        // second one staggered a cycle earlier.
        let mut b = DdgBuilder::new("two-ops");
        let p1 = b.add_op(OpKind::Add, "p1");
        let p2 = b.add_op(OpKind::Mul, "p2");
        let c = b.add_op(OpKind::Add, "c");
        let sink = b.add_op(OpKind::Store, "sink");
        b.reg(p1, c);
        b.reg(p2, c);
        b.reg(c, sink);
        let mut g = b.build().unwrap();
        let v1 = candidate_for(&g, p1);
        spill(&mut g, &v1);
        let v2 = candidate_for(&g, p2);
        spill(&mut g, &v2);
        g.validate().unwrap();
        let staggers: Vec<u32> =
            g.in_edges(c).filter(|e| e.is_fixed()).map(Edge::stagger).collect();
        assert_eq!(staggers.len(), 2, "both reloads bonded");
        assert!(staggers.contains(&0) && staggers.contains(&1));
    }

    #[test]
    fn store_consumed_at_two_distances_takes_the_general_path() {
        // The store consumes the value both directly (d0) and loop-carried
        // (d1): bonding the pre-existing store while other uses reload can
        // close contradictory constraint cycles, so the rewrite falls back
        // to a fresh spill store with a reload per use.
        let mut b = DdgBuilder::new("mixed");
        let p = b.add_op(OpKind::Add, "p");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(p, st);
        b.reg_dist(p, st, 1);
        let mut g = b.build().unwrap();
        let v = candidate_for(&g, p);
        assert_eq!(v.cost(), 3, "1 fresh store + 2 reloads");
        let report = spill(&mut g, &v);
        assert_eq!(report.optimization, SpillOptimization::General);
        assert_eq!(report.stores_added, 1);
        assert_eq!(report.loads_added, 2);
        g.validate().expect("no zero-distance cycle");
    }

    #[test]
    fn consumer_ordered_before_the_store_cannot_wedge_the_bonds() {
        // Regression (found by proptest): another consumer of the value is
        // ordered *before* the candidate store by a memory edge. Reusing
        // the store would pin it to the producer while the reload chain
        // pushes the other consumer after it — an unsatisfiable constraint
        // cycle. The general path must be taken and stay schedulable.
        use regpipe_machine::MachineConfig;
        use regpipe_sched::{HrmsScheduler, SchedRequest, Scheduler};
        let mut b = DdgBuilder::new("wedge");
        let p = b.add_op(OpKind::Add, "p");
        let st_other = b.add_op(OpKind::Store, "st_other");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(p, st_other);
        b.reg(p, st);
        b.mem(st_other, st, 0); // st_other must precede st
        let mut g = b.build().unwrap();
        let v = candidate_for(&g, p);
        let report = spill(&mut g, &v);
        assert_eq!(report.optimization, SpillOptimization::General);
        g.validate().unwrap();
        let m = MachineConfig::p1l4();
        let s = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest::default())
            .expect("no contradictory bonds");
        s.verify(&g, &m).unwrap();
    }

    #[test]
    #[should_panic(expected = "stale candidate")]
    fn stale_candidate_panics() {
        let mut g = fig2();
        let v1 = candidate_for(&g, OpId::new(0));
        spill(&mut g, &v1);
        spill(&mut g, &v1); // already spilled
    }

    #[test]
    fn self_recurrence_spill_keeps_graph_valid() {
        // acc(i) = acc(i-1) + x : spilling the accumulator bounces it
        // through memory, stretching the recurrence (higher RecMII) but
        // keeping the graph well-formed.
        let mut b = DdgBuilder::new("acc");
        let acc = b.add_op(OpKind::Add, "acc");
        b.reg_dist(acc, acc, 1);
        let mut g = b.build().unwrap();
        let s = Schedule::new(4, vec![0]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        let cands = candidates(&g, &analysis);
        assert_eq!(cands.len(), 1);
        let c = cands[0].clone();
        let report = spill(&mut g, &c);
        assert_eq!(report.stores_added, 1);
        assert_eq!(report.loads_added, 1);
        g.validate().unwrap();
        // The recurrence now runs acc -> store -> load -> acc.
        assert_eq!(regpipe_ddg::algo::recurrences(&g).len(), 1);
    }
}
