//! Spill candidates and the selection heuristics of Section 4.1.

use std::fmt;

use regpipe_ddg::{Ddg, InvariantId, OpId, OpKind};
use regpipe_regalloc::LifetimeAnalysis;

/// A value eligible for spilling, with its heuristic inputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpillCandidate {
    /// A loop-variant value.
    Variant {
        /// The producing operation.
        producer: OpId,
        /// Lifetime length in cycles under the current schedule.
        lifetime: i64,
        /// Memory operations the spill would add per iteration.
        cost: u32,
    },
    /// A loop-invariant value.
    Invariant {
        /// The invariant's id.
        id: InvariantId,
        /// An invariant is live for a full II (paper Section 3.1).
        lifetime: i64,
        /// One reload per use (the pre-loop store is free).
        cost: u32,
    },
}

impl SpillCandidate {
    /// Lifetime length in cycles.
    pub fn lifetime(&self) -> i64 {
        match *self {
            SpillCandidate::Variant { lifetime, .. }
            | SpillCandidate::Invariant { lifetime, .. } => lifetime,
        }
    }

    /// Number of memory operations the spill adds to the loop body.
    pub fn cost(&self) -> u32 {
        match *self {
            SpillCandidate::Variant { cost, .. } | SpillCandidate::Invariant { cost, .. } => {
                cost
            }
        }
    }

    /// The `lifetime / cost` ratio used by [`SelectHeuristic::MaxLtOverTraffic`].
    ///
    /// A zero-cost spill (possible when the only consumer is a store) is
    /// infinitely profitable; it is ranked by lifetime among its peers.
    pub fn ratio(&self) -> f64 {
        if self.cost() == 0 {
            f64::INFINITY
        } else {
            self.lifetime() as f64 / f64::from(self.cost())
        }
    }
}

impl fmt::Display for SpillCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillCandidate::Variant { producer, lifetime, cost } => {
                write!(f, "variant {producer} (LT {lifetime}, cost {cost})")
            }
            SpillCandidate::Invariant { id, lifetime, cost } => {
                write!(f, "invariant {id} (LT {lifetime}, cost {cost})")
            }
        }
    }
}

/// The lifetime-selection heuristics of Section 4.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SelectHeuristic {
    /// `Max(LT)`: spill the longest lifetime, ignoring the cost of the
    /// added memory operations.
    MaxLt,
    /// `Max(LT/Traf)`: spill the lifetime with the best ratio of freed
    /// cycles to added memory traffic — the variant the paper found to
    /// produce better schedules *and* less traffic.
    MaxLtOverTraffic,
}

impl fmt::Display for SelectHeuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectHeuristic::MaxLt => write!(f, "Max(LT)"),
            SelectHeuristic::MaxLtOverTraffic => write!(f, "Max(LT/Traf)"),
        }
    }
}

/// Enumerates everything spillable under the current schedule, with the
/// lifetimes and costs the heuristics need.
///
/// Excluded: values the paper's convergence rule marks non-spillable,
/// bonded values (parts of complex operations), dead values, and invariants
/// already spilled.
pub fn candidates(ddg: &Ddg, analysis: &LifetimeAnalysis) -> Vec<SpillCandidate> {
    let mut out = Vec::new();
    for lt in analysis.lifetimes() {
        let producer = lt.producer();
        if !ddg.is_value_spillable(producer) {
            continue;
        }
        let uses = ddg.reg_consumers(producer).count() as u32;
        let cost = spill_cost(ddg, producer, uses);
        out.push(SpillCandidate::Variant { producer, lifetime: lt.length(), cost });
    }
    for (id, inv) in ddg.invariants() {
        if inv.is_spillable() {
            out.push(SpillCandidate::Invariant {
                id,
                lifetime: i64::from(analysis.ii()),
                cost: inv.uses().len() as u32,
            });
        }
    }
    out
}

/// The number of memory operations added by spilling `producer`'s value,
/// accounting for the Section 4.2 redundancy optimizations.
fn spill_cost(ddg: &Ddg, producer: OpId, uses: u32) -> u32 {
    if ddg.op(producer).kind() == OpKind::Load {
        // Reload from the original location: no store.
        return uses;
    }
    // The reuse-store optimization applies only when one store's
    // zero-distance consumptions cover every use (see `spill` for why);
    // it then costs nothing. Everything else takes the general path.
    let fully_covered_by_store = ddg
        .reg_consumers(producer)
        .find(|&(c, dist)| {
            dist == 0
                && ddg.op(c).kind() == OpKind::Store
                && !ddg.in_edges(c).any(regpipe_ddg::Edge::is_fixed)
        })
        .map(|(st, _)| ddg.reg_consumers(producer).all(|(c, d)| c == st && d == 0))
        .unwrap_or(false);
    if fully_covered_by_store {
        0
    } else {
        uses + 1
    }
}

/// Picks the best candidate under `heuristic` (deterministic tie-breaks:
/// longer lifetime, then lower cost, then identity order).
pub fn select(
    candidates: &[SpillCandidate],
    heuristic: SelectHeuristic,
) -> Option<&SpillCandidate> {
    candidates.iter().max_by(|a, b| {
        rank(a, heuristic)
            .total_cmp(&rank(b, heuristic))
            .then(a.lifetime().cmp(&b.lifetime()))
            .then(b.cost().cmp(&a.cost()))
            .then(key(b).cmp(&key(a)))
    })
}

/// Greedy batch selection for the *multiple lifetimes at once* acceleration
/// (Section 4.5): keeps taking the best remaining candidate while the
/// optimistic `MaxLive`-based estimate stays at or above the register
/// budget.
///
/// The estimate subtracts each selected lifetime's concurrent-instance count
/// from `MaxLive`; it is deliberately optimistic (the added spill code
/// introduces new short lifetimes that are ignored), which "ensures that
/// spill code is not added in excess".
pub fn select_batch(
    candidates: &[SpillCandidate],
    heuristic: SelectHeuristic,
    max_live: u32,
    available: u32,
    ii: u32,
) -> Vec<&SpillCandidate> {
    let mut pool: Vec<&SpillCandidate> = candidates.iter().collect();
    pool.sort_by(|a, b| {
        rank(b, heuristic)
            .total_cmp(&rank(a, heuristic))
            .then(b.lifetime().cmp(&a.lifetime()))
            .then(a.cost().cmp(&b.cost()))
            .then(key(a).cmp(&key(b)))
    });
    let mut selected = Vec::new();
    let mut estimate = i64::from(max_live);
    for cand in pool {
        if estimate < i64::from(available) {
            break;
        }
        let ii = i64::from(ii.max(1));
        let freed = (cand.lifetime() + ii - 1).div_euclid(ii).max(1);
        estimate -= freed;
        selected.push(cand);
    }
    selected
}

pub(crate) fn rank(c: &SpillCandidate, heuristic: SelectHeuristic) -> f64 {
    match heuristic {
        SelectHeuristic::MaxLt => c.lifetime() as f64,
        SelectHeuristic::MaxLtOverTraffic => c.ratio(),
    }
}

/// Stable identity for deterministic tie-breaking.
pub(crate) fn key(c: &SpillCandidate) -> (u8, usize) {
    match *c {
        SpillCandidate::Variant { producer, .. } => (0, producer.index()),
        SpillCandidate::Invariant { id, .. } => (1, id.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::DdgBuilder;
    use regpipe_sched::Schedule;

    /// Figure 2 with its hand schedule.
    fn fig2() -> (Ddg, LifetimeAnalysis) {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        b.invariant("a", &[mul]);
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        let analysis = LifetimeAnalysis::new(&g, &s);
        (g, analysis)
    }

    #[test]
    fn enumerates_variants_and_invariants() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        // V1, V2, V3 and the invariant `a`.
        assert_eq!(cands.len(), 4);
        assert!(cands.iter().any(|c| matches!(c, SpillCandidate::Invariant { .. })));
    }

    #[test]
    fn costs_reflect_optimizations() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        let by_producer = |idx: usize| {
            cands
                .iter()
                .find(|c| matches!(c, SpillCandidate::Variant { producer, .. } if producer.index() == idx))
                .unwrap()
        };
        // V1: producer is a load, two uses -> 2 loads, no store.
        assert_eq!(by_producer(0).cost(), 2);
        // V2 (the multiply): one use, no store consumer -> 1 store + 1 load.
        assert_eq!(by_producer(1).cost(), 2);
        // V3 (the add): its only consumer is the store -> reuse it, cost 0.
        assert_eq!(by_producer(2).cost(), 0);
    }

    #[test]
    fn max_lt_picks_v1() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        let best = select(&cands, SelectHeuristic::MaxLt).unwrap();
        assert!(
            matches!(best, SpillCandidate::Variant { producer, .. } if producer.index() == 0),
            "V1 has the longest lifetime (7)"
        );
    }

    #[test]
    fn ratio_prefers_cheap_spills() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        let best = select(&cands, SelectHeuristic::MaxLtOverTraffic).unwrap();
        // V3 costs nothing (its consumer is the store): infinite ratio.
        assert!(
            matches!(best, SpillCandidate::Variant { producer, .. } if producer.index() == 2)
        );
    }

    #[test]
    fn non_spillable_values_are_skipped() {
        let (mut g, analysis) = fig2();
        g.mark_value_non_spillable(OpId::new(0));
        let cands = candidates(&g, &analysis);
        assert!(cands.iter().all(
            |c| !matches!(c, SpillCandidate::Variant { producer, .. } if producer.index() == 0)
        ));
    }

    #[test]
    fn batch_selection_stops_at_budget() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        // MaxLive (with invariant) is 12; budget 9 -> estimate must drop
        // below 9: V1 alone frees 7.
        let batch = select_batch(&cands, SelectHeuristic::MaxLt, analysis.max_live(), 9, 1);
        assert_eq!(batch.len(), 1);
        // Budget 2 needs more victims.
        let batch = select_batch(&cands, SelectHeuristic::MaxLt, analysis.max_live(), 2, 1);
        assert!(batch.len() >= 3, "got {}", batch.len());
    }

    #[test]
    fn batch_selection_empty_when_under_budget() {
        let (g, analysis) = fig2();
        let cands = candidates(&g, &analysis);
        let batch = select_batch(&cands, SelectHeuristic::MaxLt, analysis.max_live(), 32, 1);
        assert!(batch.is_empty());
    }

    #[test]
    fn select_on_empty_is_none() {
        assert!(select(&[], SelectHeuristic::MaxLt).is_none());
    }
}
