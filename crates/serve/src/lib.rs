//! The compile daemon: `regpipe serve` and its load/benchmark drivers.
//!
//! Batch compilation (`regpipe suite`, `regpipe check`) pays full
//! process-startup and analysis cost per invocation. This crate keeps a
//! compiler resident instead: a [`Server`] answers JSON-lines requests —
//! one object per line, one response line per request — over stdin or a
//! unix socket ([`serve_stdin`] / [`serve_socket`]), backed by a sharded,
//! bounded-memory, content-addressed LRU result cache
//! ([`cache::ShardedCache`]).
//!
//! The cache is keyed by *what is being compiled* — `(ddg content hash,
//! canonical machine identity, scheduler, strategy, budget)` — and stores
//! fully rendered response payloads, so a hit returns byte-for-byte what
//! a miss would compute. That makes the daemon's observable behaviour
//! independent of cache state, client concurrency, and transport; the
//! test suite and CI hold it to exactly that standard.
//!
//! The daemon is *crash-only*: engine panics are caught per request
//! (`error.kind = "internal"`, the daemon keeps serving), `--deadline-ms`
//! bounds each compile cooperatively, and `--cache-dir` backs the cache
//! with a corruption-tolerant append log ([`store`]) that recovers from
//! any torn/flipped/truncated suffix by dropping only the damaged
//! entries. A seeded fault-injection layer ([`fault`]) and the
//! `regpipe chaos` harness ([`chaos`]) prove the whole cycle —
//! inject, crash, restart, recover — byte-for-byte.
//!
//! * [`Server::handle_line`] — the transport-free protocol core.
//! * [`replay`] — the `regpipe replay` load-driver: deterministic request
//!   streams from the generator/suite/a file, driven in-process or over
//!   the socket with client-side concurrency.
//! * [`bench`](mod@bench) — `regpipe bench-serve`, emitting `BENCH_serve.json`
//!   (wall-clock fields behind `REGPIPE_BENCH_TIMING=1`).
//!
//! `docs/serve.md` specifies the wire protocol; `docs/benchmarks.md`
//! covers the report discipline.

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
#[cfg(unix)]
pub mod chaos;
pub mod daemon;
pub mod fault;
pub mod replay;
mod server;
pub mod store;

pub use bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport, ServeTiming, TIMING_ENV};
pub use cache::{CacheKey, ShardStats, ShardedCache};
#[cfg(unix)]
pub use chaos::{run_chaos, write_responses, ChaosConfig, ChaosReport};
#[cfg(unix)]
pub use daemon::{claim_socket, serve_socket};
pub use daemon::{read_request_line, serve_connection, serve_stdin, ReadLine};
pub use fault::{FaultKind, FaultPlan, FAULT_ENV};
pub use replay::{
    base_requests, replay_in_process, requests_from_loops, IdPolicy, ReplayConfig,
    ReplayOutcome, ReplaySource, RetryPolicy,
};
#[cfg(unix)]
pub use replay::{replay_socket, request_once};
pub use server::{
    attach_id, machine_key, ConnectionGuard, ErrorKind, Response, ServeOptions, Server,
};
pub use store::{RecoveredEntry, Store, StoreCounters};
