//! The request/response core of the daemon: one JSON line in, one JSON
//! line out, cache-first, crash-only.
//!
//! Every failure a request can provoke is turned into a structured
//! `{"ok":false,"error":{"kind":...,"message":...}}` response on the
//! same connection: malformed lines ([`ErrorKind::Protocol`]), oversized
//! lines ([`ErrorKind::Oversized`]), bad compile parameters
//! ([`ErrorKind::Invalid`]), blown deadlines ([`ErrorKind::Deadline`]),
//! and engine panics ([`ErrorKind::Internal`] — caught per-request, the
//! daemon keeps serving). With `cache_dir` set, the in-memory LRU is
//! backed by the corruption-tolerant [`crate::store`] append log.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Duration;

use regpipe_core::{compile, CompileOptions, SpillPolicyKind, Strategy};
use regpipe_ddg::{content_hash, textfmt, Ddg, OpKind};
use regpipe_exec::json::{parse as parse_json, Value};
use regpipe_exec::{parse_strategy, strategy_slug};
use regpipe_machine::{FuClass, MachineConfig};
use regpipe_sched::{deadline, SchedulerKind};

use crate::cache::{CacheKey, ShardedCache};
use crate::fault;
use crate::store::Store;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Whether the result cache is consulted at all. Responses are
    /// byte-identical either way — the cache only changes how often the
    /// engine runs (the determinism gate compares exactly this).
    pub cache: bool,
    /// Total cache budget in approximate resident bytes, split evenly
    /// across shards.
    pub capacity_bytes: usize,
    /// Number of independent cache shards.
    pub shards: usize,
    /// Hard bound on one request line; longer lines are answered with a
    /// structured error and never buffered whole.
    pub max_request_bytes: usize,
    /// Directory for the persistent cache store (`--cache-dir`). `None`
    /// keeps the cache memory-only; `Some` makes every insert durable
    /// and rewarms the cache from disk at startup. Requires `cache`.
    pub cache_dir: Option<PathBuf>,
    /// Cooperative per-compile deadline in milliseconds
    /// (`--deadline-ms`). A compile that exceeds it is cancelled at the
    /// next scheduler check-point and answered with a `deadline` error.
    pub deadline_ms: Option<u64>,
    /// Appends to the active log segment before a compaction snapshot is
    /// written (`--compact-appends`).
    pub compact_appends: u64,
    /// How long `shutdown` waits for other in-flight connections to
    /// finish before closing them forcibly (`--drain-ms`).
    pub drain_ms: u64,
    /// Spill policy for compile requests that omit the `spill_policy`
    /// field (`--spill-policy`). Cache keys always carry the *resolved*
    /// policy, so daemons with different defaults can share a cache dir
    /// without aliasing entries.
    pub default_spill_policy: SpillPolicyKind,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache: true,
            capacity_bytes: 64 << 20,
            shards: 8,
            max_request_bytes: 1 << 20,
            cache_dir: None,
            deadline_ms: None,
            compact_appends: 8192,
            drain_ms: 2000,
            default_spill_policy: SpillPolicyKind::default(),
        }
    }
}

/// The failure taxonomy carried in every `{"ok":false}` response's
/// `error.kind` field. Clients branch on the kind; the `message` is for
/// humans and makes no stability promise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The line was not a usable request: invalid JSON, missing or
    /// non-string `op`, unknown `op`.
    Protocol,
    /// The line exceeded the configured request byte bound.
    Oversized,
    /// A well-formed `compile` request with bad parameters (unparsable
    /// ddg, unknown machine/scheduler/strategy, bad budget).
    Invalid,
    /// The compile exceeded the configured `--deadline-ms` budget and
    /// was cancelled cooperatively.
    Deadline,
    /// The compile panicked; the panic was caught and the daemon keeps
    /// serving. Never expected — always worth a bug report.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of the kind.
    pub fn slug(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Internal => "internal",
        }
    }
}

/// One answered request: the response line (no trailing newline) and
/// whether the daemon should stop accepting work.
#[derive(Clone, Debug)]
pub struct Response {
    /// The JSON response line.
    pub line: String,
    /// `true` exactly for an acknowledged `shutdown` request.
    pub shutdown: bool,
}

impl Response {
    fn reply(line: String) -> Response {
        Response { line, shutdown: false }
    }
}

/// The compile daemon's state: options, the sharded result cache, the
/// optional persistent store, and request counters. All methods take
/// `&self`; one `Server` is shared by every connection thread.
pub struct Server {
    options: ServeOptions,
    cache: ShardedCache,
    store: Option<Mutex<Store>>,
    compile_requests: AtomicU64,
    protocol_errors: AtomicU64,
    panics_caught: AtomicU64,
    deadline_exceeded: AtomicU64,
    active_connections: AtomicU64,
    shutdown: AtomicBool,
}

/// RAII registration of one live connection (see
/// [`Server::track_connection`]); dropping it deregisters.
pub struct ConnectionGuard<'a> {
    server: &'a Server,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.server.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Silences the panic-hook report for cooperative deadline unwinds (they
/// are control flow, not failures) while delegating every real panic to
/// the previous hook. Installed once per process, only when a deadline
/// is actually configured.
fn install_deadline_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !deadline::is_deadline_panic(info.payload()) {
                prev(info);
            }
        }));
    });
}

/// Best-effort human text from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "(non-string panic payload)"
    }
}

impl Server {
    /// A fresh server with the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` name a persistent `cache_dir` that cannot be
    /// opened — use [`Server::open`] to handle that case; memory-only
    /// construction cannot fail.
    pub fn new(options: ServeOptions) -> Server {
        Server::open(options).expect("memory-only server construction cannot fail")
    }

    /// Opens a server, recovering the persistent cache when `cache_dir`
    /// is set. Corrupt store *content* never fails this — damage is
    /// dropped, counted, and (when anything was dropped) immediately
    /// scrubbed from disk by a compaction.
    ///
    /// # Errors
    ///
    /// `cache_dir` together with `cache: false`, or an environmental
    /// store failure (directory not creatable/writable).
    pub fn open(options: ServeOptions) -> Result<Server, String> {
        if options.cache_dir.is_some() && !options.cache {
            return Err("a persistent cache dir requires the cache (drop --no-cache)".into());
        }
        let cache = ShardedCache::new(options.shards.max(1), options.capacity_bytes);
        let store = match &options.cache_dir {
            None => None,
            Some(dir) => {
                let (mut store, recovered) = Store::open(dir)
                    .map_err(|e| format!("cache dir {}: {e}", dir.display()))?;
                // Replay order = append order, so recency survives restarts.
                for entry in recovered {
                    cache.insert(entry.key, entry.payload);
                }
                if store.counters().dropped_corrupt_entries > 0 {
                    // Self-healing: rewrite the surviving entries so the
                    // damaged bytes never have to be skipped again.
                    store.compact(&cache.dump()).map_err(|e| {
                        format!("cache dir {}: compaction failed: {e}", dir.display())
                    })?;
                }
                Some(Mutex::new(store))
            }
        };
        if options.deadline_ms.is_some() {
            install_deadline_panic_hook();
        }
        Ok(Server {
            options,
            cache,
            store,
            compile_requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The configured per-request byte bound.
    pub fn max_request_bytes(&self) -> usize {
        self.options.max_request_bytes
    }

    /// The configured drain budget for `shutdown`.
    pub fn drain_ms(&self) -> u64 {
        self.options.drain_ms
    }

    /// Whether a `shutdown` request has been acknowledged.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Registers a live connection for the drain accounting; the guard
    /// deregisters on drop.
    pub fn track_connection(&self) -> ConnectionGuard<'_> {
        self.active_connections.fetch_add(1, Ordering::SeqCst);
        ConnectionGuard { server: self }
    }

    /// Connections currently registered via [`Server::track_connection`].
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// Summed cache counters (the `totals` object of a `stats` response).
    pub fn cache_totals(&self) -> crate::cache::ShardStats {
        self.cache.totals()
    }

    /// Answers one request line. Never panics on malformed input: every
    /// protocol problem becomes a structured `{"ok":false,...}` response.
    pub fn handle_line(&self, line: &str) -> Response {
        if line.len() > self.options.max_request_bytes {
            return Response::reply(self.oversized_response(line.len()));
        }
        let doc = match parse_json(line) {
            Ok(doc) => doc,
            Err(e) => {
                return Response::reply(self.error_response(
                    None,
                    ErrorKind::Protocol,
                    &format!("invalid JSON: {e}"),
                ))
            }
        };
        let id = doc.get("id").and_then(Value::as_i64);
        let op = match doc.get("op").and_then(Value::as_str) {
            Some(op) => op,
            None => {
                return Response::reply(self.error_response(
                    id,
                    ErrorKind::Protocol,
                    "missing or non-string 'op' field",
                ))
            }
        };
        match op {
            "compile" => Response::reply(self.handle_compile(id, &doc)),
            "stats" => Response::reply(attach_id(id, &self.stats_payload())),
            "ping" => Response::reply(attach_id(id, "{\"ok\":true,\"op\":\"pong\"}")),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.sync_store();
                // The requesting connection is not "drained" — it gets
                // this very response; everyone else is.
                let drained = self.active_connections().saturating_sub(1);
                Response {
                    line: attach_id(
                        id,
                        &format!(
                            "{{\"ok\":true,\"op\":\"shutdown\",\"drained_connections\":{drained}}}"
                        ),
                    ),
                    shutdown: true,
                }
            }
            other => Response::reply(self.error_response(
                id,
                ErrorKind::Protocol,
                &format!("unknown op '{other}' (compile|stats|ping|shutdown)"),
            )),
        }
    }

    /// The structured error for a request line that exceeded the byte
    /// bound (used both by [`Server::handle_line`] and by the daemon's
    /// bounded reader, which discards such lines without buffering them).
    pub fn oversized_response(&self, got: usize) -> String {
        self.error_response(
            None,
            ErrorKind::Oversized,
            &format!(
                "request of {got} bytes exceeds the {}-byte limit",
                self.options.max_request_bytes
            ),
        )
    }

    fn error_response(&self, id: Option<i64>, kind: ErrorKind, message: &str) -> String {
        // Historical name; counts every structured error response.
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let mut pairs = Vec::new();
        if let Some(id) = id {
            pairs.push(("id".to_string(), Value::Int(id)));
        }
        pairs.push(("ok".to_string(), Value::Bool(false)));
        pairs.push((
            "error".to_string(),
            Value::Object(vec![
                ("kind".to_string(), Value::Str(kind.slug().to_string())),
                ("message".to_string(), Value::Str(message.to_string())),
            ]),
        ));
        Value::Object(pairs).render()
    }

    fn handle_compile(&self, id: Option<i64>, doc: &Value) -> String {
        let params = match CompileParams::from_request(doc, self.options.default_spill_policy) {
            Ok(p) => p,
            Err(e) => return self.error_response(id, ErrorKind::Invalid, &e),
        };
        self.compile_requests.fetch_add(1, Ordering::Relaxed);
        // The fault layer counts *requests* (not misses), so an injected
        // panic fires at the same request index whether the cache is cold
        // or rewarmed — chaos cycles stay deterministic across restarts.
        let inject_panic = fault::global().is_some_and(|f| f.on_compile());
        let deadline_budget = self.options.deadline_ms.map(Duration::from_millis);
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: compile panic");
            }
            let _guard = deadline_budget.map(deadline::arm);
            self.cached_payload(&params)
        }));
        match result {
            Ok(payload) => attach_id(id, &payload),
            Err(panic) if deadline::is_deadline_panic(panic.as_ref()) => {
                // Cancelled cooperatively; nothing was cached, so a retry
                // with a larger budget starts clean.
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                self.error_response(
                    id,
                    ErrorKind::Deadline,
                    &format!(
                        "compile exceeded the {} ms deadline",
                        self.options.deadline_ms.unwrap_or(0)
                    ),
                )
            }
            Err(panic) => {
                // Panic isolation: the unwind is contained to this
                // request; the daemon keeps serving.
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                self.error_response(
                    id,
                    ErrorKind::Internal,
                    &format!("compile panicked: {}", panic_message(panic.as_ref())),
                )
            }
        }
    }

    /// Cache-first payload lookup; misses compile outside any shard lock
    /// (a concurrent miss on the same key computes the identical payload)
    /// and are written through to the persistent store when one is open.
    fn cached_payload(&self, params: &CompileParams) -> String {
        if !self.options.cache {
            return params.compute_payload();
        }
        let key = params.cache_key();
        if let Some(hit) = self.cache.get(&key) {
            return hit;
        }
        let computed = params.compute_payload();
        self.cache.insert(key.clone(), computed.clone());
        self.persist(&key, &computed);
        computed
    }

    /// Writes one computed entry through to the store and compacts when
    /// the active segment has absorbed enough appends. Store I/O errors
    /// never fail the request — the entry stays served from memory.
    fn persist(&self, key: &CacheKey, payload: &str) {
        let Some(store) = &self.store else { return };
        let mut store = store.lock().expect("store poisoned");
        if let Err(e) = store.append(key, payload) {
            eprintln!("regpipe serve: cache store append failed: {e}");
            return;
        }
        if store.active_appends() >= self.options.compact_appends {
            let live = self.cache.dump();
            if let Err(e) = store.compact(&live) {
                eprintln!("regpipe serve: cache store compaction failed: {e}");
            }
        }
    }

    /// Fsyncs the persistent log (shutdown durability); no-op without a
    /// store.
    fn sync_store(&self) {
        if let Some(store) = &self.store {
            if let Err(e) = store.lock().expect("store poisoned").sync() {
                eprintln!("regpipe serve: cache store fsync failed: {e}");
            }
        }
    }

    /// The `stats` response payload: per-shard and total cache counters,
    /// request counts, robustness counters, and (when persistent) the
    /// store's durability counters. When the cache is enabled,
    /// `hits + misses == compile_requests` holds at any quiescent point.
    pub fn stats_payload(&self) -> String {
        let shards = self.cache.shard_stats();
        let totals = self.cache.totals();
        let store_counters =
            self.store.as_ref().map(|s| s.lock().expect("store poisoned").counters());
        let shard_values = shards
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("hits".to_string(), Value::uint(s.hits)),
                    ("misses".to_string(), Value::uint(s.misses)),
                    ("evictions".to_string(), Value::uint(s.evictions)),
                    ("entries".to_string(), Value::uint(s.entries)),
                    ("bytes".to_string(), Value::uint(s.bytes)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("op".to_string(), Value::Str("stats".into())),
            ("cache_enabled".to_string(), Value::Bool(self.options.cache)),
            ("capacity_bytes".to_string(), Value::uint(self.options.capacity_bytes as u64)),
            (
                "max_request_bytes".to_string(),
                Value::uint(self.options.max_request_bytes as u64),
            ),
            (
                "compile_requests".to_string(),
                Value::uint(self.compile_requests.load(Ordering::Relaxed)),
            ),
            (
                "protocol_errors".to_string(),
                Value::uint(self.protocol_errors.load(Ordering::Relaxed)),
            ),
            (
                "panics_caught".to_string(),
                Value::uint(self.panics_caught.load(Ordering::Relaxed)),
            ),
            (
                "deadline_exceeded".to_string(),
                Value::uint(self.deadline_exceeded.load(Ordering::Relaxed)),
            ),
            ("persistent".to_string(), Value::Bool(store_counters.is_some())),
            (
                "store".to_string(),
                match store_counters {
                    None => Value::Null,
                    Some(c) => Value::Object(vec![
                        ("recovered_entries".to_string(), Value::uint(c.recovered_entries)),
                        (
                            "dropped_corrupt_entries".to_string(),
                            Value::uint(c.dropped_corrupt_entries),
                        ),
                        ("log_compactions".to_string(), Value::uint(c.log_compactions)),
                    ]),
                },
            ),
            (
                "totals".to_string(),
                Value::Object(vec![
                    ("hits".to_string(), Value::uint(totals.hits)),
                    ("misses".to_string(), Value::uint(totals.misses)),
                    ("evictions".to_string(), Value::uint(totals.evictions)),
                    ("entries".to_string(), Value::uint(totals.entries)),
                    ("bytes".to_string(), Value::uint(totals.bytes)),
                ]),
            ),
            ("shards".to_string(), Value::Array(shard_values)),
        ])
        .render()
    }
}

/// Splices an `id` field into an already rendered response payload (a
/// non-empty JSON object). Cached payloads are stored id-free, so a hit
/// and a miss produce the same bytes for the same request id.
pub fn attach_id(id: Option<i64>, payload: &str) -> String {
    debug_assert!(payload.starts_with('{') && payload.len() > 2);
    match id {
        None => payload.to_string(),
        Some(id) => format!("{{\"id\":{id},{}", &payload[1..]),
    }
}

/// The canonical machine identity string used in cache keys: unit counts,
/// latencies, and pipelining flags — the fields that determine scheduling
/// behavior — but *not* the display name, so `p2l4` and an identically
/// configured custom machine share cache entries.
pub fn machine_key(machine: &MachineConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(if machine.is_uniform() { "uniform" } else { "classed" });
    out.push_str(";u=");
    for class in FuClass::ALL {
        let _ = write!(out, "{},", machine.units(class));
    }
    out.push_str(";l=");
    for kind in OpKind::ALL {
        let _ = write!(out, "{},", machine.latency(kind));
    }
    out.push_str(";p=");
    for class in FuClass::ALL {
        out.push(if machine.is_pipelined(class) { '1' } else { '0' });
    }
    out
}

/// A fully validated compile request.
struct CompileParams {
    ddg: Ddg,
    ddg_hash: u64,
    machine: MachineConfig,
    scheduler: SchedulerKind,
    strategy: Strategy,
    spill_policy: SpillPolicyKind,
    budget: u32,
}

impl CompileParams {
    fn from_request(
        doc: &Value,
        default_spill_policy: SpillPolicyKind,
    ) -> Result<CompileParams, String> {
        let text = doc
            .get("ddg")
            .and_then(Value::as_str)
            .ok_or("compile: missing string 'ddg' field")?;
        let ddg = textfmt::parse(text).map_err(|e| format!("compile: bad ddg: {e}"))?;
        let machine = match doc.get("machine") {
            None => MachineConfig::p2l4(),
            Some(v) => {
                let spec = v.as_str().ok_or("compile: 'machine' must be a string")?;
                MachineConfig::parse_spec(spec).map_err(|e| format!("compile: {e}"))?
            }
        };
        let scheduler = match doc.get("scheduler") {
            None => SchedulerKind::default(),
            Some(v) => {
                let slug = v.as_str().ok_or("compile: 'scheduler' must be a string")?;
                SchedulerKind::parse(slug).map_err(|e| format!("compile: {e}"))?
            }
        };
        let strategy = match doc.get("strategy") {
            None => Strategy::BestOfAll,
            Some(v) => {
                let slug = v.as_str().ok_or("compile: 'strategy' must be a string")?;
                parse_strategy(slug).map_err(|e| format!("compile: {e}"))?
            }
        };
        let spill_policy = match doc.get("spill_policy") {
            None => default_spill_policy,
            Some(v) => {
                let slug = v.as_str().ok_or("compile: 'spill_policy' must be a string")?;
                SpillPolicyKind::parse(slug).map_err(|e| format!("compile: {e}"))?
            }
        };
        let budget = match doc.get("budget") {
            None => 32,
            Some(v) => {
                u32::try_from(v.as_i64().ok_or("compile: 'budget' must be a positive integer")?)
                    .ok()
                    .filter(|&b| b > 0)
                    .ok_or("compile: 'budget' must be a positive integer")?
            }
        };
        let ddg_hash = content_hash(&ddg);
        Ok(CompileParams { ddg, ddg_hash, machine, scheduler, strategy, spill_policy, budget })
    }

    fn cache_key(&self) -> CacheKey {
        CacheKey {
            ddg_hash: self.ddg_hash,
            machine: machine_key(&self.machine),
            scheduler: self.scheduler.slug().to_string(),
            strategy: strategy_slug(self.strategy).to_string(),
            spill_policy: self.spill_policy.slug().to_string(),
            budget: self.budget,
        }
    }

    /// The id-free response payload: a pure, deterministic function of the
    /// request — the property the cache-on/off byte-identity gate rests on.
    fn compute_payload(&self) -> String {
        let mut options = CompileOptions {
            strategy: self.strategy,
            scheduler: self.scheduler,
            ..CompileOptions::default()
        };
        options.spill.policy = self.spill_policy;
        let mut pairs = vec![
            ("ok".to_string(), Value::Bool(true)),
            ("ddg_hash".to_string(), Value::Str(format!("{:016x}", self.ddg_hash))),
        ];
        match compile(&self.ddg, &self.machine, self.budget, &options) {
            Ok(c) => {
                pairs.push(("status".to_string(), Value::Str("fitted".into())));
                pairs.push(("ii".to_string(), Value::uint(u64::from(c.ii()))));
                pairs.push(("regs".to_string(), Value::uint(u64::from(c.registers_used()))));
                pairs.push(("spilled".to_string(), Value::uint(u64::from(c.spilled()))));
                pairs
                    .push(("reschedules".to_string(), Value::uint(u64::from(c.reschedules()))));
                pairs.push(("memory_ops".to_string(), Value::uint(u64::from(c.memory_ops()))));
                pairs.push((
                    "strategy_used".to_string(),
                    Value::Str(strategy_slug(c.strategy_used()).into()),
                ));
            }
            Err(e) => {
                pairs.push(("status".to_string(), Value::Str("failed".into())));
                pairs.push(("error".to_string(), Value::Str(e.to_string())));
            }
        }
        Value::Object(pairs).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(ddg: &str, budget: u32) -> String {
        Value::Object(vec![
            ("id".to_string(), Value::Int(1)),
            ("op".to_string(), Value::Str("compile".into())),
            ("ddg".to_string(), Value::Str(ddg.into())),
            ("budget".to_string(), Value::uint(u64::from(budget))),
        ])
        .render()
    }

    const LOOP: &str = "loop t\nop ld load\nop a add\nop st store\n\
                        edge ld -> a reg 0\nedge a -> st reg 0\n";

    #[test]
    fn compile_request_round_trips_and_caches() {
        let server = Server::new(ServeOptions::default());
        let first = server.handle_line(&request(LOOP, 32));
        let second = server.handle_line(&request(LOOP, 32));
        assert_eq!(first.line, second.line);
        assert!(first.line.contains("\"status\":\"fitted\""), "{}", first.line);
        assert!(first.line.starts_with("{\"id\":1,\"ok\":true,"));
        let doc = parse_json(&first.line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_i64(), Some(1));
        assert!(doc.get("ii").unwrap().as_i64().unwrap() >= 1);
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(1));
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(1));
        assert_eq!(stats.get("compile_requests").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn cache_on_and_off_answer_identically() {
        let on = Server::new(ServeOptions::default());
        let off = Server::new(ServeOptions { cache: false, ..ServeOptions::default() });
        for budget in [64, 32, 4] {
            let a = on.handle_line(&request(LOOP, budget));
            let b = off.handle_line(&request(LOOP, budget));
            assert_eq!(a.line, b.line);
        }
        // The disabled cache never counted anything.
        let stats = parse_json(&off.stats_payload()).unwrap();
        assert_eq!(stats.get("cache_enabled").unwrap().as_bool(), Some(false));
        assert_eq!(stats.get("totals").unwrap().get("misses").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let server = Server::new(ServeOptions::default());
        for (line, kind, want) in [
            ("not json", "protocol", "invalid JSON"),
            ("{\"id\":3}", "protocol", "missing or non-string 'op'"),
            ("{\"op\":\"warp\"}", "protocol", "unknown op"),
            ("{\"op\":\"compile\"}", "invalid", "missing string 'ddg'"),
            ("{\"op\":\"compile\",\"ddg\":\"op x zap\"}", "invalid", "bad ddg"),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"budget\":0}",
                "invalid",
                "budget",
            ),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"machine\":\"m9\"}",
                "invalid",
                "unknown machine",
            ),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"scheduler\":\"x\"}",
                "invalid",
                "scheduler",
            ),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"spill_policy\":\"y\"}",
                "invalid",
                "unknown spill policy",
            ),
        ] {
            let r = server.handle_line(line);
            assert!(!r.shutdown);
            assert!(r.line.contains("\"ok\":false"), "{line} -> {}", r.line);
            let doc = parse_json(&r.line).expect("error responses are valid JSON");
            let error = doc.get("error").expect("error object");
            assert_eq!(error.get("kind").unwrap().as_str(), Some(kind), "{line} -> {}", r.line);
            let message = error.get("message").unwrap().as_str().unwrap();
            assert!(message.contains(want), "{line} -> {message}");
        }
        let stats = parse_json(&server.stats_payload()).unwrap();
        assert_eq!(stats.get("protocol_errors").unwrap().as_i64(), Some(9));
        assert_eq!(stats.get("compile_requests").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn error_responses_echo_a_parsable_id() {
        let server = Server::new(ServeOptions::default());
        let r = server.handle_line("{\"id\":42,\"op\":\"warp\"}");
        assert!(r.line.starts_with("{\"id\":42,\"ok\":false"), "{}", r.line);
    }

    #[test]
    fn oversized_lines_are_rejected_with_a_structured_error() {
        let server =
            Server::new(ServeOptions { max_request_bytes: 128, ..ServeOptions::default() });
        let big = format!("{{\"op\":\"compile\",\"ddg\":\"{}\"}}", "x".repeat(500));
        let r = server.handle_line(&big);
        assert!(r.line.contains("\"ok\":false"));
        assert!(r.line.contains("exceeds the 128-byte limit"), "{}", r.line);
    }

    #[test]
    fn ping_stats_and_shutdown_ops_answer() {
        let server = Server::new(ServeOptions::default());
        assert_eq!(
            server.handle_line("{\"op\":\"ping\"}").line,
            "{\"ok\":true,\"op\":\"pong\"}"
        );
        assert!(!server.is_shutdown());
        let r = server.handle_line("{\"id\":9,\"op\":\"shutdown\"}");
        assert!(r.shutdown);
        assert!(server.is_shutdown());
        assert_eq!(
            r.line,
            "{\"id\":9,\"ok\":true,\"op\":\"shutdown\",\"drained_connections\":0}"
        );
        let stats = server.handle_line("{\"op\":\"stats\"}");
        parse_json(&stats.line).expect("stats is valid JSON");
    }

    #[test]
    fn connection_tracking_feeds_the_drain_count() {
        let server = Server::new(ServeOptions::default());
        let _a = server.track_connection();
        let _b = server.track_connection();
        {
            let _c = server.track_connection();
            assert_eq!(server.active_connections(), 3);
        }
        assert_eq!(server.active_connections(), 2);
        // Two live connections; the one issuing shutdown is not drained.
        let r = server.handle_line("{\"op\":\"shutdown\"}");
        assert!(r.line.contains("\"drained_connections\":1"), "{}", r.line);
    }

    #[test]
    fn a_blown_deadline_is_a_structured_error_and_serving_continues() {
        let server =
            Server::new(ServeOptions { deadline_ms: Some(0), ..ServeOptions::default() });
        let r = server.handle_line(&request(LOOP, 32));
        let doc = parse_json(&r.line).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false), "{}", r.line);
        let error = doc.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("deadline"), "{}", r.line);
        assert!(error.get("message").unwrap().as_str().unwrap().contains("0 ms"));
        // The daemon is still alive and the failed compile was not cached.
        let stats = parse_json(&server.stats_payload()).unwrap();
        assert_eq!(stats.get("deadline_exceeded").unwrap().as_i64(), Some(1));
        assert_eq!(stats.get("totals").unwrap().get("entries").unwrap().as_i64(), Some(0));
        assert_eq!(
            server.handle_line("{\"op\":\"ping\"}").line,
            "{\"ok\":true,\"op\":\"pong\"}"
        );
    }

    #[test]
    fn a_generous_deadline_does_not_fire() {
        let server =
            Server::new(ServeOptions { deadline_ms: Some(60_000), ..ServeOptions::default() });
        let plain = Server::new(ServeOptions::default());
        let a = server.handle_line(&request(LOOP, 32));
        let b = plain.handle_line(&request(LOOP, 32));
        assert_eq!(a.line, b.line, "deadline plumbing must not change results");
        let stats = parse_json(&server.stats_payload()).unwrap();
        assert_eq!(stats.get("deadline_exceeded").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn persistent_cache_survives_a_restart_byte_identically() {
        let dir =
            std::env::temp_dir().join(format!("regpipe-server-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = ServeOptions { cache_dir: Some(dir.clone()), ..ServeOptions::default() };
        let cold = {
            let server = Server::open(options.clone()).unwrap();
            let r = server.handle_line(&request(LOOP, 32));
            let stats = parse_json(&server.stats_payload()).unwrap();
            assert_eq!(stats.get("persistent").unwrap().as_bool(), Some(true));
            r.line
        };
        let server = Server::open(options).unwrap();
        let stats = parse_json(&server.stats_payload()).unwrap();
        let store = stats.get("store").unwrap();
        assert_eq!(store.get("recovered_entries").unwrap().as_i64(), Some(1));
        assert_eq!(store.get("dropped_corrupt_entries").unwrap().as_i64(), Some(0));
        let warm = server.handle_line(&request(LOOP, 32));
        assert_eq!(warm.line, cold, "a recovered hit is byte-identical to the cold miss");
        let totals = parse_json(&server.stats_payload()).unwrap();
        assert_eq!(totals.get("totals").unwrap().get("hits").unwrap().as_i64(), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_dir_without_cache_is_rejected() {
        let err = match Server::open(ServeOptions {
            cache: false,
            cache_dir: Some(std::env::temp_dir().join("regpipe-unused")),
            ..ServeOptions::default()
        }) {
            Ok(_) => panic!("--cache-dir with --no-cache must be rejected"),
            Err(err) => err,
        };
        assert!(err.contains("requires the cache"), "{err}");
    }

    #[test]
    fn machine_key_ignores_names_but_not_parameters() {
        let named = MachineConfig::custom("other-name", 2, 2, 2, 2, 4, 4);
        assert_eq!(machine_key(&MachineConfig::p2l4()), machine_key(&named));
        assert_ne!(machine_key(&MachineConfig::p2l4()), machine_key(&MachineConfig::p2l6()));
        assert_ne!(
            machine_key(&MachineConfig::uniform(4, 2)),
            machine_key(&MachineConfig::uniform(4, 3))
        );
    }

    /// The spill policy is part of the cache key: distinct policies miss
    /// separately, repeating a policy hits, and an absent field is the
    /// same entry as an explicit `"paper"`.
    #[test]
    fn spill_policy_is_cache_keyed() {
        let server = Server::new(ServeOptions::default());
        let with_policy = |policy: &str| {
            format!(
                "{{\"op\":\"compile\",\"ddg\":{},\"spill_policy\":\"{policy}\"}}",
                Value::Str(LOOP.into()).render()
            )
        };
        let implicit = server.handle_line(&format!(
            "{{\"op\":\"compile\",\"ddg\":{}}}",
            Value::Str(LOOP.into()).render()
        ));
        for policy in ["paper", "min-next-use", "furthest-next-use", "round-robin"] {
            let first = server.handle_line(&with_policy(policy));
            let second = server.handle_line(&with_policy(policy));
            assert_eq!(first.line, second.line, "{policy}");
            assert!(first.line.contains("\"status\":\"fitted\""), "{policy}: {}", first.line);
        }
        assert_eq!(implicit.line, server.handle_line(&with_policy("paper")).line);
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        // 4 distinct keys missed once each; the remaining 6 of the 10
        // requests (including both explicit "paper" ones) hit.
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(4));
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(6));
    }

    /// `--spill-policy` on the daemon changes what an *absent* request
    /// field resolves to, and the cache key carries the resolved policy.
    #[test]
    fn the_daemon_default_policy_resolves_into_the_cache_key() {
        let server = Server::new(ServeOptions {
            default_spill_policy: SpillPolicyKind::MinNextUse,
            ..ServeOptions::default()
        });
        let with_policy = |policy: &str| {
            format!(
                "{{\"op\":\"compile\",\"ddg\":{},\"spill_policy\":\"{policy}\"}}",
                Value::Str(LOOP.into()).render()
            )
        };
        let implicit = server.handle_line(&format!(
            "{{\"op\":\"compile\",\"ddg\":{}}}",
            Value::Str(LOOP.into()).render()
        ));
        assert!(implicit.line.contains("\"status\":\"fitted\""), "{}", implicit.line);
        // The implicit request filed under min-next-use: an explicit
        // spelling hits, the paper policy is a distinct entry.
        server.handle_line(&with_policy("min-next-use"));
        server.handle_line(&with_policy("paper"));
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(1));
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(2));
    }

    /// Equivalent formattings of the same loop share one cache entry.
    #[test]
    fn content_addressing_unifies_equivalent_text() {
        let server = Server::new(ServeOptions::default());
        let spaced = "# header\n\nloop t\nop ld load\nop a add\nop st store\n\
                      edge ld -> a reg 0\nedge a -> st reg 0\n";
        let a = server.handle_line(&request(LOOP, 32));
        let b = server.handle_line(&request(spaced, 32));
        assert_eq!(a.line, b.line);
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(1));
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(1));
    }
}
