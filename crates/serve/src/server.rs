//! The request/response core of the daemon: one JSON line in, one JSON
//! line out, cache-first.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use regpipe_core::{compile, CompileOptions, Strategy};
use regpipe_ddg::{content_hash, textfmt, Ddg, OpKind};
use regpipe_exec::json::{parse as parse_json, Value};
use regpipe_exec::{parse_strategy, strategy_slug};
use regpipe_machine::{FuClass, MachineConfig};
use regpipe_sched::SchedulerKind;

use crate::cache::{CacheKey, ShardedCache};

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Whether the result cache is consulted at all. Responses are
    /// byte-identical either way — the cache only changes how often the
    /// engine runs (the determinism gate compares exactly this).
    pub cache: bool,
    /// Total cache budget in approximate resident bytes, split evenly
    /// across shards.
    pub capacity_bytes: usize,
    /// Number of independent cache shards.
    pub shards: usize,
    /// Hard bound on one request line; longer lines are answered with a
    /// structured error and never buffered whole.
    pub max_request_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache: true,
            capacity_bytes: 64 << 20,
            shards: 8,
            max_request_bytes: 1 << 20,
        }
    }
}

/// One answered request: the response line (no trailing newline) and
/// whether the daemon should stop accepting work.
#[derive(Clone, Debug)]
pub struct Response {
    /// The JSON response line.
    pub line: String,
    /// `true` exactly for an acknowledged `shutdown` request.
    pub shutdown: bool,
}

impl Response {
    fn reply(line: String) -> Response {
        Response { line, shutdown: false }
    }
}

/// The compile daemon's state: options, the sharded result cache, and
/// request counters. All methods take `&self`; one `Server` is shared by
/// every connection thread.
pub struct Server {
    options: ServeOptions,
    cache: ShardedCache,
    compile_requests: AtomicU64,
    protocol_errors: AtomicU64,
    shutdown: AtomicBool,
}

impl Server {
    /// A fresh server with the given options.
    pub fn new(options: ServeOptions) -> Server {
        let cache = ShardedCache::new(options.shards.max(1), options.capacity_bytes);
        Server {
            options,
            cache,
            compile_requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The configured per-request byte bound.
    pub fn max_request_bytes(&self) -> usize {
        self.options.max_request_bytes
    }

    /// Whether a `shutdown` request has been acknowledged.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Summed cache counters (the `totals` object of a `stats` response).
    pub fn cache_totals(&self) -> crate::cache::ShardStats {
        self.cache.totals()
    }

    /// Answers one request line. Never panics on malformed input: every
    /// protocol problem becomes a structured `{"ok":false,...}` response.
    pub fn handle_line(&self, line: &str) -> Response {
        if line.len() > self.options.max_request_bytes {
            return Response::reply(self.oversized_response(line.len()));
        }
        let doc = match parse_json(line) {
            Ok(doc) => doc,
            Err(e) => {
                return Response::reply(
                    self.error_response(None, &format!("invalid JSON: {e}")),
                )
            }
        };
        let id = doc.get("id").and_then(Value::as_i64);
        let op = match doc.get("op").and_then(Value::as_str) {
            Some(op) => op,
            None => {
                return Response::reply(
                    self.error_response(id, "missing or non-string 'op' field"),
                )
            }
        };
        match op {
            "compile" => Response::reply(self.handle_compile(id, &doc)),
            "stats" => Response::reply(attach_id(id, &self.stats_payload())),
            "ping" => Response::reply(attach_id(id, "{\"ok\":true,\"op\":\"pong\"}")),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response {
                    line: attach_id(id, "{\"ok\":true,\"op\":\"shutdown\"}"),
                    shutdown: true,
                }
            }
            other => Response::reply(self.error_response(
                id,
                &format!("unknown op '{other}' (compile|stats|ping|shutdown)"),
            )),
        }
    }

    /// The structured error for a request line that exceeded the byte
    /// bound (used both by [`Server::handle_line`] and by the daemon's
    /// bounded reader, which discards such lines without buffering them).
    pub fn oversized_response(&self, got: usize) -> String {
        self.error_response(
            None,
            &format!(
                "request of {got} bytes exceeds the {}-byte limit",
                self.options.max_request_bytes
            ),
        )
    }

    fn error_response(&self, id: Option<i64>, message: &str) -> String {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let mut pairs = Vec::new();
        if let Some(id) = id {
            pairs.push(("id".to_string(), Value::Int(id)));
        }
        pairs.push(("ok".to_string(), Value::Bool(false)));
        pairs.push(("error".to_string(), Value::Str(message.to_string())));
        Value::Object(pairs).render()
    }

    fn handle_compile(&self, id: Option<i64>, doc: &Value) -> String {
        let params = match CompileParams::from_request(doc) {
            Ok(p) => p,
            Err(e) => return self.error_response(id, &e),
        };
        self.compile_requests.fetch_add(1, Ordering::Relaxed);
        let payload = if self.options.cache {
            let key = params.cache_key();
            match self.cache.get(&key) {
                Some(hit) => hit,
                None => {
                    // Compile OUTSIDE any shard lock; a concurrent miss on
                    // the same key computes the identical payload.
                    let computed = params.compute_payload();
                    self.cache.insert(key, computed.clone());
                    computed
                }
            }
        } else {
            params.compute_payload()
        };
        attach_id(id, &payload)
    }

    /// The `stats` response payload: per-shard and total cache counters
    /// plus request counts. When the cache is enabled,
    /// `hits + misses == compile_requests` holds at any quiescent point.
    pub fn stats_payload(&self) -> String {
        let shards = self.cache.shard_stats();
        let totals = self.cache.totals();
        let shard_values = shards
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("hits".to_string(), Value::uint(s.hits)),
                    ("misses".to_string(), Value::uint(s.misses)),
                    ("evictions".to_string(), Value::uint(s.evictions)),
                    ("entries".to_string(), Value::uint(s.entries)),
                    ("bytes".to_string(), Value::uint(s.bytes)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("op".to_string(), Value::Str("stats".into())),
            ("cache_enabled".to_string(), Value::Bool(self.options.cache)),
            ("capacity_bytes".to_string(), Value::uint(self.options.capacity_bytes as u64)),
            (
                "max_request_bytes".to_string(),
                Value::uint(self.options.max_request_bytes as u64),
            ),
            (
                "compile_requests".to_string(),
                Value::uint(self.compile_requests.load(Ordering::Relaxed)),
            ),
            (
                "protocol_errors".to_string(),
                Value::uint(self.protocol_errors.load(Ordering::Relaxed)),
            ),
            (
                "totals".to_string(),
                Value::Object(vec![
                    ("hits".to_string(), Value::uint(totals.hits)),
                    ("misses".to_string(), Value::uint(totals.misses)),
                    ("evictions".to_string(), Value::uint(totals.evictions)),
                    ("entries".to_string(), Value::uint(totals.entries)),
                    ("bytes".to_string(), Value::uint(totals.bytes)),
                ]),
            ),
            ("shards".to_string(), Value::Array(shard_values)),
        ])
        .render()
    }
}

/// Splices an `id` field into an already rendered response payload (a
/// non-empty JSON object). Cached payloads are stored id-free, so a hit
/// and a miss produce the same bytes for the same request id.
pub fn attach_id(id: Option<i64>, payload: &str) -> String {
    debug_assert!(payload.starts_with('{') && payload.len() > 2);
    match id {
        None => payload.to_string(),
        Some(id) => format!("{{\"id\":{id},{}", &payload[1..]),
    }
}

/// The canonical machine identity string used in cache keys: unit counts,
/// latencies, and pipelining flags — the fields that determine scheduling
/// behavior — but *not* the display name, so `p2l4` and an identically
/// configured custom machine share cache entries.
pub fn machine_key(machine: &MachineConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(if machine.is_uniform() { "uniform" } else { "classed" });
    out.push_str(";u=");
    for class in FuClass::ALL {
        let _ = write!(out, "{},", machine.units(class));
    }
    out.push_str(";l=");
    for kind in OpKind::ALL {
        let _ = write!(out, "{},", machine.latency(kind));
    }
    out.push_str(";p=");
    for class in FuClass::ALL {
        out.push(if machine.is_pipelined(class) { '1' } else { '0' });
    }
    out
}

/// A fully validated compile request.
struct CompileParams {
    ddg: Ddg,
    ddg_hash: u64,
    machine: MachineConfig,
    scheduler: SchedulerKind,
    strategy: Strategy,
    budget: u32,
}

impl CompileParams {
    fn from_request(doc: &Value) -> Result<CompileParams, String> {
        let text = doc
            .get("ddg")
            .and_then(Value::as_str)
            .ok_or("compile: missing string 'ddg' field")?;
        let ddg = textfmt::parse(text).map_err(|e| format!("compile: bad ddg: {e}"))?;
        let machine = match doc.get("machine") {
            None => MachineConfig::p2l4(),
            Some(v) => {
                let spec = v.as_str().ok_or("compile: 'machine' must be a string")?;
                MachineConfig::parse_spec(spec).map_err(|e| format!("compile: {e}"))?
            }
        };
        let scheduler = match doc.get("scheduler") {
            None => SchedulerKind::default(),
            Some(v) => {
                let slug = v.as_str().ok_or("compile: 'scheduler' must be a string")?;
                SchedulerKind::parse(slug).map_err(|e| format!("compile: {e}"))?
            }
        };
        let strategy = match doc.get("strategy") {
            None => Strategy::BestOfAll,
            Some(v) => {
                let slug = v.as_str().ok_or("compile: 'strategy' must be a string")?;
                parse_strategy(slug).map_err(|e| format!("compile: {e}"))?
            }
        };
        let budget = match doc.get("budget") {
            None => 32,
            Some(v) => {
                u32::try_from(v.as_i64().ok_or("compile: 'budget' must be a positive integer")?)
                    .ok()
                    .filter(|&b| b > 0)
                    .ok_or("compile: 'budget' must be a positive integer")?
            }
        };
        let ddg_hash = content_hash(&ddg);
        Ok(CompileParams { ddg, ddg_hash, machine, scheduler, strategy, budget })
    }

    fn cache_key(&self) -> CacheKey {
        CacheKey {
            ddg_hash: self.ddg_hash,
            machine: machine_key(&self.machine),
            scheduler: self.scheduler.slug().to_string(),
            strategy: strategy_slug(self.strategy).to_string(),
            budget: self.budget,
        }
    }

    /// The id-free response payload: a pure, deterministic function of the
    /// request — the property the cache-on/off byte-identity gate rests on.
    fn compute_payload(&self) -> String {
        let options = CompileOptions {
            strategy: self.strategy,
            scheduler: self.scheduler,
            ..CompileOptions::default()
        };
        let mut pairs = vec![
            ("ok".to_string(), Value::Bool(true)),
            ("ddg_hash".to_string(), Value::Str(format!("{:016x}", self.ddg_hash))),
        ];
        match compile(&self.ddg, &self.machine, self.budget, &options) {
            Ok(c) => {
                pairs.push(("status".to_string(), Value::Str("fitted".into())));
                pairs.push(("ii".to_string(), Value::uint(u64::from(c.ii()))));
                pairs.push(("regs".to_string(), Value::uint(u64::from(c.registers_used()))));
                pairs.push(("spilled".to_string(), Value::uint(u64::from(c.spilled()))));
                pairs
                    .push(("reschedules".to_string(), Value::uint(u64::from(c.reschedules()))));
                pairs.push(("memory_ops".to_string(), Value::uint(u64::from(c.memory_ops()))));
                pairs.push((
                    "strategy_used".to_string(),
                    Value::Str(strategy_slug(c.strategy_used()).into()),
                ));
            }
            Err(e) => {
                pairs.push(("status".to_string(), Value::Str("failed".into())));
                pairs.push(("error".to_string(), Value::Str(e.to_string())));
            }
        }
        Value::Object(pairs).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(ddg: &str, budget: u32) -> String {
        Value::Object(vec![
            ("id".to_string(), Value::Int(1)),
            ("op".to_string(), Value::Str("compile".into())),
            ("ddg".to_string(), Value::Str(ddg.into())),
            ("budget".to_string(), Value::uint(u64::from(budget))),
        ])
        .render()
    }

    const LOOP: &str = "loop t\nop ld load\nop a add\nop st store\n\
                        edge ld -> a reg 0\nedge a -> st reg 0\n";

    #[test]
    fn compile_request_round_trips_and_caches() {
        let server = Server::new(ServeOptions::default());
        let first = server.handle_line(&request(LOOP, 32));
        let second = server.handle_line(&request(LOOP, 32));
        assert_eq!(first.line, second.line);
        assert!(first.line.contains("\"status\":\"fitted\""), "{}", first.line);
        assert!(first.line.starts_with("{\"id\":1,\"ok\":true,"));
        let doc = parse_json(&first.line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_i64(), Some(1));
        assert!(doc.get("ii").unwrap().as_i64().unwrap() >= 1);
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(1));
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(1));
        assert_eq!(stats.get("compile_requests").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn cache_on_and_off_answer_identically() {
        let on = Server::new(ServeOptions::default());
        let off = Server::new(ServeOptions { cache: false, ..ServeOptions::default() });
        for budget in [64, 32, 4] {
            let a = on.handle_line(&request(LOOP, budget));
            let b = off.handle_line(&request(LOOP, budget));
            assert_eq!(a.line, b.line);
        }
        // The disabled cache never counted anything.
        let stats = parse_json(&off.stats_payload()).unwrap();
        assert_eq!(stats.get("cache_enabled").unwrap().as_bool(), Some(false));
        assert_eq!(stats.get("totals").unwrap().get("misses").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let server = Server::new(ServeOptions::default());
        for (line, want) in [
            ("not json", "invalid JSON"),
            ("{\"id\":3}", "missing or non-string 'op'"),
            ("{\"op\":\"warp\"}", "unknown op"),
            ("{\"op\":\"compile\"}", "missing string 'ddg'"),
            ("{\"op\":\"compile\",\"ddg\":\"op x zap\"}", "bad ddg"),
            ("{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"budget\":0}", "budget"),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"machine\":\"m9\"}",
                "unknown machine",
            ),
            (
                "{\"op\":\"compile\",\"ddg\":\"loop l\\nop x add\\n\",\"scheduler\":\"x\"}",
                "scheduler",
            ),
        ] {
            let r = server.handle_line(line);
            assert!(!r.shutdown);
            assert!(r.line.contains("\"ok\":false"), "{line} -> {}", r.line);
            assert!(r.line.contains(want), "{line} -> {}", r.line);
            parse_json(&r.line).expect("error responses are valid JSON");
        }
        let stats = parse_json(&server.stats_payload()).unwrap();
        assert_eq!(stats.get("protocol_errors").unwrap().as_i64(), Some(8));
        assert_eq!(stats.get("compile_requests").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn error_responses_echo_a_parsable_id() {
        let server = Server::new(ServeOptions::default());
        let r = server.handle_line("{\"id\":42,\"op\":\"warp\"}");
        assert!(r.line.starts_with("{\"id\":42,\"ok\":false"), "{}", r.line);
    }

    #[test]
    fn oversized_lines_are_rejected_with_a_structured_error() {
        let server =
            Server::new(ServeOptions { max_request_bytes: 128, ..ServeOptions::default() });
        let big = format!("{{\"op\":\"compile\",\"ddg\":\"{}\"}}", "x".repeat(500));
        let r = server.handle_line(&big);
        assert!(r.line.contains("\"ok\":false"));
        assert!(r.line.contains("exceeds the 128-byte limit"), "{}", r.line);
    }

    #[test]
    fn ping_stats_and_shutdown_ops_answer() {
        let server = Server::new(ServeOptions::default());
        assert_eq!(
            server.handle_line("{\"op\":\"ping\"}").line,
            "{\"ok\":true,\"op\":\"pong\"}"
        );
        assert!(!server.is_shutdown());
        let r = server.handle_line("{\"id\":9,\"op\":\"shutdown\"}");
        assert!(r.shutdown);
        assert!(server.is_shutdown());
        assert_eq!(r.line, "{\"id\":9,\"ok\":true,\"op\":\"shutdown\"}");
        let stats = server.handle_line("{\"op\":\"stats\"}");
        parse_json(&stats.line).expect("stats is valid JSON");
    }

    #[test]
    fn machine_key_ignores_names_but_not_parameters() {
        let named = MachineConfig::custom("other-name", 2, 2, 2, 2, 4, 4);
        assert_eq!(machine_key(&MachineConfig::p2l4()), machine_key(&named));
        assert_ne!(machine_key(&MachineConfig::p2l4()), machine_key(&MachineConfig::p2l6()));
        assert_ne!(
            machine_key(&MachineConfig::uniform(4, 2)),
            machine_key(&MachineConfig::uniform(4, 3))
        );
    }

    /// Equivalent formattings of the same loop share one cache entry.
    #[test]
    fn content_addressing_unifies_equivalent_text() {
        let server = Server::new(ServeOptions::default());
        let spaced = "# header\n\nloop t\nop ld load\nop a add\nop st store\n\
                      edge ld -> a reg 0\nedge a -> st reg 0\n";
        let a = server.handle_line(&request(LOOP, 32));
        let b = server.handle_line(&request(spaced, 32));
        assert_eq!(a.line, b.line);
        let stats = parse_json(&server.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        assert_eq!(totals.get("hits").unwrap().as_i64(), Some(1));
        assert_eq!(totals.get("misses").unwrap().as_i64(), Some(1));
    }
}
