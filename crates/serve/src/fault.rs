//! Deterministic fault injection for the serve subsystem.
//!
//! Crash-safety claims are only worth what their tests inject. This
//! module wraps the compile path and the persistent store's write/fsync
//! edges with a *seeded, reproducible* fault schedule, so `regpipe
//! chaos` and the crash-recovery tests can make a specific byte go bad
//! on a specific append, every time, on any machine.
//!
//! The plan comes from the environment variable [`FAULT_ENV`]
//! (`REGPIPE_FAULT`), with the grammar:
//!
//! ```text
//! plan  = seed ":" fault { "," fault } ;
//! fault = kind "@" index ;                (* index is 1-based *)
//! kind  = "panic"                         (* nth compile request panics *)
//!       | "short"                         (* nth append: short write, detected
//!                                            and repaired by the store *)
//!       | "torn"                          (* nth append: silent partial write —
//!                                            a torn frame found only at recovery *)
//!       | "flip"                          (* nth append: one payload bit flipped *)
//!       | "crash"                         (* nth append: partial write, then
//!                                            process abort — kill -9 mid-write *)
//!       | "fsync"                         (* nth fsync silently skipped *) ;
//! ```
//!
//! e.g. `REGPIPE_FAULT=7:panic@3,torn@20,crash@31`. The `seed` feeds a
//! splitmix64 stream that picks *where* each fault lands inside its
//! frame (the tear point, the flipped bit), so the whole schedule is a
//! pure function of the environment. Each kind draws on its own event
//! counter: `panic@n` counts compile requests, `fsync@n` counts fsyncs,
//! and the other kinds count store appends.
//!
//! Faults only ever fire when the variable is set — production daemons
//! pay one atomic load per event and nothing else.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The environment variable carrying the fault plan (`seed:spec`).
pub const FAULT_ENV: &str = "REGPIPE_FAULT";

/// One injectable fault kind. See the module docs for the schedule
/// grammar and what each kind does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Panic inside the nth compile request.
    Panic,
    /// Short write on the nth append, *reported* to the store.
    Short,
    /// Silent partial write of the nth append frame.
    Torn,
    /// One bit of the nth append's payload flipped.
    Flip,
    /// Partial write of the nth append, then `std::process::abort()`.
    Crash,
    /// The nth fsync is silently skipped.
    Fsync,
}

impl FaultKind {
    fn parse(raw: &str) -> Result<FaultKind, String> {
        match raw {
            "panic" => Ok(FaultKind::Panic),
            "short" => Ok(FaultKind::Short),
            "torn" => Ok(FaultKind::Torn),
            "flip" => Ok(FaultKind::Flip),
            "crash" => Ok(FaultKind::Crash),
            "fsync" => Ok(FaultKind::Fsync),
            other => {
                Err(format!("unknown fault kind '{other}' (panic|short|torn|flip|crash|fsync)"))
            }
        }
    }

    fn slug(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Short => "short",
            FaultKind::Torn => "torn",
            FaultKind::Flip => "flip",
            FaultKind::Crash => "crash",
            FaultKind::Fsync => "fsync",
        }
    }
}

/// What the fault layer tells the store to do to one append. The raw
/// `r` value is a seeded draw; the store maps it onto the frame (tear
/// point in `1..frame_len`, bit index in `0..payload_bits`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppendFault {
    /// Write only part of the frame; the write *reports* the short
    /// count, so the store can detect and repair it.
    Short(u64),
    /// Write only part of the frame, silently (discovered at recovery).
    Torn(u64),
    /// Flip one bit of the payload before writing the whole frame.
    Flip(u64),
    /// Write only part of the frame, then abort the process.
    Crash(u64),
}

/// A parsed, validated fault schedule (seed + `kind@index` list).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<(FaultKind, u64)>,
}

impl FaultPlan {
    /// Parses a `seed:kind@n[,kind@n...]` plan string.
    ///
    /// # Errors
    ///
    /// Describes the first malformed component.
    pub fn parse(raw: &str) -> Result<FaultPlan, String> {
        let (seed, spec) = raw.split_once(':').ok_or_else(|| {
            format!("fault plan '{raw}' must look like '<seed>:<kind>@<n>,...'")
        })?;
        let seed: u64 = seed.trim().parse().map_err(|_| format!("bad fault seed '{seed}'"))?;
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (kind, index) = part
                .split_once('@')
                .ok_or_else(|| format!("bad fault '{part}' (expected '<kind>@<n>')"))?;
            let kind = FaultKind::parse(kind.trim())?;
            let index: u64 =
                index.trim().parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("fault index in '{part}' must be a positive integer")
                })?;
            faults.push((kind, index));
        }
        if faults.is_empty() {
            return Err("fault plan lists no faults".into());
        }
        Ok(FaultPlan { seed, faults })
    }

    /// Renders the plan back to the `seed:spec` form it parsed from.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{}:", self.seed);
        for (i, (kind, index)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}@{index}", kind.slug());
        }
        out
    }
}

/// Live fault state: a plan plus per-domain event counters. One per
/// process in normal operation ([`global`]); tests may hold their own.
pub struct FaultState {
    plan: FaultPlan,
    compiles: AtomicU64,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

/// splitmix64: the seeded draw behind tear points, bit positions, and
/// the replay driver's backoff jitter.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultState {
    /// Fresh state (all counters zero) for a plan.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            compiles: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        }
    }

    fn scheduled(&self, kind: FaultKind, event: u64) -> bool {
        self.plan.faults.iter().any(|&(k, n)| k == kind && n == event)
    }

    fn draw(&self, kind: FaultKind, event: u64) -> u64 {
        splitmix(self.plan.seed ^ (kind as u64) << 56 ^ event)
    }

    /// Counts one compile request; `true` means inject a panic.
    pub fn on_compile(&self) -> bool {
        let event = self.compiles.fetch_add(1, Ordering::SeqCst) + 1;
        self.scheduled(FaultKind::Panic, event)
    }

    /// Counts one store append; returns the fault to apply, if any. When
    /// several kinds share an index, the first in spec order wins.
    pub fn on_append(&self) -> Option<AppendFault> {
        let event = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        for &(kind, n) in &self.plan.faults {
            if n != event {
                continue;
            }
            let r = self.draw(kind, event);
            return match kind {
                FaultKind::Short => Some(AppendFault::Short(r)),
                FaultKind::Torn => Some(AppendFault::Torn(r)),
                FaultKind::Flip => Some(AppendFault::Flip(r)),
                FaultKind::Crash => Some(AppendFault::Crash(r)),
                FaultKind::Panic | FaultKind::Fsync => continue,
            };
        }
        None
    }

    /// Counts one fsync; `true` means silently skip it.
    pub fn on_fsync(&self) -> bool {
        let event = self.fsyncs.fetch_add(1, Ordering::SeqCst) + 1;
        self.scheduled(FaultKind::Fsync, event)
    }
}

/// The process-wide fault state, parsed once from [`FAULT_ENV`]. `None`
/// when the variable is unset *or* malformed — call [`validate_env`]
/// at startup to reject malformed plans loudly instead.
pub fn global() -> Option<&'static FaultState> {
    static STATE: OnceLock<Option<FaultState>> = OnceLock::new();
    STATE
        .get_or_init(|| {
            let raw = std::env::var(FAULT_ENV).ok()?;
            FaultPlan::parse(&raw).ok().map(FaultState::new)
        })
        .as_ref()
}

/// Validates [`FAULT_ENV`] without arming anything.
///
/// # Errors
///
/// The parse error for a set-but-malformed plan.
pub fn validate_env() -> Result<(), String> {
    match std::env::var(FAULT_ENV) {
        Err(_) => Ok(()),
        Ok(raw) => FaultPlan::parse(&raw).map(|_| ()).map_err(|e| format!("{FAULT_ENV}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_render_round_trip() {
        let plan = FaultPlan::parse("7:panic@3,torn@20,flip@2,crash@31,short@5,fsync@1")
            .expect("valid plan");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 6);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn malformed_plans_are_rejected_with_names() {
        for (raw, needle) in [
            ("no-colon", "must look like"),
            ("x:panic@1", "bad fault seed"),
            ("7:warp@1", "unknown fault kind"),
            ("7:panic@0", "positive integer"),
            ("7:panic", "expected '<kind>@<n>'"),
            ("7:", "expected '<kind>@<n>'"),
        ] {
            let err = FaultPlan::parse(raw).unwrap_err();
            assert!(err.contains(needle), "{raw}: {err}");
        }
    }

    #[test]
    fn events_fire_exactly_on_their_index() {
        let state = FaultState::new(FaultPlan::parse("9:panic@2,torn@1,crash@3").unwrap());
        assert!(!state.on_compile()); // compile event 1
        assert!(state.on_compile()); // compile event 2: panic
        assert!(!state.on_compile());
        assert!(matches!(state.on_append(), Some(AppendFault::Torn(_)))); // append 1
        assert_eq!(state.on_append(), None); // append 2
        assert!(matches!(state.on_append(), Some(AppendFault::Crash(_)))); // append 3
        assert_eq!(state.on_append(), None);
        assert!(!state.on_fsync());
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let a = FaultState::new(FaultPlan::parse("5:flip@1").unwrap());
        let b = FaultState::new(FaultPlan::parse("5:flip@1").unwrap());
        assert_eq!(a.on_append(), b.on_append());
        let c = FaultState::new(FaultPlan::parse("6:flip@1").unwrap());
        assert_ne!(a.draw(FaultKind::Flip, 1), c.draw(FaultKind::Flip, 1));
    }
}
