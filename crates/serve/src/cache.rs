//! The sharded, bounded-memory LRU result cache.
//!
//! Keys are content addresses — `(ddg-hash, machine, scheduler, strategy,
//! spill-policy, budget)` — and values are fully rendered response
//! payloads, so a hit
//! returns the *byte-identical* line a miss would have computed. Shard
//! choice is a stable FNV-1a hash of the key (not `std::hash`, whose
//! output is unspecified), so per-shard stats are reproducible across
//! runs and Rust versions.
//!
//! Each shard is an independent mutex around a classic intrusive-list LRU
//! (arena of nodes + `HashMap` index), bounded by approximate resident
//! bytes; inserting past the bound evicts from the least-recently-used
//! tail. Compiles never run under a shard lock — the server computes the
//! payload first and inserts afterwards — so lock hold times are a few
//! pointer swaps regardless of kernel size.

use std::collections::HashMap;
use std::sync::Mutex;

use regpipe_ddg::fnv1a;

/// The content address of one compile request.
///
/// `machine` is the *canonical identity string* of the machine model (see
/// [`crate::machine_key`]), not the user's spelling, so `p2l4` and an
/// equivalent custom description share cache entries.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Stable content hash of the canonical `.ddg` form
    /// ([`regpipe_ddg::content_hash`]).
    pub ddg_hash: u64,
    /// Canonical machine identity string.
    pub machine: String,
    /// Scheduler registry slug (`hrms`/`sms`/`asap`).
    pub scheduler: String,
    /// Strategy slug (`best`/`spill`/`increase-ii`).
    pub strategy: String,
    /// Spill-policy registry slug (`paper`/`min-next-use`/…).
    pub spill_policy: String,
    /// Register budget.
    pub budget: u32,
}

impl CacheKey {
    /// Stable shard/index hash of the key (FNV-1a over its fields).
    pub fn stable_hash(&self) -> u64 {
        let text = format!(
            "{:016x}|{}|{}|{}|{}|{}",
            self.ddg_hash,
            self.machine,
            self.scheduler,
            self.strategy,
            self.spill_policy,
            self.budget
        );
        fnv1a(text.as_bytes())
    }

    /// Approximate resident bytes of the key itself.
    fn approx_bytes(&self) -> usize {
        self.machine.len()
            + self.scheduler.len()
            + self.strategy.len()
            + self.spill_policy.len()
            + 16
    }
}

/// Fixed per-entry overhead charged against the byte budget (node, map
/// entry, allocator slack — an estimate, deliberately on the high side).
const ENTRY_OVERHEAD: usize = 96;

/// Sentinel for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    payload: String,
    prev: usize,
    next: usize,
}

/// Counters and occupancy of one shard, as reported by `stats` requests.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups answered from the shard.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries dropped to stay under the byte bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident.
    pub bytes: u64,
}

/// One LRU shard: an arena-backed doubly-linked recency list plus a key
/// index, bounded by approximate bytes.
struct Shard {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Unlinks node `i` from the recency list (it stays in the arena).
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn entry_cost(key: &CacheKey, payload: &str) -> usize {
        key.approx_bytes() + payload.len() + ENTRY_OVERHEAD
    }

    fn get(&mut self, key: &CacheKey) -> Option<String> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.detach(i);
                self.push_front(i);
                self.hits += 1;
                Some(self.nodes[i].payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: CacheKey, payload: String) {
        let cost = Self::entry_cost(&key, &payload);
        if let Some(&i) = self.map.get(&key) {
            // Same key computed twice by racing workers: refresh recency,
            // keep the (identical) payload.
            self.detach(i);
            self.push_front(i);
            return;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node { key: key.clone(), payload, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.nodes.push(Node { key: key.clone(), payload, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        self.bytes += cost;
        while self.bytes > self.capacity && self.tail != NIL {
            self.evict_tail();
        }
    }

    /// Drops the least-recently-used entry (possibly the one just
    /// inserted, when a single entry exceeds the whole shard budget).
    fn evict_tail(&mut self) {
        let i = self.tail;
        self.detach(i);
        let node = &mut self.nodes[i];
        let cost = Self::entry_cost(&node.key, &node.payload);
        node.payload = String::new(); // release the big allocation now
        let key = node.key.clone();
        self.map.remove(&key);
        self.free.push(i);
        self.bytes -= cost.min(self.bytes);
        self.evictions += 1;
    }

    /// Resident entries, least-recently-used first (tail to head), so a
    /// replay of the dump in order rebuilds the same recency.
    fn dump(&self, out: &mut Vec<(CacheKey, String)>) {
        let mut i = self.tail;
        while i != NIL {
            out.push((self.nodes[i].key.clone(), self.nodes[i].payload.clone()));
            i = self.nodes[i].prev;
        }
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len() as u64,
            bytes: self.bytes as u64,
        }
    }
}

/// The sharded cache: `shards` independent LRUs splitting a total byte
/// budget evenly, with shard choice by [`CacheKey::stable_hash`].
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedCache {
    /// A cache of `shards` shards sharing `capacity_bytes` in total.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, capacity_bytes: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        let per_shard = (capacity_bytes / shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.stable_hash() as usize) % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency; counts a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        self.shard(key).lock().expect("cache shard poisoned").get(key)
    }

    /// Inserts a computed payload, evicting from the LRU tail as needed.
    pub fn insert(&self, key: CacheKey, payload: String) {
        self.shard(&key).lock().expect("cache shard poisoned").insert(key, payload);
    }

    /// Per-shard counters, in shard-index order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").stats()).collect()
    }

    /// Sums of the per-shard counters.
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in self.shard_stats() {
            t.hits += s.hits;
            t.misses += s.misses;
            t.evictions += s.evictions;
            t.entries += s.entries;
            t.bytes += s.bytes;
        }
        t
    }

    /// Snapshot of every resident entry for the persistent store's
    /// compaction: shard-index order, oldest-first within each shard, so
    /// replaying the dump in order rebuilds (approximately) the same
    /// recency on restart.
    pub fn dump(&self) -> Vec<(CacheKey, String)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").dump(&mut out);
        }
        out
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> CacheKey {
        CacheKey {
            ddg_hash: u64::from(n),
            machine: "M".into(),
            scheduler: "hrms".into(),
            strategy: "best".into(),
            spill_policy: "paper".into(),
            budget: 32,
        }
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let c = ShardedCache::new(4, 1 << 20);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), "{\"ok\":true}".into());
        assert_eq!(c.get(&key(1)).as_deref(), Some("{\"ok\":true}"));
        let t = c.totals();
        assert_eq!((t.hits, t.misses, t.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_first_under_byte_pressure() {
        // One shard so recency order is global; capacity fits ~3 entries.
        let payload = "x".repeat(200);
        let cost = 200 + 96 + (1 + 4 + 4 + 5 + 16); // payload + overhead + key
        let c = ShardedCache::new(1, 3 * cost);
        for n in 0..3 {
            c.insert(key(n), payload.clone());
        }
        assert_eq!(c.totals().evictions, 0);
        // Touch 0 so 1 becomes the LRU tail, then overflow.
        assert!(c.get(&key(0)).is_some());
        c.insert(key(3), payload.clone());
        assert_eq!(c.totals().evictions, 1);
        assert!(c.get(&key(1)).is_none(), "the untouched entry was evicted");
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn an_entry_larger_than_the_budget_does_not_stick() {
        let c = ShardedCache::new(1, 64);
        c.insert(key(1), "y".repeat(1000));
        assert_eq!(c.totals().entries, 0);
        assert_eq!(c.totals().evictions, 1);
        assert_eq!(c.totals().bytes, 0);
        // The cache still works afterwards.
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn reinserting_the_same_key_keeps_one_entry() {
        let c = ShardedCache::new(2, 1 << 20);
        c.insert(key(7), "{\"a\":1}".into());
        c.insert(key(7), "{\"a\":1}".into());
        assert_eq!(c.totals().entries, 1);
        assert_eq!(c.get(&key(7)).as_deref(), Some("{\"a\":1}"));
    }

    #[test]
    fn shard_choice_is_stable() {
        let k = key(42);
        assert_eq!(k.stable_hash(), k.clone().stable_hash());
        // Different budgets are different addresses.
        let mut k2 = key(42);
        k2.budget = 64;
        assert_ne!(k.stable_hash(), k2.stable_hash());
    }

    #[test]
    fn dump_lists_live_entries_oldest_first() {
        let c = ShardedCache::new(1, 1 << 20);
        for n in 0..3 {
            c.insert(key(n), format!("p{n}"));
        }
        assert!(c.get(&key(0)).is_some()); // 0 becomes most-recent
        let dump = c.dump();
        let order: Vec<u64> = dump.iter().map(|(k, _)| k.ddg_hash).collect();
        assert_eq!(order, vec![1, 2, 0], "LRU tail first, refreshed entry last");
        assert_eq!(dump[0].1, "p1");
    }

    #[test]
    fn eviction_slots_are_reused() {
        let payload = "z".repeat(200);
        let cost = 200 + 96 + (1 + 4 + 4 + 5 + 16);
        let c = ShardedCache::new(1, 2 * cost);
        for n in 0..50 {
            c.insert(key(n), payload.clone());
        }
        let t = c.totals();
        assert_eq!(t.entries, 2);
        assert_eq!(t.evictions, 48);
        assert!(t.bytes <= 2 * cost as u64);
    }
}
