//! `regpipe chaos`: the deterministic crash-recovery gate.
//!
//! The harness proves the crash-only story end to end, with real
//! processes and a real on-disk cache, on a schedule that is a pure
//! function of one seed. Each cycle:
//!
//! 1. **Survivable faults** — a daemon is spawned with an injected
//!    compile panic (and, while the cache is cold, a bit flip and a torn
//!    append in the store). The full workload is replayed against it:
//!    exactly one response may differ from the no-fault baseline, it must
//!    be a structured `internal` error, and re-requesting it on the same
//!    socket must succeed — the daemon kept serving. It is then shut
//!    down gracefully (fsyncing its log).
//! 2. **Crash mid-write** — a fresh daemon is spawned with a `crash`
//!    fault armed on its first store append and fed one never-cached
//!    request; the daemon dies mid-frame (`abort`, the moral equivalent
//!    of `kill -9`). A clean daemon is then started on the same cache
//!    dir — it must start (reclaiming the stale socket the dead daemon
//!    left behind), recover everything but the torn suffix, and answer
//!    the whole workload byte-identically to the baseline.
//!
//! After the last cycle a final clean daemon replays the workload once
//! more; those responses are the run's output (`--out`) and must equal
//! the baseline byte for byte. Any deviation anywhere fails the run.

use std::io::Write as _;
use std::num::NonZeroUsize;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use regpipe_exec::json::{parse as parse_json, Value};

use crate::fault::FAULT_ENV;
use crate::replay::{
    base_requests, replay_in_process, replay_socket, request_once, IdPolicy, ReplayConfig,
    ReplaySource, RetryPolicy,
};
use crate::server::{attach_id, ServeOptions, Server};

/// Configuration of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The `regpipe` binary to spawn daemons from (normally
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Unix socket path shared by every spawned daemon.
    pub socket: PathBuf,
    /// Persistent cache directory shared by every spawned daemon.
    pub cache_dir: PathBuf,
    /// Inject–crash–restart cycles to run.
    pub cycles: u32,
    /// Seed for the workload and the fault schedules.
    pub seed: u64,
    /// Workload kernels (generator semantics); at least 4.
    pub count: usize,
    /// Client-side replay concurrency.
    pub jobs: NonZeroUsize,
    /// Per-request replay options (budgets, strategy, scheduler).
    pub replay: ReplayConfig,
}

/// The outcome of a chaos run that passed every check.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Cycles completed.
    pub cycles: u32,
    /// Requests in one workload pass.
    pub requests: usize,
    /// Replay concurrency used.
    pub jobs: usize,
    /// Workload/fault seed.
    pub seed: u64,
    /// Injected panics caught by the daemons (one per cycle).
    pub panics_caught: u64,
    /// Entries recovered from disk, summed over every daemon start.
    pub recovered_entries: u64,
    /// Corrupt frames/suffixes dropped, summed over every daemon start.
    pub dropped_corrupt_entries: u64,
    /// Mid-write crashes survived (one per cycle).
    pub crashes: u32,
    /// The final clean replay's responses, in stream order — byte-equal
    /// to the never-crashed baseline (written out via `--out`).
    pub final_responses: Vec<String>,
}

impl ChaosReport {
    /// The summary JSON printed by `regpipe chaos` (schema
    /// `regpipe-chaos/v1`; the response lines go to `--out`, not here).
    pub fn render_json(&self) -> String {
        Value::Object(vec![
            ("schema".to_string(), Value::Str("regpipe-chaos/v1".into())),
            ("ok".to_string(), Value::Bool(true)),
            ("cycles".to_string(), Value::uint(u64::from(self.cycles))),
            ("requests".to_string(), Value::uint(self.requests as u64)),
            ("jobs".to_string(), Value::uint(self.jobs as u64)),
            ("seed".to_string(), Value::uint(self.seed)),
            ("panics_caught".to_string(), Value::uint(self.panics_caught)),
            ("recovered_entries".to_string(), Value::uint(self.recovered_entries)),
            ("dropped_corrupt_entries".to_string(), Value::uint(self.dropped_corrupt_entries)),
            ("crashes".to_string(), Value::uint(u64::from(self.crashes))),
        ])
        .render()
    }
}

/// A spawned daemon process; killed on drop unless reaped first.
struct Daemon {
    child: Option<Child>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Daemon {
    /// Spawns `exe serve --socket ... --cache-dir ...` with an optional
    /// fault plan and waits until the socket accepts connections.
    fn spawn(config: &ChaosConfig, fault_plan: Option<&str>) -> Result<Daemon, String> {
        let mut cmd = Command::new(&config.exe);
        cmd.arg("serve")
            .arg("--socket")
            .arg(&config.socket)
            .arg("--cache-dir")
            .arg(&config.cache_dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        match fault_plan {
            Some(plan) => {
                cmd.env(FAULT_ENV, plan);
            }
            None => {
                cmd.env_remove(FAULT_ENV);
            }
        }
        let child = cmd.spawn().map_err(|e| format!("cannot spawn daemon: {e}"))?;
        let mut daemon = Daemon { child: Some(child) };
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if UnixStream::connect(&config.socket).is_ok() {
                return Ok(daemon);
            }
            if let Some(status) =
                daemon.child.as_mut().and_then(|c| c.try_wait().ok()).flatten()
            {
                return Err(format!("daemon exited before accepting: {status}"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err("daemon did not start accepting within 10s".into())
    }

    /// Reaps the process after it exits on its own (graceful shutdown or
    /// an injected crash).
    fn reap(mut self) -> Result<std::process::ExitStatus, String> {
        let mut child = self.child.take().expect("daemon already reaped");
        child.wait().map_err(|e| format!("cannot wait for daemon: {e}"))
    }
}

/// Reads the robustness counters out of a daemon's `stats` response.
fn stats_counters(socket: &std::path::Path) -> Result<(u64, u64, u64), String> {
    let line = request_once(socket, "{\"op\":\"stats\"}")
        .map_err(|e| format!("stats request failed: {e}"))?;
    let doc = parse_json(&line).map_err(|e| format!("stats response unparsable: {e}"))?;
    let count =
        |v: Option<&Value>| v.and_then(Value::as_i64).map(|n| n.max(0) as u64).unwrap_or(0);
    let store = doc.get("store");
    Ok((
        count(doc.get("panics_caught")),
        count(store.and_then(|s| s.get("recovered_entries"))),
        count(store.and_then(|s| s.get("dropped_corrupt_entries"))),
    ))
}

/// One never-before-seen compile request for cycle `cycle` (a budget no
/// workload request uses), with the id it is sent under.
fn sacrificial_request(config: &ChaosConfig, cycle: u32) -> Result<String, String> {
    let special = ReplayConfig { budgets: vec![997 + cycle], ..config.replay.clone() };
    let base = base_requests(&ReplaySource::Gen { seed: config.seed, count: 1 }, &special)?;
    let line = base.into_iter().next().ok_or("empty sacrificial workload")?;
    Ok(attach_id(Some(i64::from(1_000_000 + cycle)), &line))
}

/// Runs the full chaos gate. Returns a report only if **every** check in
/// every cycle passed; the error string names the first violated check.
///
/// # Errors
///
/// Configuration problems, daemon spawn/protocol failures, and — the
/// point of the harness — any byte deviating from the baseline.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, String> {
    if config.count < 4 {
        return Err("chaos needs --count >= 4 (fault indices span the append log)".into());
    }
    if config.cycles == 0 {
        return Err("chaos needs --cycles >= 1".into());
    }
    let source = ReplaySource::Gen { seed: config.seed, count: config.count };
    let base = base_requests(&source, &config.replay)?;
    let total = base.len();

    // The never-crashed oracle: an in-process server computes the
    // baseline response stream and the expected sacrificial responses.
    let oracle = Server::new(ServeOptions::default());
    let baseline =
        replay_in_process(&oracle, &base, 1, config.jobs, IdPolicy::Stream).responses;

    let mut report = ChaosReport {
        cycles: config.cycles,
        requests: total,
        jobs: config.jobs.get(),
        seed: config.seed,
        panics_caught: 0,
        recovered_entries: 0,
        dropped_corrupt_entries: 0,
        crashes: 0,
        final_responses: Vec::new(),
    };

    for cycle in 0..config.cycles {
        // Phase A: survivable faults. While the cache is cold (cycle 0)
        // every request appends, so a flip and a torn append can be
        // scheduled too; warm cycles only have the panic to inject.
        let plan = if cycle == 0 {
            format!("{}:panic@2,flip@{},torn@{}", config.seed, total / 2, total)
        } else {
            format!("{}:panic@2", config.seed)
        };
        let daemon = Daemon::spawn(config, Some(&plan))?;
        let outcome = replay_socket(
            &config.socket,
            &base,
            1,
            config.jobs,
            IdPolicy::Stream,
            RetryPolicy::default(),
        )
        .map_err(|e| format!("cycle {cycle}: faulted replay failed: {e}"))?;
        let diffs: Vec<usize> =
            (0..total).filter(|&i| outcome.responses[i] != baseline[i]).collect();
        let &[victim] = diffs.as_slice() else {
            return Err(format!(
                "cycle {cycle}: expected exactly one faulted response, found {} ({diffs:?})",
                diffs.len()
            ));
        };
        let faulted = &outcome.responses[victim];
        if !faulted.contains("\"kind\":\"internal\"") || !faulted.contains("\"ok\":false") {
            return Err(format!(
                "cycle {cycle}: faulted response is not a structured internal error: {faulted}"
            ));
        }
        // The daemon must still serve — the same request now succeeds,
        // byte-identical to the baseline.
        let line = attach_id(Some(victim as i64), &base[victim]);
        let retried = request_once(&config.socket, &line)
            .map_err(|e| format!("cycle {cycle}: re-request after panic failed: {e}"))?;
        if retried != baseline[victim] {
            return Err(format!(
                "cycle {cycle}: post-panic re-request deviates from baseline:\n  got  {retried}\n  want {}",
                baseline[victim]
            ));
        }
        let (panics, recovered, dropped) = stats_counters(&config.socket)?;
        if panics != 1 {
            return Err(format!("cycle {cycle}: expected 1 caught panic, stats say {panics}"));
        }
        report.panics_caught += panics;
        report.recovered_entries += recovered;
        report.dropped_corrupt_entries += dropped;
        let ack = request_once(&config.socket, "{\"op\":\"shutdown\"}")
            .map_err(|e| format!("cycle {cycle}: shutdown failed: {e}"))?;
        if !ack.contains("\"drained_connections\":") {
            return Err(format!("cycle {cycle}: shutdown ack lacks drain count: {ack}"));
        }
        let status = daemon.reap()?;
        if !status.success() {
            return Err(format!("cycle {cycle}: faulted daemon exited dirty: {status}"));
        }

        // Phase B: crash mid-write. The sacrificial request is never in
        // the cache, so it must append — and the armed fault aborts the
        // process partway through that frame.
        let daemon = Daemon::spawn(config, Some(&format!("{}:crash@1", config.seed)))?;
        let line = sacrificial_request(config, cycle)?;
        match request_once(&config.socket, &line) {
            Err(_) => {}
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => {
                return Err(format!(
                    "cycle {cycle}: the crash fault did not fire; daemon answered: {reply}"
                ))
            }
        }
        let status = daemon.reap()?;
        if status.success() {
            return Err(format!("cycle {cycle}: crash daemon exited cleanly: {status}"));
        }
        report.crashes += 1;

        // Recovery: a clean daemon on the same cache dir (and the dead
        // daemon's stale socket) must start and serve the whole workload
        // byte-identically, warm or not.
        let daemon = Daemon::spawn(config, None)?;
        let outcome = replay_socket(
            &config.socket,
            &base,
            1,
            config.jobs,
            IdPolicy::Stream,
            RetryPolicy { attempts: 3, backoff_ms: 20, seed: config.seed },
        )
        .map_err(|e| format!("cycle {cycle}: post-crash replay failed: {e}"))?;
        if outcome.responses != baseline {
            let bad = (0..total).find(|&i| outcome.responses[i] != baseline[i]).unwrap_or(0);
            return Err(format!(
                "cycle {cycle}: post-crash replay deviates at index {bad}:\n  got  {}\n  want {}",
                outcome.responses[bad], baseline[bad]
            ));
        }
        // The request the crash interrupted completes now.
        let expected = oracle.handle_line(&line).line;
        let healed = request_once(&config.socket, &line)
            .map_err(|e| format!("cycle {cycle}: post-crash sacrificial failed: {e}"))?;
        if healed != expected {
            return Err(format!(
                "cycle {cycle}: post-crash sacrificial deviates:\n  got  {healed}\n  want {expected}"
            ));
        }
        let (_, recovered, dropped) = stats_counters(&config.socket)?;
        if dropped == 0 {
            return Err(format!(
                "cycle {cycle}: recovery dropped nothing — the torn frame went undetected"
            ));
        }
        report.recovered_entries += recovered;
        report.dropped_corrupt_entries += dropped;
        request_once(&config.socket, "{\"op\":\"shutdown\"}")
            .map_err(|e| format!("cycle {cycle}: recovery shutdown failed: {e}"))?;
        let status = daemon.reap()?;
        if !status.success() {
            return Err(format!("cycle {cycle}: recovery daemon exited dirty: {status}"));
        }
        eprintln!(
            "chaos: cycle {cycle}: panic caught, torn/crashed frames dropped, \
             replay byte-identical"
        );
    }

    // Final verdict: a clean warm daemon answers the whole workload
    // byte-identically to the never-crashed oracle.
    let daemon = Daemon::spawn(config, None)?;
    let outcome = replay_socket(
        &config.socket,
        &base,
        1,
        config.jobs,
        IdPolicy::Stream,
        RetryPolicy::default(),
    )
    .map_err(|e| format!("final replay failed: {e}"))?;
    if outcome.responses != baseline {
        let bad = (0..total).find(|&i| outcome.responses[i] != baseline[i]).unwrap_or(0);
        return Err(format!(
            "final replay deviates at index {bad}:\n  got  {}\n  want {}",
            outcome.responses[bad], baseline[bad]
        ));
    }
    request_once(&config.socket, "{\"op\":\"shutdown\"}")
        .map_err(|e| format!("final shutdown failed: {e}"))?;
    daemon.reap()?;
    report.final_responses = outcome.responses;
    Ok(report)
}

/// Writes response lines to a file (the `--out` sink).
///
/// # Errors
///
/// Reports the file path on failure.
pub fn write_responses(path: &std::path::Path, responses: &[String]) -> Result<(), String> {
    let mut out = String::with_capacity(responses.iter().map(|r| r.len() + 1).sum());
    for line in responses {
        out.push_str(line);
        out.push('\n');
    }
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(out.as_bytes()))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}
