//! The persistent, corruption-tolerant backing store for the serve cache.
//!
//! `--cache-dir` turns the in-memory LRU into a crash-only cache: every
//! insert is appended to an on-disk log, and a restart replays the log to
//! rewarm the cache. The design goals, in order:
//!
//! 1. **Never refuse to start.** Any prefix of any write sequence — a torn
//!    append, a truncated file, flipped bits, a deleted segment — recovers
//!    to *some* valid cache. Damage costs entries, never availability.
//! 2. **Never serve a corrupt payload.** Every frame carries a CRC-32 of
//!    its payload; a frame that fails the check is dropped before it can
//!    reach the cache. Recovered hits are byte-identical to cold misses by
//!    construction, because stored values are the same rendered id-free
//!    payloads the in-memory cache holds.
//! 3. **Bounded disk.** A compacting snapshot rewrites the live LRU
//!    contents into one fresh segment and deletes the older ones.
//!
//! ## On-disk format
//!
//! A cache directory holds numbered segment files:
//!
//! ```text
//! store   = segment* ;                    (* files seg-%08d.log *)
//! segment = magic frame* ;
//! magic   = "regpipe-store-v1\n" ;        (* 17 bytes *)
//! frame   = len crc payload ;             (* len, crc: u32 little-endian *)
//! crc     = CRC-32 (IEEE) of payload ;
//! payload = key-text "\n" value ;
//! key-text = ddg-hash "|" machine "|" scheduler "|" strategy
//!            "|" spill-policy "|" budget ;
//! ```
//!
//! `key-text` is exactly the text [`crate::CacheKey::stable_hash`] hashes
//! (`%016x` ddg hash; the canonical machine identity contains no `|` or
//! newline), and `value` is the rendered id-free response payload (one
//! JSON object, no interior newlines).
//!
//! ## Recovery policy
//!
//! Segments replay in index order, frames in file order; later frames for
//! a key win. Each kind of damage is contained to the smallest reasonable
//! unit:
//!
//! - **CRC mismatch** (bit flip): drop that frame, keep reading — the
//!   length field still bounds the frame, so one flipped bit costs one
//!   entry.
//! - **Structurally impossible frame** (length past end-of-file or over
//!   the frame bound — a torn append or truncation): drop the rest of the
//!   segment; everything before it is kept.
//! - **Bad magic** (wrong file, version skew, header damage): drop the
//!   whole segment.
//!
//! Every drop increments `dropped_corrupt_entries`; every replayed entry
//! increments `recovered_entries`. Opening always starts a *fresh* active
//! segment, so new appends never land after a damaged suffix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::cache::CacheKey;
use crate::fault::{self, AppendFault};

/// Magic header opening every segment file.
pub const MAGIC: &[u8] = b"regpipe-store-v1\n";

/// Upper bound on one frame's payload; anything larger is structural
/// corruption (responses are bounded far below this).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One entry replayed from disk during recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredEntry {
    /// The content address, parsed back from the frame's key text.
    pub key: CacheKey,
    /// The rendered id-free response payload, CRC-verified.
    pub payload: String,
}

/// Durability counters, reported under `store` in `stats` responses.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct StoreCounters {
    /// Entries replayed from disk at open.
    pub recovered_entries: u64,
    /// Damaged frames/suffixes/segments dropped at open (one per unit).
    pub dropped_corrupt_entries: u64,
    /// Compaction snapshots written since open.
    pub log_compactions: u64,
}

/// The append-log store: one active segment receiving appends, plus the
/// recovery and compaction machinery around it.
pub struct Store {
    dir: PathBuf,
    active: File,
    active_index: u64,
    active_appends: u64,
    counters: StoreCounters,
}

/// Renders the key text that [`CacheKey::stable_hash`] hashes.
fn key_text(key: &CacheKey) -> String {
    format!(
        "{:016x}|{}|{}|{}|{}|{}",
        key.ddg_hash, key.machine, key.scheduler, key.strategy, key.spill_policy, key.budget
    )
}

/// Parses a frame's key text back into a [`CacheKey`].
fn parse_key_text(text: &str) -> Option<CacheKey> {
    let mut parts = text.splitn(6, '|');
    let ddg_hash = u64::from_str_radix(parts.next()?, 16).ok()?;
    let machine = parts.next()?.to_string();
    let scheduler = parts.next()?.to_string();
    let strategy = parts.next()?.to_string();
    let spill_policy = parts.next()?.to_string();
    let budget = parts.next()?.parse().ok()?;
    Some(CacheKey { ddg_hash, machine, scheduler, strategy, spill_policy, budget })
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.log"))
}

/// Parses `seg-%08d.log` back to its index; `None` for foreign files.
fn segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encodes one `[len][crc][payload]` frame.
fn encode_frame(key: &CacheKey, payload: &str) -> Vec<u8> {
    let mut body = key_text(key).into_bytes();
    body.push(b'\n');
    body.extend_from_slice(payload.as_bytes());
    let mut frame = Vec::with_capacity(8 + body.len());
    frame
        .extend_from_slice(&u32::try_from(body.len()).expect("payload fits u32").to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Replays one segment's bytes, appending recovered entries and counting
/// drops. Returns without error no matter what the bytes contain.
fn recover_segment(bytes: &[u8], out: &mut Vec<RecoveredEntry>, counters: &mut StoreCounters) {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        counters.dropped_corrupt_entries += 1;
        return;
    }
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // A torn frame header: drop the suffix.
            counters.dropped_corrupt_entries += 1;
            return;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES || (len as usize) > remaining - 8 {
            // Structurally impossible: a torn append or truncation. Drop
            // the suffix — nothing after it can be trusted to align.
            counters.dropped_corrupt_entries += 1;
            return;
        }
        let body = &bytes[pos + 8..pos + 8 + len as usize];
        pos += 8 + len as usize;
        if crc32(body) != crc {
            // One damaged frame; the length still bounds it, so skip
            // exactly this entry and keep reading.
            counters.dropped_corrupt_entries += 1;
            continue;
        }
        let parsed = std::str::from_utf8(body).ok().and_then(|text| {
            let (key_text, payload) = text.split_once('\n')?;
            Some(RecoveredEntry {
                key: parse_key_text(key_text)?,
                payload: payload.to_string(),
            })
        });
        match parsed {
            Some(entry) => {
                counters.recovered_entries += 1;
                out.push(entry);
            }
            None => counters.dropped_corrupt_entries += 1,
        }
    }
}

/// Best-effort directory fsync (segment creates/deletes are metadata).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Store {
    /// Opens (creating if needed) the store in `dir`, replaying every
    /// segment. The returned entries are in replay order — insert them
    /// into the cache in order, so later frames win and recency matches
    /// append order. A fresh active segment is always started.
    ///
    /// # Errors
    ///
    /// Only on environmental failures (directory not creatable, new
    /// segment not writable). Corrupt *content* never errors — it is
    /// dropped and counted instead.
    pub fn open(dir: &Path) -> io::Result<(Store, Vec<RecoveredEntry>)> {
        fs::create_dir_all(dir)?;
        let mut indices: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_index(e.file_name().to_str()?))
            .collect();
        indices.sort_unstable();

        let mut counters = StoreCounters::default();
        let mut entries = Vec::new();
        for &index in &indices {
            match fs::read(segment_path(dir, index)) {
                Ok(bytes) => recover_segment(&bytes, &mut entries, &mut counters),
                Err(_) => counters.dropped_corrupt_entries += 1,
            }
        }

        let active_index = indices.last().map_or(0, |last| last + 1);
        let mut active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(dir, active_index))?;
        active.write_all(MAGIC)?;
        active.sync_data()?;
        sync_dir(dir);

        let store =
            Store { dir: dir.to_path_buf(), active, active_index, active_appends: 0, counters };
        Ok((store, entries))
    }

    /// Appends one entry to the active segment and fsyncs it. This is the
    /// fault-injection point: an armed [`crate::fault`] plan may tear,
    /// flip, shorten or crash this write (see the module docs there).
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; the entry stays cached in memory
    /// either way.
    pub fn append(&mut self, key: &CacheKey, payload: &str) -> io::Result<()> {
        let mut frame = encode_frame(key, payload);
        self.active_appends += 1;
        if let Some(injected) = fault::global().and_then(|f| f.on_append()) {
            match injected {
                AppendFault::Short(r) => {
                    // A short write the store *sees*: repair by truncating
                    // the partial frame off the log. The entry is simply
                    // not persisted; the log stays clean.
                    let start = self.active.seek(SeekFrom::End(0))?;
                    let cut = 1 + (r as usize % (frame.len() - 1));
                    self.active.write_all(&frame[..cut])?;
                    self.active.set_len(start)?;
                    self.active.seek(SeekFrom::End(0))?;
                    self.active.sync_data()?;
                    return Ok(());
                }
                AppendFault::Torn(r) => {
                    // A silent partial write: the torn frame stays on disk
                    // for recovery to find.
                    let cut = 1 + (r as usize % (frame.len() - 1));
                    frame.truncate(cut);
                }
                AppendFault::Flip(r) => {
                    // Flip inside the payload (past the 8-byte header),
                    // so recovery loses exactly one entry, not a suffix.
                    let bit = r as usize % ((frame.len() - 8) * 8);
                    frame[8 + bit / 8] ^= 1 << (bit % 8);
                }
                AppendFault::Crash(r) => {
                    // kill -9 mid-write: persist part of the frame, then
                    // die without unwinding.
                    let cut = 1 + (r as usize % (frame.len() - 1));
                    let _ = self.active.write_all(&frame[..cut]);
                    let _ = self.active.sync_data();
                    std::process::abort();
                }
            }
        }
        self.active.write_all(&frame)?;
        self.fsync_active()
    }

    /// Appends made to the active segment since open or last compaction
    /// (the server's compaction trigger).
    pub fn active_appends(&self) -> u64 {
        self.active_appends
    }

    /// Writes a compaction snapshot: all `live` entries (oldest-first, so
    /// replay rebuilds recency) into one fresh segment, then deletes every
    /// older segment. Crash-ordering: the new segment is fsynced *before*
    /// any delete, so a crash anywhere leaves at least one complete copy.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures from the new segment; deletion
    /// failures of old segments are ignored (they are re-candidates for
    /// the next compaction).
    pub fn compact(&mut self, live: &[(CacheKey, String)]) -> io::Result<()> {
        let new_index = self.active_index + 1;
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, new_index))?;
        file.write_all(MAGIC)?;
        for (key, payload) in live {
            file.write_all(&encode_frame(key, payload))?;
        }
        file.sync_data()?;
        sync_dir(&self.dir);
        for index in 0..new_index {
            let _ = fs::remove_file(segment_path(&self.dir, index));
        }
        sync_dir(&self.dir);
        self.active = file;
        self.active_index = new_index;
        self.active_appends = 0;
        self.counters.log_compactions += 1;
        Ok(())
    }

    /// Fsyncs the active segment (shutdown and post-append durability).
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.fsync_active()
    }

    fn fsync_active(&mut self) -> io::Result<()> {
        if fault::global().is_some_and(|f| f.on_fsync()) {
            return Ok(());
        }
        self.active.sync_data()
    }

    /// Durability counters since open.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("regpipe-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u32) -> CacheKey {
        CacheKey {
            ddg_hash: 0x1234_5678_9abc_def0 ^ u64::from(n),
            machine: "uniform;u=2,2,2,2,;l=2,2,2,4,4,1,;p=1111".into(),
            scheduler: "hrms".into(),
            strategy: "best".into(),
            spill_policy: "paper".into(),
            budget: 16 + n,
        }
    }

    fn payload(n: u32) -> String {
        format!("{{\"ok\":true,\"loop\":\"l{n}\",\"ii\":{}}}", n + 2)
    }

    fn seed(dir: &Path, n: u32) {
        let (mut store, recovered) = Store::open(dir).unwrap();
        assert!(recovered.is_empty());
        for i in 0..n {
            store.append(&key(i), &payload(i)).unwrap();
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = tmp("roundtrip");
        seed(&dir, 3);
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.len(), 3);
        for (i, entry) in recovered.iter().enumerate() {
            let i = u32::try_from(i).unwrap();
            assert_eq!(entry.key, key(i));
            assert_eq!(entry.payload, payload(i));
        }
        let c = store.counters();
        assert_eq!((c.recovered_entries, c.dropped_corrupt_entries), (3, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_text_parses_back_exactly() {
        let k = key(7);
        assert_eq!(parse_key_text(&key_text(&k)), Some(k));
        assert_eq!(parse_key_text("not a key"), None);
        assert_eq!(parse_key_text("0123|m|s"), None);
        // Pre-spill-policy five-component keys no longer parse: stale
        // entries are dropped at recovery rather than aliased to a policy.
        assert_eq!(parse_key_text("0123|m|hrms|best|32"), None);
    }

    #[test]
    fn truncation_drops_only_the_suffix() {
        let dir = tmp("trunc");
        seed(&dir, 3);
        // Tear the tail of the first (only) data segment.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 5).unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2, "the first two frames survive");
        let c = store.counters();
        assert_eq!((c.recovered_entries, c.dropped_corrupt_entries), (2, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_flipped_bit_costs_exactly_one_entry() {
        let dir = tmp("flip");
        seed(&dir, 3);
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        // Flip a bit inside the *second* frame's payload.
        let first_len =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap())
                as usize;
        let second = MAGIC.len() + 8 + first_len;
        bytes[second + 12] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].key, key(0));
        assert_eq!(recovered[1].key, key(2), "the frame after the damage survives");
        let c = store.counters();
        assert_eq!((c.recovered_entries, c.dropped_corrupt_entries), (2, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_and_bad_magic_drop_the_segment_not_the_store() {
        let dir = tmp("garbage");
        seed(&dir, 2);
        fs::write(dir.join("seg-00000009.log"), b"not a segment at all").unwrap();
        fs::write(dir.join("README.txt"), b"ignored: not a segment name").unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        let c = store.counters();
        assert_eq!((c.recovered_entries, c.dropped_corrupt_entries), (2, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn impossible_length_drops_the_suffix() {
        let dir = tmp("length");
        seed(&dir, 2);
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        // Claim the first frame extends past end-of-file.
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&seg, &bytes).unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.counters().dropped_corrupt_entries, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_collapses_segments_and_preserves_content() {
        let dir = tmp("compact");
        seed(&dir, 2); // segment 0
        drop(Store::open(&dir).unwrap()); // segment 1 (header only)
        let (mut store, recovered) = Store::open(&dir).unwrap(); // segment 2
        assert_eq!(recovered.len(), 2);
        let live: Vec<(CacheKey, String)> =
            recovered.into_iter().map(|e| (e.key, e.payload)).collect();
        store.compact(&live).unwrap();
        assert_eq!(store.counters().log_compactions, 1);
        let names: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| segment_index(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        assert_eq!(names, vec![3], "one snapshot segment remains");
        let (_, again) = Store::open(&dir).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again[0].payload, payload(0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_frames_win_for_a_duplicated_key() {
        let dir = tmp("dup");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.append(&key(1), "old").unwrap();
            store.append(&key(1), "new").unwrap();
        }
        let (_, recovered) = Store::open(&dir).unwrap();
        // Replay order is append order, so the newest frame is replayed
        // last (in real operation payloads for one key are identical —
        // compiles are deterministic — so which one wins is moot).
        assert_eq!(recovered.last().unwrap().payload, "new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 test vectors ("123456789" is the classic check).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
