//! The serve benchmark: drives a generated corpus through an in-process
//! [`Server`] and reports throughput, hit rate, and latency percentiles
//! as `BENCH_serve.json` (schema `regpipe-bench-serve/v2`).
//!
//! Like every report in this workspace, the default output contains only
//! deterministic fields (request counts, hit/miss/eviction totals, the
//! configuration); wall-clock numbers — throughput and percentiles —
//! appear only when `REGPIPE_BENCH_TIMING=1`, so committed reports diff
//! cleanly run to run.

use std::num::NonZeroUsize;

use regpipe_core::{SpillPolicyKind, Strategy};
use regpipe_exec::json::Value;
use regpipe_exec::strategy_slug;
use regpipe_sched::SchedulerKind;

use crate::replay::{base_requests, replay_in_process, IdPolicy, ReplayConfig, ReplaySource};
use crate::server::{ServeOptions, Server};

/// Environment variable that opts wall-clock fields into bench reports
/// (same switch as the compile benchmark).
pub const TIMING_ENV: &str = "REGPIPE_BENCH_TIMING";

/// Configuration of one serve-benchmark run.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Generator seed for the workload.
    pub seed: u64,
    /// Number of generated kernels.
    pub count: usize,
    /// Number of passes over the request stream (pass 2+ exercise the
    /// cache hit path).
    pub repeat: usize,
    /// Register budgets (each kernel is requested once per budget per
    /// pass).
    pub budgets: Vec<u32>,
    /// Strategy for every request.
    pub strategy: Strategy,
    /// Scheduler for every request.
    pub scheduler: SchedulerKind,
    /// Spill policy for every request.
    pub spill_policy: SpillPolicyKind,
    /// Machine spec for every request.
    pub machine_spec: String,
    /// Client-side concurrency.
    pub jobs: NonZeroUsize,
    /// Whether the daemon cache is enabled.
    pub cache: bool,
    /// Whether to include wall-clock fields in the report.
    pub timed: bool,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            seed: 0xC1DA,
            count: 100,
            repeat: 2,
            budgets: vec![64, 32],
            strategy: Strategy::BestOfAll,
            scheduler: SchedulerKind::default(),
            spill_policy: SpillPolicyKind::default(),
            machine_spec: "p2l4".to_string(),
            jobs: NonZeroUsize::new(1).unwrap(),
            cache: true,
            timed: false,
        }
    }
}

/// Wall-clock results (only present when timing is opted in).
#[derive(Clone, Copy, Debug)]
pub struct ServeTiming {
    /// Total wall time of all passes, microseconds.
    pub total_wall_us: u64,
    /// Answered requests per wall-clock second.
    pub compiles_per_sec: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: u64,
}

/// The serve-benchmark report.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// The configuration that produced it.
    pub config: ServeBenchConfig,
    /// Total requests answered (`count × budgets × repeat`).
    pub requests: u64,
    /// Responses with `"status":"fitted"`.
    pub fitted: u64,
    /// Responses with `"status":"failed"`.
    pub failed: u64,
    /// Cache hits across all passes.
    pub hits: u64,
    /// Cache misses across all passes.
    pub misses: u64,
    /// Cache evictions across all passes.
    pub evictions: u64,
    /// `hits / requests` (0 when no requests ran).
    pub hit_rate: f64,
    /// Wall-clock results, when opted in.
    pub timing: Option<ServeTiming>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the benchmark: builds the request stream, answers it in-process
/// for `repeat` passes (barrier between passes), and tallies the result.
///
/// # Errors
///
/// Reports generator failures.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    let replay_config = ReplayConfig {
        budgets: config.budgets.clone(),
        strategy: config.strategy,
        scheduler: config.scheduler,
        spill_policy: config.spill_policy,
        machine_spec: Some(config.machine_spec.clone()),
    };
    let source = ReplaySource::Gen { seed: config.seed, count: config.count };
    let base = base_requests(&source, &replay_config)?;
    let server = Server::new(ServeOptions { cache: config.cache, ..ServeOptions::default() });
    let outcome =
        replay_in_process(&server, &base, config.repeat, config.jobs, IdPolicy::Stream);

    let requests = outcome.responses.len() as u64;
    let fitted =
        outcome.responses.iter().filter(|r| r.contains("\"status\":\"fitted\"")).count() as u64;
    let failed =
        outcome.responses.iter().filter(|r| r.contains("\"status\":\"failed\"")).count() as u64;
    let totals = server.cache_totals();
    let hit_rate = if requests > 0 { totals.hits as f64 / requests as f64 } else { 0.0 };
    let timing = if config.timed {
        let mut sorted = outcome.latencies_us.clone();
        sorted.sort_unstable();
        let wall_secs = outcome.wall_us as f64 / 1e6;
        ServeTiming {
            total_wall_us: outcome.wall_us,
            compiles_per_sec: if wall_secs > 0.0 { requests as f64 / wall_secs } else { 0.0 },
            p50_us: percentile(&sorted, 0.50),
            p99_us: percentile(&sorted, 0.99),
        }
        .into()
    } else {
        None
    };
    Ok(ServeBenchReport {
        config: config.clone(),
        requests,
        fitted,
        failed,
        hits: totals.hits,
        misses: totals.misses,
        evictions: totals.evictions,
        hit_rate,
        timing,
    })
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

impl ServeBenchReport {
    /// Renders the report as the `BENCH_serve.json` document (schema
    /// `regpipe-bench-serve/v2`; v2 added the `spill_policy` field).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut pairs = vec![
            ("schema".to_string(), Value::Str("regpipe-bench-serve/v2".into())),
            ("seed".to_string(), Value::uint(c.seed)),
            ("count".to_string(), Value::uint(c.count as u64)),
            ("repeat".to_string(), Value::uint(c.repeat as u64)),
            (
                "budgets".to_string(),
                Value::Array(c.budgets.iter().map(|&b| Value::uint(u64::from(b))).collect()),
            ),
            ("machine".to_string(), Value::Str(c.machine_spec.clone())),
            ("scheduler".to_string(), Value::Str(c.scheduler.slug().into())),
            ("strategy".to_string(), Value::Str(strategy_slug(c.strategy).into())),
            ("spill_policy".to_string(), Value::Str(c.spill_policy.slug().into())),
            ("cache".to_string(), Value::Bool(c.cache)),
            ("requests".to_string(), Value::uint(self.requests)),
            ("fitted".to_string(), Value::uint(self.fitted)),
            ("failed".to_string(), Value::uint(self.failed)),
            ("hits".to_string(), Value::uint(self.hits)),
            ("misses".to_string(), Value::uint(self.misses)),
            ("evictions".to_string(), Value::uint(self.evictions)),
            (
                "hit_rate".to_string(),
                Value::finite(round4(self.hit_rate)).expect("hit rate is finite"),
            ),
        ];
        if let Some(t) = &self.timing {
            pairs.push(("jobs".to_string(), Value::uint(c.jobs.get() as u64)));
            pairs.push(("total_wall_us".to_string(), Value::uint(t.total_wall_us)));
            pairs.push((
                "compiles_per_sec".to_string(),
                Value::finite(round2(t.compiles_per_sec)).expect("throughput is finite"),
            ));
            pairs.push(("p50_latency_us".to_string(), Value::uint(t.p50_us)));
            pairs.push(("p99_latency_us".to_string(), Value::uint(t.p99_us)));
        }
        Value::Object(pairs).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_exec::json::parse as parse_json;

    fn small() -> ServeBenchConfig {
        ServeBenchConfig { count: 8, budgets: vec![32], ..ServeBenchConfig::default() }
    }

    #[test]
    fn untimed_reports_are_deterministic_and_account_for_every_request() {
        let a = run_serve_bench(&small()).unwrap();
        let b = run_serve_bench(&small()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.requests, 16, "8 kernels x 1 budget x 2 passes");
        assert_eq!(a.fitted + a.failed, a.requests);
        assert_eq!(a.hits + a.misses, a.requests);
        assert_eq!(a.misses, 8, "pass 1 misses once per key");
        assert_eq!(a.hit_rate, 0.5);
        assert!(!a.to_json().contains("total_wall_us"));
        parse_json(&a.to_json()).expect("report is valid JSON");
    }

    #[test]
    fn timed_reports_add_wall_fields() {
        let report = run_serve_bench(&ServeBenchConfig { timed: true, ..small() }).unwrap();
        let doc = parse_json(&report.to_json()).unwrap();
        assert!(doc.get("compiles_per_sec").is_some());
        assert!(doc.get("p50_latency_us").is_some());
        assert!(doc.get("p99_latency_us").is_some());
        let t = report.timing.unwrap();
        assert!(t.p50_us <= t.p99_us);
    }

    #[test]
    fn cache_off_reports_zero_hits() {
        let report = run_serve_bench(&ServeBenchConfig { cache: false, ..small() }).unwrap();
        assert_eq!((report.hits, report.misses), (0, 0));
        assert_eq!(report.hit_rate, 0.0);
        assert_eq!(report.requests, 16);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
