//! The replay load-driver: turns a workload source into a deterministic
//! request stream and drives it at a daemon, in-process or over a unix
//! socket, with client-side concurrency.
//!
//! Determinism contract: the *response stream* (in request order) is a
//! pure function of the workload and per-request options — independent of
//! `--jobs`, of the transport, and of whether the daemon's cache is on.
//! Passes run with a barrier between them (pass `p+1` starts only after
//! every request of pass `p` answered), so cache hit/miss totals are
//! also deterministic: with an adequate cache, pass 1 misses once per
//! distinct key and every later pass hits.

use std::io::{self, BufRead, BufReader, Write};
use std::num::NonZeroUsize;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::{Duration, Instant};

use regpipe_core::{SpillPolicyKind, Strategy};
use regpipe_ddg::textfmt;
use regpipe_exec::json::Value;
use regpipe_exec::{parallel_map, strategy_slug};
use regpipe_loops::{generate, suite, BenchLoop, GenParams};
use regpipe_sched::SchedulerKind;

use crate::server::{attach_id, Server};

/// Per-request options shared by every line a replay builds.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Register budgets; each loop is requested once per budget.
    pub budgets: Vec<u32>,
    /// Strategy sent with every request.
    pub strategy: Strategy,
    /// Scheduler sent with every request.
    pub scheduler: SchedulerKind,
    /// Spill policy sent with every request.
    pub spill_policy: SpillPolicyKind,
    /// Machine spec sent with every request; `None` omits the field and
    /// uses the daemon's default.
    pub machine_spec: Option<String>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            budgets: vec![32],
            strategy: Strategy::BestOfAll,
            scheduler: SchedulerKind::default(),
            spill_policy: SpillPolicyKind::default(),
            machine_spec: None,
        }
    }
}

/// Where the replayed workload comes from.
#[derive(Clone, Debug)]
pub enum ReplaySource {
    /// The seeded synthetic generator (`regpipe gen` semantics).
    Gen {
        /// Generator seed.
        seed: u64,
        /// Number of kernels.
        count: usize,
    },
    /// The seeded benchmark suite (`regpipe suite` semantics).
    Suite {
        /// Suite seed.
        seed: u64,
        /// Suite size.
        size: usize,
    },
    /// A file of raw request lines, sent verbatim (blank lines skipped);
    /// ids are the caller's responsibility in this mode.
    File(String),
}

/// One pass of id-free request lines for `loops × budgets`.
pub fn requests_from_loops(loops: &[BenchLoop], config: &ReplayConfig) -> Vec<String> {
    let mut out = Vec::with_capacity(loops.len() * config.budgets.len());
    for l in loops {
        let text = textfmt::format(&l.ddg);
        for &budget in &config.budgets {
            let mut pairs = vec![
                ("op".to_string(), Value::Str("compile".into())),
                ("ddg".to_string(), Value::Str(text.clone())),
                ("budget".to_string(), Value::uint(u64::from(budget))),
                ("strategy".to_string(), Value::Str(strategy_slug(config.strategy).into())),
                ("scheduler".to_string(), Value::Str(config.scheduler.slug().into())),
                ("spill_policy".to_string(), Value::Str(config.spill_policy.slug().into())),
            ];
            if let Some(spec) = &config.machine_spec {
                pairs.push(("machine".to_string(), Value::Str(spec.clone())));
            }
            out.push(Value::Object(pairs).render());
        }
    }
    out
}

/// Builds the base (single-pass) request stream for a source.
///
/// `Gen`/`Suite` requests are id-free — the replay drivers assign stream
/// ids; `File` lines are passed through verbatim.
///
/// # Errors
///
/// Reports generator or file I/O failures.
pub fn base_requests(
    source: &ReplaySource,
    config: &ReplayConfig,
) -> Result<Vec<String>, String> {
    match source {
        ReplaySource::Gen { seed, count } => {
            let loops = generate(*seed, *count, &GenParams::default())?;
            Ok(requests_from_loops(&loops, config))
        }
        ReplaySource::Suite { seed, size } => {
            Ok(requests_from_loops(&suite(*seed, *size), config))
        }
        ReplaySource::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(text.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect())
        }
    }
}

/// Client-side retry policy for socket replays (`--retry`,
/// `--backoff-ms`). A failed request — connect error, write error, or a
/// connection closed before its response — is retried on a *fresh*
/// connection after an exponential backoff with deterministic, seeded
/// jitter, so retry timing is reproducible run to run.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request; `1` means no retries.
    pub attempts: u32,
    /// Base backoff in milliseconds; doubles with each further attempt.
    pub backoff_ms: u64,
    /// Seed for the jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 1, backoff_ms: 50, seed: 0 }
    }
}

impl RetryPolicy {
    /// The sleep before retrying request `request_index` after failed
    /// `attempt` (1-based): `backoff_ms * 2^(attempt-1)` plus a seeded
    /// jitter of up to half that, capped at a 64x base multiplier.
    pub fn delay(&self, request_index: usize, attempt: u32) -> Duration {
        let base = self.backoff_ms.saturating_mul(1 << attempt.clamp(1, 7).saturating_sub(1));
        let jitter = if base == 0 {
            0
        } else {
            crate::fault::splitmix(
                self.seed
                    ^ (request_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ u64::from(attempt),
            ) % (base / 2 + 1)
        };
        Duration::from_millis(base + jitter)
    }
}

/// Whether the driver splices stream-index ids into the base requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdPolicy {
    /// Attach `id = pass * base.len() + index` to every request.
    Stream,
    /// Send lines exactly as built (for [`ReplaySource::File`]).
    Verbatim,
}

/// The result of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Response lines in request-stream order (pass-major).
    pub responses: Vec<String>,
    /// Per-request round-trip latencies in microseconds, same order.
    /// Wall-clock derived — report only behind the timing opt-in.
    pub latencies_us: Vec<u64>,
    /// Total wall time of the driven passes, microseconds.
    pub wall_us: u64,
}

fn request_line(base: &[String], ids: IdPolicy, pass: usize, index: usize) -> String {
    match ids {
        IdPolicy::Verbatim => base[index].clone(),
        IdPolicy::Stream => attach_id(Some((pass * base.len() + index) as i64), &base[index]),
    }
}

/// Replays `base` against an in-process [`Server`] for `repeat` passes at
/// `jobs`-way concurrency, with a barrier between passes.
pub fn replay_in_process(
    server: &Server,
    base: &[String],
    repeat: usize,
    jobs: NonZeroUsize,
    ids: IdPolicy,
) -> ReplayOutcome {
    let started = Instant::now();
    let mut responses = Vec::with_capacity(base.len() * repeat);
    let mut latencies = Vec::with_capacity(base.len() * repeat);
    for pass in 0..repeat {
        let answered = parallel_map(base, jobs, |index, _line| {
            let line = request_line(base, ids, pass, index);
            let t0 = Instant::now();
            let response = server.handle_line(&line);
            (response.line, t0.elapsed().as_micros() as u64)
        });
        for (line, us) in answered {
            responses.push(line);
            latencies.push(us);
        }
    }
    ReplayOutcome {
        responses,
        latencies_us: latencies,
        wall_us: started.elapsed().as_micros() as u64,
    }
}

/// Replays `base` against the daemon listening on the unix socket at
/// `path` for `repeat` passes, `jobs` client connections per pass, with a
/// barrier between passes.
///
/// Each worker owns one connection and drives its share of the stream
/// (indices `w, w + jobs, ...`) in lockstep — send one line, read one
/// line — so responses pair with requests positionally and pipe buffers
/// cannot deadlock. The reassembled response stream is in request order.
///
/// A request that fails (connect/write error, or the daemon closing the
/// connection before answering) is retried per `retry` on a fresh
/// connection; `RetryPolicy::default()` keeps the historical
/// fail-immediately behaviour.
///
/// # Errors
///
/// Propagates the final connection/I-O failure of any request whose
/// attempts are exhausted.
#[cfg(unix)]
pub fn replay_socket(
    path: &Path,
    base: &[String],
    repeat: usize,
    jobs: NonZeroUsize,
    ids: IdPolicy,
    retry: RetryPolicy,
) -> io::Result<ReplayOutcome> {
    let jobs = jobs.get();
    let total = base.len() * repeat;
    let mut responses = vec![String::new(); total];
    let mut latencies = vec![0u64; total];
    let started = Instant::now();
    for pass in 0..repeat {
        let worker_results: Vec<io::Result<Vec<(usize, String, u64)>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut conn: Option<(UnixStream, BufReader<UnixStream>)> = None;
                            let mut out = Vec::new();
                            let mut index = w;
                            while index < base.len() {
                                let line = request_line(base, ids, pass, index);
                                let global = pass * base.len() + index;
                                let mut attempt = 0u32;
                                let (reply, us) = loop {
                                    attempt += 1;
                                    let result = send_one(path, &mut conn, &line);
                                    match result {
                                        Ok(ok) => break ok,
                                        Err(e) => {
                                            // The connection is suspect
                                            // either way: rebuild it.
                                            conn = None;
                                            if attempt >= retry.attempts.max(1) {
                                                return Err(e);
                                            }
                                            std::thread::sleep(retry.delay(global, attempt));
                                        }
                                    }
                                };
                                out.push((global, reply, us));
                                index += jobs;
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("replay worker panicked")).collect()
            });
        for result in worker_results {
            for (slot, line, us) in result? {
                responses[slot] = line;
                latencies[slot] = us;
            }
        }
    }
    Ok(ReplayOutcome {
        responses,
        latencies_us: latencies,
        wall_us: started.elapsed().as_micros() as u64,
    })
}

/// One send/receive round-trip, (re)connecting if `conn` is empty.
#[cfg(unix)]
fn send_one(
    path: &Path,
    conn: &mut Option<(UnixStream, BufReader<UnixStream>)>,
    line: &str,
) -> io::Result<(String, u64)> {
    if conn.is_none() {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        *conn = Some((stream, reader));
    }
    let (stream, reader) = conn.as_mut().expect("connection just established");
    let t0 = Instant::now();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection mid-replay",
        ));
    }
    Ok((reply.trim_end_matches('\n').to_string(), t0.elapsed().as_micros() as u64))
}

/// Sends one request line over the socket and returns the response line
/// (used for `stats` and `shutdown` after a replay).
///
/// # Errors
///
/// Propagates connection and I/O failures.
#[cfg(unix)]
pub fn request_once(path: &Path, line: &str) -> io::Result<String> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end_matches('\n').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeOptions;
    use regpipe_exec::json::parse as parse_json;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn request_streams_are_deterministic() {
        let cfg = ReplayConfig { budgets: vec![64, 32], ..ReplayConfig::default() };
        let src = ReplaySource::Gen { seed: 7, count: 10 };
        let a = base_requests(&src, &cfg).unwrap();
        let b = base_requests(&src, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20, "loops x budgets");
        for line in &a {
            let doc = parse_json(line).unwrap();
            assert_eq!(doc.get("op").unwrap().as_str(), Some("compile"));
            assert!(doc.get("id").is_none(), "base requests are id-free");
        }
    }

    #[test]
    fn in_process_replay_is_jobs_invariant_and_second_pass_hits() {
        let cfg = ReplayConfig::default();
        let base = base_requests(&ReplaySource::Gen { seed: 7, count: 12 }, &cfg).unwrap();

        let s1 = Server::new(ServeOptions::default());
        let r1 = replay_in_process(&s1, &base, 2, nz(1), IdPolicy::Stream);
        let s4 = Server::new(ServeOptions::default());
        let r4 = replay_in_process(&s4, &base, 2, nz(4), IdPolicy::Stream);
        assert_eq!(r1.responses, r4.responses, "client concurrency must not change bytes");

        let snocache = Server::new(ServeOptions { cache: false, ..ServeOptions::default() });
        let r0 = replay_in_process(&snocache, &base, 2, nz(3), IdPolicy::Stream);
        assert_eq!(r1.responses, r0.responses, "cache must not change bytes");

        // Pass 1 misses each distinct key once; pass 2 hits every request.
        let stats = parse_json(&s1.stats_payload()).unwrap();
        let totals = stats.get("totals").unwrap();
        let hits = totals.get("hits").unwrap().as_i64().unwrap();
        let misses = totals.get("misses").unwrap().as_i64().unwrap();
        assert_eq!(misses, base.len() as i64);
        assert_eq!(hits, base.len() as i64);
        assert_eq!(hits + misses, stats.get("compile_requests").unwrap().as_i64().unwrap());
    }

    #[test]
    fn retry_delays_are_deterministic_and_grow() {
        let p = RetryPolicy { attempts: 4, backoff_ms: 10, seed: 7 };
        assert_eq!(p.delay(3, 1), p.delay(3, 1), "same draw, same delay");
        assert_ne!(
            RetryPolicy { seed: 8, ..p }.delay(3, 1),
            p.delay(3, 1),
            "the jitter is seeded"
        );
        for attempt in 1..=3u32 {
            let base = 10u64 << (attempt - 1);
            let d = p.delay(0, attempt).as_millis() as u64;
            assert!(d >= base && d <= base + base / 2, "attempt {attempt}: {d}ms");
        }
        // Degenerate configurations stay sane.
        assert_eq!(RetryPolicy { backoff_ms: 0, ..p }.delay(0, 1), std::time::Duration::ZERO);
        let _ = p.delay(usize::MAX, u32::MAX);
    }

    #[test]
    fn stream_ids_count_through_passes() {
        let base = vec!["{\"op\":\"ping\"}".to_string(); 3];
        assert_eq!(request_line(&base, IdPolicy::Stream, 0, 2), "{\"id\":2,\"op\":\"ping\"}");
        assert_eq!(request_line(&base, IdPolicy::Stream, 1, 0), "{\"id\":3,\"op\":\"ping\"}");
        assert_eq!(request_line(&base, IdPolicy::Verbatim, 1, 0), "{\"op\":\"ping\"}");
    }
}
