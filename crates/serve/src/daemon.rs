//! Transport loops: JSON lines over stdin/stdout or a unix socket.
//!
//! Both transports share [`serve_connection`]: read one bounded line,
//! answer it, flush, repeat until EOF or an acknowledged `shutdown`. The
//! reader never buffers more than [`Server::max_request_bytes`] of one
//! line — an oversized request is *drained* (consumed chunk by chunk up
//! to its newline, discarding the excess) and answered with a structured
//! error, so a misbehaving client cannot balloon daemon memory or wedge
//! the framing.

use std::io::{self, BufRead, Write};

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;

use crate::server::Server;

/// One bounded read from a JSON-lines stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadLine {
    /// Clean end of stream (no pending partial line).
    Eof,
    /// A complete line within the byte bound (without its newline).
    Line(String),
    /// A line longer than the bound; its content was discarded. Carries
    /// the number of bytes the client actually sent.
    Oversized(usize),
}

/// Reads one `\n`-terminated line, never holding more than `max_bytes`
/// of it in memory. A final unterminated line is returned as a normal
/// line (EOF acts as the terminator).
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_request_line<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if total == 0 {
                return Ok(ReadLine::Eof);
            }
            break;
        }
        let (chunk_len, found_newline) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i, true),
            None => (available.len(), false),
        };
        // Stop accumulating once the bound is reached; the rest of the
        // line is consumed but never stored.
        let keep = chunk_len.min(max_bytes.saturating_sub(total));
        buf.extend_from_slice(&available[..keep]);
        total += chunk_len;
        let consumed = chunk_len + usize::from(found_newline);
        reader.consume(consumed);
        if found_newline {
            break;
        }
    }
    if total > max_bytes {
        Ok(ReadLine::Oversized(total))
    } else {
        Ok(ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()))
    }
}

/// Serves one JSON-lines connection until EOF or shutdown: every
/// non-blank line gets exactly one response line, flushed immediately.
///
/// The connection registers itself for the server's drain accounting.
/// Once a shutdown has been acknowledged anywhere, the connection closes
/// after finishing (and answering) its current request — an in-flight
/// compile always completes, it is never reset mid-response.
///
/// # Errors
///
/// Propagates I/O errors from the transport.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<()> {
    let _tracked = server.track_connection();
    loop {
        match read_request_line(reader, server.max_request_bytes())? {
            ReadLine::Eof => return Ok(()),
            ReadLine::Oversized(got) => {
                writeln!(writer, "{}", server.oversized_response(got))?;
                writer.flush()?;
            }
            ReadLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = server.handle_line(&line);
                writeln!(writer, "{}", response.line)?;
                writer.flush()?;
                if response.shutdown || server.is_shutdown() {
                    return Ok(());
                }
            }
        }
    }
}

/// Runs the daemon over stdin/stdout until EOF or `shutdown`.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdin(server: &Server) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(server, &mut stdin.lock(), &mut stdout.lock())
}

/// Claims the socket path for a new daemon. An existing file is removed
/// only when it provably belongs to a *dead* daemon: it must be a unix
/// socket AND connecting to it must be refused. A live daemon (connect
/// succeeds) or a foreign file (not a socket) is an error — never
/// silently unlinked.
///
/// # Errors
///
/// `AddrInUse` for a live daemon, `InvalidInput` for a non-socket file;
/// probe/remove I/O errors pass through.
#[cfg(unix)]
pub fn claim_socket(path: &Path) -> io::Result<()> {
    use std::os::unix::fs::FileTypeExt as _;
    let meta = match std::fs::symlink_metadata(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
        Ok(meta) => meta,
    };
    if !meta.file_type().is_socket() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} exists and is not a socket; refusing to replace it", path.display()),
        ));
    }
    match UnixStream::connect(path) {
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("a daemon is already listening on {}", path.display()),
        )),
        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
            // A socket nobody accepts on: the previous daemon died
            // without cleaning up. Safe to reclaim.
            std::fs::remove_file(path)
        }
        Err(e) => Err(e),
    }
}

/// Runs the daemon on a unix socket at `path` (a provably-stale socket
/// file is reclaimed, see [`claim_socket`]), one thread per connection,
/// until a client's `shutdown` request is acknowledged. Shutdown then
/// *drains*: other in-flight connections get up to
/// [`Server::drain_ms`] to finish their current request, after which
/// any stragglers are closed forcibly. The socket file is removed on
/// exit.
///
/// # Errors
///
/// Propagates claim and bind errors; per-connection I/O errors only end
/// that connection.
#[cfg(unix)]
pub fn serve_socket(server: &Server, path: &Path) -> io::Result<()> {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    claim_socket(path)?;
    let listener = UnixListener::bind(path)?;
    // Every live connection's stream, so the drain can close stragglers.
    let registry: Mutex<HashMap<u64, UnixStream>> = Mutex::new(HashMap::new());
    let mut next_id = 0u64;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if server.is_shutdown() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let id = next_id;
            next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                registry.lock().expect("connection registry poisoned").insert(id, clone);
            }
            let registry = &registry;
            scope.spawn(move || {
                let mut reader = io::BufReader::new(match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => return,
                });
                let mut writer = &stream;
                let _ = serve_connection(server, &mut reader, &mut writer);
                registry.lock().expect("connection registry poisoned").remove(&id);
                if server.is_shutdown() {
                    // Wake the blocking accept loop so it observes the flag.
                    let _ = UnixStream::connect(path);
                }
            });
        }
        // Bounded drain: let in-flight requests complete, then force the
        // rest closed so the scope's joins cannot hang on idle clients.
        let deadline = Instant::now() + Duration::from_millis(server.drain_ms());
        while server.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for (_, conn) in registry.lock().expect("connection registry poisoned").drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeOptions;

    #[test]
    fn bounded_reader_splits_lines_and_flags_oversized_ones() {
        let text = b"short\n".to_vec();
        let mut r = io::BufReader::new(&text[..]);
        assert_eq!(read_request_line(&mut r, 16).unwrap(), ReadLine::Line("short".into()));
        assert_eq!(read_request_line(&mut r, 16).unwrap(), ReadLine::Eof);

        let long = format!("{}\nafter\n", "x".repeat(100));
        let mut r = io::BufReader::with_capacity(8, long.as_bytes());
        assert_eq!(read_request_line(&mut r, 16).unwrap(), ReadLine::Oversized(100));
        // Framing survives: the next line is intact.
        assert_eq!(read_request_line(&mut r, 16).unwrap(), ReadLine::Line("after".into()));
    }

    #[test]
    fn unterminated_final_line_is_still_delivered() {
        let mut r = io::BufReader::new(&b"tail-no-newline"[..]);
        assert_eq!(
            read_request_line(&mut r, 64).unwrap(),
            ReadLine::Line("tail-no-newline".into())
        );
        assert_eq!(read_request_line(&mut r, 64).unwrap(), ReadLine::Eof);
    }

    #[test]
    fn a_connection_answers_each_line_and_survives_garbage() {
        let server = Server::new(ServeOptions::default());
        let input = b"{\"op\":\"ping\"}\n\nnot json\n{\"op\":\"ping\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&server, &mut io::BufReader::new(&input[..]), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "blank line is skipped: {lines:?}");
        assert_eq!(lines[0], "{\"ok\":true,\"op\":\"pong\"}");
        assert!(lines[1].contains("\"ok\":false"));
        assert_eq!(lines[2], lines[0]);
    }

    #[test]
    fn oversized_request_gets_an_error_and_the_connection_continues() {
        let server =
            Server::new(ServeOptions { max_request_bytes: 32, ..ServeOptions::default() });
        let input = format!(
            "{{\"op\":\"compile\",\"ddg\":\"{}\"}}\n{{\"op\":\"ping\"}}\n",
            "y".repeat(80)
        );
        let mut out = Vec::new();
        serve_connection(&server, &mut io::BufReader::new(input.as_bytes()), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("exceeds the 32-byte limit"), "{}", lines[0]);
        assert_eq!(lines[1], "{\"ok\":true,\"op\":\"pong\"}");
    }

    #[test]
    fn shutdown_ends_the_connection() {
        let server = Server::new(ServeOptions::default());
        let input = b"{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&server, &mut io::BufReader::new(&input[..]), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 1, "no response after shutdown: {lines:?}");
        assert!(server.is_shutdown());
    }

    #[test]
    fn a_draining_connection_answers_its_current_request_then_closes() {
        let server = Server::new(ServeOptions::default());
        // Another connection already acknowledged shutdown...
        assert!(server.handle_line("{\"op\":\"shutdown\"}").shutdown);
        // ...so this one answers exactly one more request, then closes.
        let input = b"{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n".to_vec();
        let mut out = Vec::new();
        serve_connection(&server, &mut io::BufReader::new(&input[..]), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines, vec!["{\"ok\":true,\"op\":\"pong\"}"]);
        assert_eq!(server.active_connections(), 0, "the guard deregistered");
    }
}
