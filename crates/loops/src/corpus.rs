//! On-disk loop corpora: directories of `.ddg` files (plus an optional
//! `.mach` machine description) loaded into [`BenchLoop`]s.
//!
//! This is the ingestion side of the workload funnel: the evaluation no
//! longer has to run over the compiled-in synthetic suite — any
//! externally supplied kernel set in the text formats of
//! [`regpipe_ddg::textfmt`] and [`regpipe_machine::textfmt`] flows
//! through the same batch engine (`regpipe suite --corpus <dir>`).
//!
//! A corpus directory contains:
//!
//! * any number of `*.ddg` loop files, each optionally carrying a
//!   `# weight <n>` comment giving the loop's dynamic execution weight
//!   (default 1) — exactly what [`write_corpus`] and `regpipe gen` emit;
//! * at most one `*.mach` file naming the machine the corpus is meant
//!   for (callers may still override it);
//! * anything else, which is ignored.
//!
//! Loops are ordered by file name (byte-wise), so a corpus loads
//! identically on every platform. Errors are collected **per file with
//! file and line** — one bad loop in a thousand-file corpus names
//! itself rather than aborting the load with a bare line number.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use regpipe_ddg::textfmt;
use regpipe_machine::{textfmt as machfmt, MachineConfig};

use crate::BenchLoop;

/// A loaded corpus: the loops in file-name order, plus the machine
/// description if the directory carried one.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The loops, ordered by file name.
    pub loops: Vec<BenchLoop>,
    /// The machine from the directory's `.mach` file, if present.
    pub machine: Option<MachineConfig>,
}

/// One problem with one corpus file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusFileError {
    /// Path of the offending file (as given, i.e. relative to the caller's
    /// working directory when the corpus path was relative).
    pub file: String,
    /// 1-based line, or 0 for whole-file problems (I/O, duplicates).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CorpusFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Everything wrong with a corpus directory, one entry per file problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusError {
    /// The per-file problems, in file-name order.
    pub errors: Vec<CorpusFileError>,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl Error for CorpusError {}

/// Loads every `.ddg` (and the optional `.mach`) file under `dir`.
///
/// The load is total: all files are visited even after a failure, so the
/// returned error lists **every** broken file at once.
///
/// # Errors
///
/// [`CorpusError`] naming file and line for each problem: unreadable
/// directory or file, malformed loop or machine text, a bad `# weight`
/// header, more than one `.mach` file, or a directory with no `.ddg`
/// files at all.
pub fn load_corpus(dir: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
    let dir = dir.as_ref();
    let whole_dir = |message: String| CorpusError {
        errors: vec![CorpusFileError { file: dir.display().to_string(), line: 0, message }],
    };
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => return Err(whole_dir(format!("cannot read corpus directory: {e}"))),
    };
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = match entry {
            Ok(entry) => entry,
            Err(e) => return Err(whole_dir(format!("cannot read corpus directory: {e}"))),
        };
        if let Some(name) = entry.file_name().to_str() {
            if name.ends_with(".ddg") || name.ends_with(".mach") {
                names.push(name.to_string());
            }
        }
    }
    // Byte-wise name order: the corpus loads in the same loop order on
    // every platform, which the deterministic batch reports rely on.
    names.sort_unstable();

    let mut loops = Vec::new();
    let mut machine: Option<(String, MachineConfig)> = None;
    let mut errors: Vec<CorpusFileError> = Vec::new();
    // Loop name -> defining file. Duplicate names would make report rows
    // indistinguishable and collide on a write_corpus round trip.
    let mut loop_names: HashMap<String, String> = HashMap::new();
    for name in &names {
        let path = dir.join(name);
        let file = path.display().to_string();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                errors.push(CorpusFileError {
                    file,
                    line: 0,
                    message: format!("cannot read file: {e}"),
                });
                continue;
            }
        };
        if name.ends_with(".mach") {
            match machfmt::parse_named(&text, &file) {
                Ok(m) => match &machine {
                    None => machine = Some((file, m)),
                    Some((first, _)) => errors.push(CorpusFileError {
                        file,
                        line: 0,
                        message: format!(
                            "more than one machine description (already saw {first})"
                        ),
                    }),
                },
                Err(e) => {
                    errors.push(CorpusFileError { file, line: e.line, message: e.message })
                }
            }
            continue;
        }
        match parse_weight_header(&text) {
            Ok(weight) => match textfmt::parse_named(&text, &file) {
                Ok(ddg) => {
                    let loop_name = ddg.name().to_string();
                    match loop_names.get(&loop_name) {
                        None => {
                            loop_names.insert(loop_name.clone(), file);
                            loops.push(BenchLoop { name: loop_name, ddg, weight });
                        }
                        Some(first) => errors.push(CorpusFileError {
                            file,
                            line: 0,
                            message: format!(
                                "duplicate loop name '{loop_name}' (already defined in {first})"
                            ),
                        }),
                    }
                }
                Err(e) => {
                    errors.push(CorpusFileError { file, line: e.line, message: e.message });
                }
            },
            Err((line, message)) => errors.push(CorpusFileError { file, line, message }),
        }
    }
    if loops.is_empty() && errors.is_empty() {
        return Err(whole_dir("no .ddg files in corpus directory".to_string()));
    }
    if errors.is_empty() {
        Ok(Corpus { loops, machine: machine.map(|(_, m)| m) })
    } else {
        Err(CorpusError { errors })
    }
}

/// Writes `loops` into `dir` as `<loop-name>.ddg` files with `# weight`
/// headers — the inverse of [`load_corpus`], and the writer behind
/// `regpipe gen`.
///
/// # Errors
///
/// The failing path and the I/O problem.
pub fn write_corpus(dir: impl AsRef<Path>, loops: &[BenchLoop]) -> Result<(), String> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for l in loops {
        let path = dir.join(format!("{}.ddg", l.name));
        let mut text = format!("# weight {}\n", l.weight);
        text.push_str(&textfmt::format(&l.ddg));
        fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Extracts the loop weight from a `# weight <n>` comment (default 1).
///
/// Only comments whose first word is exactly `weight` are interpreted;
/// the first such comment wins. A malformed count is an error — a typo'd
/// weight must not silently become 1.
fn parse_weight_header(text: &str) -> Result<u64, (usize, String)> {
    for (idx, raw) in text.lines().enumerate() {
        let Some(comment) = raw.trim_start().strip_prefix('#') else { continue };
        let mut words = comment.split_whitespace();
        if words.next() != Some("weight") {
            continue;
        }
        let line_no = idx + 1;
        let raw_count = words.next().unwrap_or("");
        return match raw_count.parse::<u64>() {
            Ok(n) if n > 0 => Ok(n),
            _ => {
                Err((line_no, format!("weight must be a positive integer, got '{raw_count}'")))
            }
        };
    }
    Ok(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("regpipe-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = scratch("roundtrip");
        let loops = generate(21, 12, &GenParams::default()).unwrap();
        write_corpus(&dir, &loops).unwrap();
        let corpus = load_corpus(&dir).unwrap();
        assert_eq!(corpus.loops.len(), 12);
        assert!(corpus.machine.is_none());
        for (orig, loaded) in loops.iter().zip(&corpus.loops) {
            assert_eq!(orig.name, loaded.name);
            assert_eq!(orig.weight, loaded.weight);
            assert_eq!(textfmt::format(&orig.ddg), textfmt::format(&loaded.ddg));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn machine_file_is_picked_up() {
        let dir = scratch("mach");
        write_corpus(&dir, &generate(3, 2, &GenParams::default()).unwrap()).unwrap();
        fs::write(dir.join("machine.mach"), "machine M\nunits mem 3\n").unwrap();
        let corpus = load_corpus(&dir).unwrap();
        let m = corpus.machine.expect("machine present");
        assert_eq!(m.name(), "M");
        assert_eq!(m.units(regpipe_machine::FuClass::Memory), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_name_every_broken_file_with_lines() {
        let dir = scratch("errors");
        write_corpus(&dir, &generate(4, 1, &GenParams::default()).unwrap()).unwrap();
        fs::write(dir.join("bad_a.ddg"), "loop a\nop x add\nedge x -> y reg 0\n").unwrap();
        fs::write(dir.join("bad_b.ddg"), "# weight nope\nloop b\nop x add\n").unwrap();
        fs::write(dir.join("bad_c.mach"), "units warp 9\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert_eq!(err.errors.len(), 3, "{err}");
        let rendered = err.to_string();
        for needle in [
            "bad_a.ddg:3: unknown op 'y'",
            "bad_b.ddg:1: weight must be a positive integer, got 'nope'",
            "bad_c.mach:1: unknown class 'warp'",
        ] {
            assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression: two files declaring the same `loop` name used to load
    /// silently, making report rows ambiguous and colliding on a
    /// write_corpus round trip.
    #[test]
    fn duplicate_loop_names_across_files_are_errors() {
        let dir = scratch("dup-names");
        fs::write(dir.join("a.ddg"), "loop k\nop x add\n").unwrap();
        fs::write(dir.join("b.ddg"), "loop k\nop y mul\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert_eq!(err.errors.len(), 1, "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("b.ddg"), "later file is the duplicate: {rendered}");
        assert!(
            rendered.contains("duplicate loop name 'k' (already defined in")
                && rendered.contains("a.ddg"),
            "{rendered}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_machines_and_empty_directories_are_errors() {
        let dir = scratch("dups");
        fs::write(dir.join("a.mach"), "machine A\n").unwrap();
        fs::write(dir.join("b.mach"), "machine B\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.to_string().contains("more than one machine description"), "{err}");

        let empty = scratch("empty");
        let err = load_corpus(&empty).unwrap_err();
        assert!(err.to_string().contains("no .ddg files"), "{err}");

        let missing = empty.join("does-not-exist");
        let err = load_corpus(&missing).unwrap_err();
        assert!(err.to_string().contains("cannot read corpus directory"), "{err}");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn weight_header_rules() {
        assert_eq!(parse_weight_header("# weight 250\nloop l\n"), Ok(250));
        assert_eq!(parse_weight_header("loop l\n# weight 3\n"), Ok(3), "any line works");
        assert_eq!(parse_weight_header("# weighty remark\nloop l\n"), Ok(1));
        assert_eq!(parse_weight_header("loop l\n"), Ok(1));
        assert!(parse_weight_header("# weight 0\n").is_err());
        assert!(parse_weight_header("# weight\n").is_err());
        // First weight comment wins.
        assert_eq!(parse_weight_header("# weight 5\n# weight 9\n"), Ok(5));
    }
}
