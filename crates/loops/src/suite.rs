//! Suite composition and execution weights.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regpipe_ddg::Ddg;

use crate::archetypes;

/// One benchmark loop: a dependence graph plus its dynamic execution weight
/// (total iterations executed across the program run).
///
/// Weights convert per-loop IIs into program cycles: executing the loop
/// costs `≈ II · weight` cycles, which is how the aggregate numbers of the
/// paper's Table 1 and Figures 8–9 are computed.
#[derive(Clone, Debug)]
pub struct BenchLoop {
    /// Unique name (`archetype_index`).
    pub name: String,
    /// The loop body.
    pub ddg: Ddg,
    /// Dynamic iteration count (heavy-tailed, pressure-correlated).
    pub weight: u64,
}

impl BenchLoop {
    /// Cycles this loop contributes when scheduled at `ii`.
    pub fn cycles(&self, ii: u32) -> u64 {
        u64::from(ii) * self.weight
    }
}

/// Generates a deterministic synthetic suite of `n` loops from `seed`.
///
/// The archetype mix approximates an innermost-loop population from
/// scientific Fortran (cf. the Perfect Club): mostly streaming and
/// wide-ILP bodies, a fifth stencils, some reductions and carried
/// recurrences, a few long-latency kernels, and a ~5% heavy tail of
/// many-tap stencil "monsters" whose register floors exceed small register
/// files at any II.
pub fn suite(seed: u64, n: usize) -> Vec<BenchLoop> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let roll = rng.random_range(0..100u32);
            let (ddg, heavy) = match roll {
                0..=27 => (archetypes::stream(&mut rng, format!("stream_{i:04}")), false),
                28..=45 => (archetypes::stencil(&mut rng, format!("stencil_{i:04}")), false),
                46..=59 => (archetypes::reduction(&mut rng, format!("reduce_{i:04}")), false),
                60..=77 => (archetypes::wide_ilp(&mut rng, format!("wide_{i:04}")), false),
                78..=83 => (archetypes::divsqrt(&mut rng, format!("divsqrt_{i:04}")), false),
                84..=97 => {
                    (archetypes::carried_chain(&mut rng, format!("chain_{i:04}")), false)
                }
                _ => (archetypes::monster(&mut rng, format!("monster_{i:04}")), true),
            };
            // Heavy-tailed base weight: 10^U(2, 4.2) iterations. Big,
            // high-pressure bodies run disproportionately longer (the
            // correlation the paper reports from [21]); monsters get a
            // further fractional decade. Calibrated so the non-convergent
            // loops carry ≈30% of the cycles at 32 registers (Table 1).
            let exponent = rng.random_range(2.0..4.2f64)
                + (ddg.num_ops() as f64 / 60.0).min(0.6)
                + if heavy { rng.random_range(0.15..0.5f64) } else { 0.0 };
            let weight = 10f64.powf(exponent).round() as u64;
            BenchLoop { name: ddg.name().to_string(), ddg, weight: weight.max(1) }
        })
        .collect()
}

/// The default suite: 1258 loops (the paper's loop count) from a fixed seed.
pub fn default_suite() -> Vec<BenchLoop> {
    suite(0xC1DA, 1258)
}

/// The paper's loop count, used when `REGPIPE_SUITE_SIZE` is unset.
pub const DEFAULT_SUITE_SIZE: usize = 1258;

/// Interprets a raw `REGPIPE_SUITE_SIZE` value: `None` (variable unset)
/// yields [`DEFAULT_SUITE_SIZE`]; a set value must parse as a **positive**
/// integer. Unparsable or zero values are errors, never silent fallbacks —
/// a typo'd `REGPIPE_SUITE_SIZE=10O` must not quietly run all 1258 loops.
///
/// # Errors
///
/// A message naming the variable and the offending value.
pub fn parse_suite_size(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(DEFAULT_SUITE_SIZE),
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("REGPIPE_SUITE_SIZE must be a positive integer, got '{text}'")),
        },
    }
}

/// [`parse_suite_size`] applied to the actual `REGPIPE_SUITE_SIZE`
/// environment variable — the one place that owns the lookup, shared by
/// the `expt_*` harness and the CLI.
///
/// # Errors
///
/// See [`parse_suite_size`].
pub fn suite_size_from_env() -> Result<usize, String> {
    parse_suite_size(std::env::var("REGPIPE_SUITE_SIZE").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = suite(1, 50);
        let b = suite(1, 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.ddg.num_ops(), y.ddg.num_ops());
        }
        let c = suite(2, 50);
        assert!(a.iter().zip(&c).any(|(x, y)| x.weight != y.weight));
    }

    #[test]
    fn archetype_mix_is_represented() {
        let loops = suite(3, 300);
        for prefix in ["stream", "stencil", "reduce", "wide", "divsqrt", "chain", "monster"] {
            assert!(
                loops.iter().any(|l| l.name.starts_with(prefix)),
                "missing archetype {prefix}"
            );
        }
    }

    #[test]
    fn cycles_scale_with_ii() {
        let l = &suite(4, 1)[0];
        assert_eq!(l.cycles(3), 3 * l.weight);
    }

    /// Regression: an unparsable or zero `REGPIPE_SUITE_SIZE` used to fall
    /// back silently to 1258; it must be a hard error instead.
    #[test]
    fn suite_size_parsing_is_strict() {
        assert_eq!(parse_suite_size(None), Ok(DEFAULT_SUITE_SIZE));
        assert_eq!(parse_suite_size(Some("40")), Ok(40));
        for bad in ["0", "-3", "10O", "", "forty", "1.5"] {
            let err = parse_suite_size(Some(bad)).unwrap_err();
            assert!(
                err.contains("REGPIPE_SUITE_SIZE") && err.contains(bad),
                "error must name the variable and the value: {err}"
            );
        }
    }
}
