//! Loop archetype generators.
//!
//! Each generator builds one synthetic loop body in the style of a numeric
//! kernel family. The archetypes are chosen to span the axes the paper's
//! evaluation exercises: resource pressure (memory-bound streams vs
//! compute-bound trees), recurrence-bound loops, long-latency operations,
//! and — crucially — loops whose register requirement is dominated by
//! lifetime *distance components* (stencil taps), which defeat the
//! increase-II strategy.

use rand::rngs::StdRng;
use rand::RngExt;
use regpipe_ddg::{Ddg, DdgBuilder, OpId, OpKind};

/// `x(i) = a·y(i) + b` streaming lanes: low pressure, memory bound.
pub fn stream(rng: &mut StdRng, name: String) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let lanes = rng.random_range(1..4usize);
    for l in 0..lanes {
        let ld = b.add_op(OpKind::Load, format!("ld{l}"));
        let mut cur = ld;
        let depth = rng.random_range(1..4usize);
        for d in 0..depth {
            let kind = if rng.random_range(0..2u32) == 0 { OpKind::Mul } else { OpKind::Add };
            let op = b.add_op(kind, format!("t{l}_{d}"));
            b.reg(cur, op);
            if kind == OpKind::Mul && rng.random_range(0..2u32) == 0 {
                b.invariant(format!("c{l}_{d}"), &[op]);
            }
            cur = op;
        }
        let st = b.add_op(OpKind::Store, format!("st{l}"));
        b.reg(cur, st);
    }
    b.build().expect("stream archetype is well-formed")
}

/// Multi-tap stencil: `s(i) = Σ_j c_j · y(i−j)` over one or more arrays.
///
/// The accumulation chain pins every tap's consumer after the load, so each
/// array contributes a lifetime with an irreducible distance component of
/// `taps` iterations — the structure that makes increase-II non-convergent
/// when wide enough.
pub fn stencil(rng: &mut StdRng, name: String) -> Ddg {
    let arrays = rng.random_range(1..4usize);
    let taps = rng.random_range(2..9u32);
    let extra = rng.random_range(0..4usize);
    stencil_with(rng, name, arrays, taps, extra)
}

/// The heavy tail: many arrays, deep taps, a pile of coefficient
/// invariants. These loops have register floors far above small register
/// files and carry large execution weights.
pub fn monster(rng: &mut StdRng, name: String) -> Ddg {
    let arrays = rng.random_range(4..8usize);
    let taps = rng.random_range(8..14u32);
    let extra = rng.random_range(8..18usize);
    stencil_with(rng, name, arrays, taps, extra)
}

/// Shared stencil construction: `arrays` independent tapped accumulations
/// combined into one result, plus `extra_invariants` standalone scalars.
fn stencil_with(
    rng: &mut StdRng,
    name: String,
    arrays: usize,
    taps: u32,
    extra_invariants: usize,
) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let mut lane_results: Vec<OpId> = Vec::new();
    for a in 0..arrays {
        let ld = b.add_op(OpKind::Load, format!("ld{a}"));
        // a0 = y(i) * c0 — the δ0 use that pins the chain after the load.
        let mut acc = b.add_op(OpKind::Mul, format!("m{a}_0"));
        b.reg(ld, acc);
        b.invariant(format!("c{a}_0"), &[acc]);
        for j in 1..=taps {
            // acc = acc (*+) y(i-j): alternate muls and adds for FU balance.
            let kind = if j % 2 == 0 { OpKind::Mul } else { OpKind::Add };
            let next = b.add_op(kind, format!("a{a}_{j}"));
            b.reg(acc, next);
            b.reg_dist(ld, next, j);
            acc = next;
        }
        lane_results.push(acc);
    }
    // Combine lanes and store.
    let mut combined = lane_results[0];
    for (a, &lane) in lane_results.iter().enumerate().skip(1) {
        let add = b.add_op(OpKind::Add, format!("comb{a}"));
        b.reg(combined, add);
        b.reg(lane, add);
        combined = add;
    }
    let st = b.add_op(OpKind::Store, "st");
    b.reg(combined, st);
    // Standalone scalar parameters occupying registers regardless of II.
    for k in 0..extra_invariants {
        let use_op = b.add_op(OpKind::Mul, format!("p{k}"));
        b.reg(combined, use_op);
        b.invariant(format!("k{k}"), &[use_op]);
        let sink = b.add_op(OpKind::Store, format!("stp{k}"));
        b.reg(use_op, sink);
        let _ = rng;
    }
    b.build().expect("stencil archetype is well-formed")
}

/// Reductions: partial dot products with an accumulator recurrence
/// (`acc += x·y`, distance 1). Recurrence-bound for long-latency adders.
pub fn reduction(rng: &mut StdRng, name: String) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let partials = rng.random_range(1..4usize);
    for p in 0..partials {
        let lx = b.add_op(OpKind::Load, format!("lx{p}"));
        let ly = b.add_op(OpKind::Load, format!("ly{p}"));
        let mul = b.add_op(OpKind::Mul, format!("m{p}"));
        b.reg(lx, mul);
        b.reg(ly, mul);
        let acc = b.add_op(OpKind::Add, format!("acc{p}"));
        b.reg(mul, acc);
        b.reg_dist(acc, acc, rng.random_range(1..3u32));
    }
    b.build().expect("reduction archetype is well-formed")
}

/// Wide ILP: many independent multiply/add trees sharing a few loads.
/// High scheduling-component pressure that increase-II *can* reduce.
pub fn wide_ilp(rng: &mut StdRng, name: String) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let shared = rng.random_range(2..5usize);
    let loads: Vec<OpId> =
        (0..shared).map(|s| b.add_op(OpKind::Load, format!("ld{s}"))).collect();
    let lanes = rng.random_range(4..12usize);
    for l in 0..lanes {
        let mul = b.add_op(OpKind::Mul, format!("m{l}"));
        b.reg(loads[l % shared], mul);
        if rng.random_range(0..2u32) == 0 {
            b.invariant(format!("w{l}"), &[mul]);
        } else {
            b.reg(loads[(l + 1) % shared], mul);
        }
        let add = b.add_op(OpKind::Add, format!("a{l}"));
        b.reg(mul, add);
        b.reg(loads[(l + 2) % shared], add);
        let st = b.add_op(OpKind::Store, format!("st{l}"));
        b.reg(add, st);
    }
    b.build().expect("wide archetype is well-formed")
}

/// Long-latency kernels: a divide or square root on the critical path
/// (normalizations, Cholesky-style updates).
pub fn divsqrt(rng: &mut StdRng, name: String) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let ld = b.add_op(OpKind::Load, "ld");
    let kind = if rng.random_range(0..3u32) == 0 { OpKind::Sqrt } else { OpKind::Div };
    let slow = b.add_op(kind, "slow");
    b.reg(ld, slow);
    let lanes = rng.random_range(1..4usize);
    for l in 0..lanes {
        let lv = b.add_op(OpKind::Load, format!("lv{l}"));
        let mul = b.add_op(OpKind::Mul, format!("m{l}"));
        b.reg(slow, mul);
        b.reg(lv, mul);
        let st = b.add_op(OpKind::Store, format!("st{l}"));
        b.reg(mul, st);
    }
    b.build().expect("divsqrt archetype is well-formed")
}

/// Carried chains: a first-order linear recurrence through several
/// operations (`x(i) = f(x(i−d))`) feeding a streamed output.
pub fn carried_chain(rng: &mut StdRng, name: String) -> Ddg {
    let mut b = DdgBuilder::new(name);
    let len = rng.random_range(2..6usize);
    let dist = rng.random_range(1..4u32);
    let head = b.add_op(OpKind::Add, "x0");
    let mut cur = head;
    for d in 1..len {
        let kind = if d % 2 == 0 { OpKind::Add } else { OpKind::Mul };
        let op = b.add_op(kind, format!("x{d}"));
        b.reg(cur, op);
        cur = op;
    }
    b.reg_dist(cur, head, dist);
    // Feed the recurrence with memory traffic on the side.
    let ld = b.add_op(OpKind::Load, "ld");
    b.reg(ld, head);
    let st = b.add_op(OpKind::Store, "st");
    b.reg(cur, st);
    if rng.random_range(0..2u32) == 0 {
        b.invariant("alpha", &[head]);
    }
    b.build().expect("chain archetype is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use regpipe_ddg::algo::recurrences;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn all_archetypes_validate() {
        let mut r = rng();
        for i in 0..20 {
            stream(&mut r, format!("s{i}")).validate().unwrap();
            stencil(&mut r, format!("t{i}")).validate().unwrap();
            reduction(&mut r, format!("r{i}")).validate().unwrap();
            wide_ilp(&mut r, format!("w{i}")).validate().unwrap();
            divsqrt(&mut r, format!("d{i}")).validate().unwrap();
            carried_chain(&mut r, format!("c{i}")).validate().unwrap();
            monster(&mut r, format!("m{i}")).validate().unwrap();
        }
    }

    #[test]
    fn reductions_and_chains_have_recurrences() {
        let mut r = rng();
        assert!(!recurrences(&reduction(&mut r, "r".into())).is_empty());
        assert!(!recurrences(&carried_chain(&mut r, "c".into())).is_empty());
    }

    #[test]
    fn streams_are_acyclic() {
        let mut r = rng();
        assert!(recurrences(&stream(&mut r, "s".into())).is_empty());
    }

    #[test]
    fn monsters_carry_big_distance_floors() {
        let mut r = rng();
        for i in 0..10 {
            let g = monster(&mut r, format!("m{i}"));
            // Σ over arrays of taps ≥ 15 distance registers.
            let floor: u32 = g
                .live_variants()
                .map(|v| g.reg_consumers(v).map(|(_, d)| d).max().unwrap_or(0))
                .sum();
            assert!(floor >= 15, "monster {i} floor {floor}");
        }
    }

    #[test]
    fn stencil_taps_are_pinned_by_zero_distance_paths() {
        // Pinning = the loop-carried consumer is reachable from the producer
        // through zero-distance edges alone, so no schedule can hoist it
        // before the producer and cancel the distance component.
        fn reaches_zero_dist(
            g: &regpipe_ddg::Ddg,
            from: regpipe_ddg::OpId,
            to: regpipe_ddg::OpId,
        ) -> bool {
            let mut seen = vec![false; g.num_ops()];
            let mut stack = vec![from];
            seen[from.index()] = true;
            while let Some(v) = stack.pop() {
                if v == to {
                    return true;
                }
                for e in g.out_edges(v) {
                    if e.distance() == 0 && !seen[e.to().index()] {
                        seen[e.to().index()] = true;
                        stack.push(e.to());
                    }
                }
            }
            false
        }
        let mut r = rng();
        let g = stencil(&mut r, "t".into());
        for v in g.live_variants() {
            for (c, d) in g.reg_consumers(v) {
                if d > 0 {
                    assert!(
                        reaches_zero_dist(&g, v, c),
                        "loop-carried consumer {c} must stay after producer {v}"
                    );
                }
            }
        }
    }
}
