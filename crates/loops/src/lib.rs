//! Benchmark loops for register-constrained software pipelining.
//!
//! The paper evaluates on 1258 innermost DO-loops from the Perfect Club,
//! extracted with the ICTINEO compiler — neither of which is available.
//! This crate substitutes a **seeded synthetic suite** with the same
//! observable properties the algorithms care about (see `DESIGN.md` for the
//! substitution argument):
//!
//! * realistic operation mixes (loads/stores dominate, adds and multiplies
//!   in rough balance, a sprinkle of divides and square roots);
//! * a minority of loops carrying recurrences (reductions and carried
//!   chains) that bound `RecMII`;
//! * a pressure spectrum from trivial streaming kernels to wide unrolled
//!   bodies and many-tap stencils whose *distance components* put a hard
//!   floor under the register requirement — the loops for which increasing
//!   the II never converges (paper Table 1);
//! * heavy-tailed execution weights, correlated with register pressure, so
//!   the few non-convergent loops account for a disproportionate share of
//!   execution time (the paper reports ≈20–30%).
//!
//! [`paper`] additionally provides faithful reconstructions of the loops
//! the paper discusses by name: the running example of Figure 2 and
//! APSI-47/APSI-50 stand-ins with the Figure 4 convergence behaviours.
//!
//! Beyond the fixed suite, the crate opens the workload funnel to
//! arbitrary corpora:
//!
//! * [`gen`] — a seeded synthetic-kernel generator ([`generate`]) with
//!   explicit knobs ([`GenParams`]: op count, recurrence density,
//!   invariant count, weight distribution) whose output replays
//!   byte-identically per seed;
//! * [`corpus`] — on-disk corpus I/O ([`load_corpus`] / [`write_corpus`]):
//!   a directory of `.ddg` files plus an optional `.mach` machine
//!   description, with per-file error reporting.
//!
//! Every workload source yields plain `Vec<BenchLoop>`, so each suite or
//! corpus doubles as a *scheduler comparison scenario*: the batch engine
//! compiles the same loops under any scheduler from the `regpipe_sched`
//! registry (`regpipe suite --scheduler hrms|sms|asap`).
//!
//! ```
//! use regpipe_loops::{default_suite, suite};
//!
//! let loops = suite(0xC1DA, 100);
//! assert_eq!(loops.len(), 100);
//! // Deterministic: same seed, same suite.
//! assert_eq!(suite(0xC1DA, 100)[42].name, loops[42].name);
//! assert_eq!(default_suite().len(), 1258);
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod archetypes;
pub mod corpus;
pub mod gen;
pub mod kernels;
pub mod paper;
mod suite;

pub use corpus::{load_corpus, write_corpus, Corpus, CorpusError, CorpusFileError};
pub use gen::{generate, GenParams, WeightDist};
pub use suite::{
    default_suite, parse_suite_size, suite, suite_size_from_env, BenchLoop, DEFAULT_SUITE_SIZE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_machine::MachineConfig;
    use regpipe_sched::{mii, HrmsScheduler, SchedRequest, Scheduler};

    #[test]
    fn every_suite_loop_is_valid_and_schedulable() {
        let loops = suite(7, 150);
        let m = MachineConfig::p2l4();
        for l in &loops {
            l.ddg.validate().unwrap_or_else(|e| panic!("{}: {e}", l.name));
            let s = HrmsScheduler::new()
                .schedule(&l.ddg, &m, &SchedRequest::default())
                .unwrap_or_else(|e| panic!("{}: {e}", l.name));
            s.verify(&l.ddg, &m).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert!(s.ii() >= mii(&l.ddg, &m));
            assert!(l.weight > 0);
        }
    }

    #[test]
    fn suite_has_pressure_diversity() {
        use regpipe_regalloc::allocate;
        let loops = suite(7, 200);
        let m = MachineConfig::p2l4();
        let mut low = 0usize;
        let mut high = 0usize;
        for l in &loops {
            let s =
                HrmsScheduler::new().schedule(&l.ddg, &m, &SchedRequest::default()).unwrap();
            let regs = allocate(&l.ddg, &s).total();
            if regs <= 16 {
                low += 1;
            }
            if regs > 32 {
                high += 1;
            }
        }
        assert!(low > 50, "plenty of easy loops ({low})");
        assert!(high > 10, "some high-pressure loops ({high})");
    }

    #[test]
    fn suite_contains_recurrences_and_invariants() {
        let loops = suite(7, 200);
        let with_rec =
            loops.iter().filter(|l| !regpipe_ddg::algo::recurrences(&l.ddg).is_empty()).count();
        let with_inv = loops.iter().filter(|l| l.ddg.num_invariants() > 0).count();
        assert!(with_rec > 20, "recurrences present ({with_rec})");
        assert!(with_inv > 60, "invariants present ({with_inv})");
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let loops = suite(7, 400);
        let mut weights: Vec<u64> = loops.iter().map(|l| l.weight).collect();
        weights.sort_unstable();
        let total: u64 = weights.iter().sum();
        let top_decile: u64 = weights[weights.len() * 9 / 10..].iter().sum();
        assert!(
            top_decile * 5 > total * 2,
            "top 10% of loops should carry >40% of the weight ({top_decile}/{total})"
        );
    }
}
