//! Named classic loop kernels.
//!
//! Hand-built dependence graphs of well-known numeric kernels (in the
//! spirit of the Livermore loops), with realistic operation mixes and
//! recurrence structure. They complement the random suite with loops whose
//! shape a compiler engineer can eyeball, and they anchor documentation
//! examples and regression tests.

use regpipe_ddg::{Ddg, DdgBuilder, OpKind};

/// Livermore kernel 1 style — *hydro fragment*:
/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
///
/// Pure streaming: three loads, a small multiply/add tree, one store, three
/// invariant scalars. No recurrence; resource bound.
pub fn hydro_fragment() -> Ddg {
    let mut b = DdgBuilder::new("hydro");
    let ly = b.add_op(OpKind::Load, "ld y[k]");
    let lz0 = b.add_op(OpKind::Load, "ld z[k+10]");
    let lz1 = b.add_op(OpKind::Load, "ld z[k+11]");
    let m_r = b.add_op(OpKind::Mul, "r*z0");
    let m_t = b.add_op(OpKind::Mul, "t*z1");
    let sum = b.add_op(OpKind::Add, "rz+tz");
    let m_y = b.add_op(OpKind::Mul, "y*sum");
    let plus_q = b.add_op(OpKind::Add, "+q");
    let st = b.add_op(OpKind::Store, "st x[k]");
    b.reg(lz0, m_r);
    b.reg(lz1, m_t);
    b.reg(m_r, sum);
    b.reg(m_t, sum);
    b.reg(ly, m_y);
    b.reg(sum, m_y);
    b.reg(m_y, plus_q);
    b.reg(plus_q, st);
    b.invariant("q", &[plus_q]);
    b.invariant("r", &[m_r]);
    b.invariant("t", &[m_t]);
    b.build().expect("hydro fragment is well-formed")
}

/// Livermore kernel 3 style — *inner product*: `q += z[k]*x[k]`.
///
/// The accumulator self-recurrence bounds the II by the adder latency.
pub fn inner_product() -> Ddg {
    let mut b = DdgBuilder::new("inner_product");
    let lz = b.add_op(OpKind::Load, "ld z[k]");
    let lx = b.add_op(OpKind::Load, "ld x[k]");
    let mul = b.add_op(OpKind::Mul, "z*x");
    let acc = b.add_op(OpKind::Add, "q+=");
    b.reg(lz, mul);
    b.reg(lx, mul);
    b.reg(mul, acc);
    b.reg_dist(acc, acc, 1);
    b.build().expect("inner product is well-formed")
}

/// Livermore kernel 5 style — *tri-diagonal elimination*:
/// `x[i] = z[i]*(y[i] - x[i-1])`.
///
/// A first-order recurrence through a subtract and a multiply: the classic
/// loop that no amount of hardware parallelism can speed past RecMII.
pub fn tridiagonal() -> Ddg {
    let mut b = DdgBuilder::new("tridiag");
    let ly = b.add_op(OpKind::Load, "ld y[i]");
    let lz = b.add_op(OpKind::Load, "ld z[i]");
    let sub = b.add_op(OpKind::Add, "y-x'");
    let mul = b.add_op(OpKind::Mul, "z*(..)");
    let st = b.add_op(OpKind::Store, "st x[i]");
    b.reg(ly, sub);
    b.reg(lz, mul);
    b.reg(sub, mul);
    b.reg_dist(mul, sub, 1); // x[i-1] feeds the next subtract
    b.reg(mul, st);
    b.build().expect("tridiagonal is well-formed")
}

/// Livermore kernel 7 style — *equation of state fragment*: a wide
/// multiply/add expression over four streams with shared subterms and five
/// invariant coefficients. High ILP, high register pressure, no recurrence.
pub fn state_fragment() -> Ddg {
    let mut b = DdgBuilder::new("state");
    let loads: Vec<_> = ["u[k]", "z[k]", "y[k]", "x[k]"]
        .iter()
        .map(|n| b.add_op(OpKind::Load, format!("ld {n}")))
        .collect();
    // t1 = u + r*z; t2 = t1 + r*y; t3 = u + q*t2 ...
    let mut terms = Vec::new();
    for (i, &ld) in loads.iter().enumerate() {
        let m = b.add_op(OpKind::Mul, format!("c{i}*s{i}"));
        b.reg(ld, m);
        b.invariant(format!("c{i}"), &[m]);
        terms.push(m);
    }
    let mut acc = terms[0];
    for (i, &t) in terms.iter().enumerate().skip(1) {
        let a = b.add_op(OpKind::Add, format!("acc{i}"));
        b.reg(acc, a);
        b.reg(t, a);
        acc = a;
    }
    let scale = b.add_op(OpKind::Mul, "r*acc");
    b.reg(acc, scale);
    b.invariant("r", &[scale]);
    let st = b.add_op(OpKind::Store, "st x[k]");
    b.reg(scale, st);
    b.build().expect("state fragment is well-formed")
}

/// Livermore kernel 11 style — *first sum (prefix)*: `x[k] = x[k-1] + y[k]`.
pub fn prefix_sum() -> Ddg {
    let mut b = DdgBuilder::new("prefix_sum");
    let ly = b.add_op(OpKind::Load, "ld y[k]");
    let add = b.add_op(OpKind::Add, "x'+y");
    let st = b.add_op(OpKind::Store, "st x[k]");
    b.reg(ly, add);
    b.reg_dist(add, add, 1);
    b.reg(add, st);
    b.build().expect("prefix sum is well-formed")
}

/// A Newton–Raphson reciprocal-refinement step with a divide on the
/// critical path — exercises the non-pipelined Div/Sqrt unit.
pub fn newton_step() -> Ddg {
    let mut b = DdgBuilder::new("newton");
    let la = b.add_op(OpKind::Load, "ld a[i]");
    let div = b.add_op(OpKind::Div, "1/a");
    let m1 = b.add_op(OpKind::Mul, "a*r");
    let sub = b.add_op(OpKind::Add, "2-ar");
    let m2 = b.add_op(OpKind::Mul, "r*(2-ar)");
    let st = b.add_op(OpKind::Store, "st r[i]");
    b.reg(la, div);
    b.reg(la, m1);
    b.reg(div, m1);
    b.reg(m1, sub);
    b.reg(div, m2);
    b.reg(sub, m2);
    b.reg(m2, st);
    b.build().expect("newton step is well-formed")
}

/// All named kernels, with their names.
pub fn all_kernels() -> Vec<Ddg> {
    vec![
        hydro_fragment(),
        inner_product(),
        tridiagonal(),
        state_fragment(),
        prefix_sum(),
        newton_step(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::algo::recurrences;
    use regpipe_machine::MachineConfig;
    use regpipe_sched::{mii, rec_mii, HrmsScheduler, SchedRequest, Scheduler};

    #[test]
    fn all_kernels_validate_and_schedule() {
        for machine in MachineConfig::paper_configs() {
            for g in all_kernels() {
                g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
                let s = HrmsScheduler::new()
                    .schedule(&g, &machine, &SchedRequest::default())
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), machine.name()));
                s.verify(&g, &machine).unwrap();
                assert_eq!(s.ii(), mii(&g, &machine), "kernels schedule at MII");
            }
        }
    }

    #[test]
    fn recurrence_structure_is_as_designed() {
        assert!(recurrences(&hydro_fragment()).is_empty());
        assert!(recurrences(&state_fragment()).is_empty());
        assert_eq!(recurrences(&inner_product()).len(), 1);
        assert_eq!(recurrences(&tridiagonal()).len(), 1);
        assert_eq!(recurrences(&prefix_sum()).len(), 1);
    }

    #[test]
    fn tridiagonal_is_recurrence_bound() {
        let g = tridiagonal();
        let m = MachineConfig::p2l4();
        // sub(4) + mul(4) over distance 1.
        assert_eq!(rec_mii(&g, &m), 8);
        assert_eq!(mii(&g, &m), 8, "RecMII dominates ResMII here");
    }

    #[test]
    fn prefix_sum_matches_adder_latency() {
        let m4 = MachineConfig::p2l4();
        let m6 = MachineConfig::p2l6();
        assert_eq!(rec_mii(&prefix_sum(), &m4), 4);
        assert_eq!(rec_mii(&prefix_sum(), &m6), 6);
    }

    #[test]
    fn newton_step_is_divider_bound() {
        let g = newton_step();
        assert_eq!(mii(&g, &MachineConfig::p1l4()), 17, "one non-pipelined divide");
        assert_eq!(mii(&g, &MachineConfig::p2l4()), 9);
    }

    #[test]
    fn state_fragment_has_high_pressure() {
        use regpipe_regalloc::allocate;
        let g = state_fragment();
        let m = MachineConfig::p2l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let a = allocate(&g, &s);
        assert!(a.total() > 10, "wide expression: got {}", a.total());
    }

    #[test]
    fn kernels_compile_under_tight_budgets() {
        use regpipe_core::{compile, CompileOptions};
        let m = MachineConfig::p2l4();
        for g in all_kernels() {
            let c = compile(&g, &m, 12, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(c.registers_used() <= 12);
        }
    }
}
