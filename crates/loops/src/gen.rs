//! Seeded synthetic-kernel generator for stress corpora.
//!
//! [`suite`](crate::suite) reproduces the paper's archetype mix; this
//! module is the open-ended counterpart: [`generate`] materializes any
//! number of random-but-valid kernels from a seed and a [`GenParams`]
//! knob set (op count, recurrence density, invariant count, weight
//! distribution), for corpora that go **on disk** (`regpipe gen`) and
//! replay byte-identically.
//!
//! Two determinism guarantees, both enforced by `tests/gen_corpus.rs`:
//!
//! * **Byte stability** — the same `(seed, params)` produce the same
//!   kernels (down to [`regpipe_ddg::textfmt::format`] bytes) on every
//!   platform and every run; the generator draws exclusively from the
//!   vendored deterministic [`rand`] stand-in.
//! * **Prefix stability** — kernels are drawn from one sequential stream,
//!   so `generate(seed, 100, p)` is exactly the first hundred kernels of
//!   `generate(seed, 1000, p)`: growing a corpus never rewrites the part
//!   already published.
//!
//! Every generated kernel is structurally valid by construction (the
//! builder's validation runs on each one): zero-distance edges only go
//! forward in creation order, and deliberate recurrences close cycles
//! with distance ≥ 1, so RecMII is finite and every kernel schedules.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regpipe_ddg::{DdgBuilder, OpId, OpKind};

use crate::BenchLoop;

/// The dynamic-weight distribution of generated kernels.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WeightDist {
    /// Every kernel weighs the same.
    Constant(u64),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Smallest weight (inclusive).
        lo: u64,
        /// Largest weight (inclusive).
        hi: u64,
    },
    /// Heavy-tailed `10^U(lo_exp, hi_exp)` — the shape of the suite's
    /// iteration counts (see [`crate::suite`]).
    LogUniform {
        /// Smallest exponent.
        lo_exp: f64,
        /// Largest exponent.
        hi_exp: f64,
    },
}

/// Knobs of the synthetic-kernel generator.
///
/// The defaults produce mid-size kernels with the suite's heavy-tailed
/// weights; `regpipe gen` exposes every field as a flag.
#[derive(Clone, PartialEq, Debug)]
pub struct GenParams {
    /// Fewest operations per kernel (inclusive; at least 2).
    pub min_ops: usize,
    /// Most operations per kernel (inclusive).
    pub max_ops: usize,
    /// Probability, per arithmetic operation, of closing a loop-carried
    /// recurrence back through one of its operands (in `[0, 1]`).
    pub recurrence_density: f64,
    /// Most loop-invariant values per kernel (each kernel draws a count
    /// uniformly from `0..=max_invariants`).
    pub max_invariants: usize,
    /// How dynamic execution weights are drawn.
    pub weights: WeightDist,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            min_ops: 4,
            max_ops: 24,
            recurrence_density: 0.25,
            max_invariants: 4,
            weights: WeightDist::LogUniform { lo_exp: 2.0, hi_exp: 4.2 },
        }
    }
}

impl GenParams {
    /// Checks the knob ranges; [`generate`] calls this up front.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_ops < 2 {
            return Err(format!("min_ops must be at least 2, got {}", self.min_ops));
        }
        if self.max_ops < self.min_ops {
            return Err(format!(
                "max_ops ({}) must be at least min_ops ({})",
                self.max_ops, self.min_ops
            ));
        }
        if !(0.0..=1.0).contains(&self.recurrence_density) {
            return Err(format!(
                "recurrence_density must be in [0, 1], got {}",
                self.recurrence_density
            ));
        }
        match self.weights {
            WeightDist::Constant(0) => Err("constant weight must be positive".to_string()),
            WeightDist::Uniform { lo, hi } if lo == 0 || hi < lo => {
                Err(format!("uniform weights need 0 < lo <= hi, got {lo}..={hi}"))
            }
            WeightDist::LogUniform { lo_exp, hi_exp } if hi_exp < lo_exp => Err(format!(
                "log-uniform weights need lo_exp <= hi_exp, got {lo_exp}..{hi_exp}"
            )),
            _ => Ok(()),
        }
    }
}

/// Generates `count` kernels named `gen_00000`, `gen_00001`, … from one
/// deterministic stream seeded with `seed`.
///
/// # Errors
///
/// [`GenParams::validate`]'s message if the knobs are out of range.
pub fn generate(seed: u64, count: usize, params: &GenParams) -> Result<Vec<BenchLoop>, String> {
    params.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..count).map(|i| generate_one(&mut rng, format!("gen_{i:05}"), params)).collect())
}

/// Draws one kernel from `rng`. Callers wanting a single kernel mid-stream
/// can use this directly; [`generate`] is the batch form.
pub fn generate_one(rng: &mut StdRng, name: String, params: &GenParams) -> BenchLoop {
    let target_ops = rng.random_range(params.min_ops..=params.max_ops);
    let mut b = DdgBuilder::new(name);

    // Value-producing ops so far, in creation order (zero-distance edges
    // only ever point from earlier entries to later ops, which is what
    // rules zero-distance cycles out by construction).
    let mut producers: Vec<OpId> = vec![b.add_op(OpKind::Load, "ld00000")];
    let mut stores = 0usize;
    while producers.len() + stores + 1 < target_ops {
        let serial = producers.len() + stores + 1;
        let roll = rng.random_range(0..100u32);
        match roll {
            // More memory traffic: a fresh stream of input values.
            0..=24 => {
                producers.push(b.add_op(OpKind::Load, format!("ld{serial:05}")));
            }
            // A store sinking one existing value.
            25..=39 => {
                let st = b.add_op(OpKind::Store, format!("st{serial:05}"));
                let src = producers[rng.random_range(0..producers.len())];
                b.reg(src, st);
                stores += 1;
            }
            // Arithmetic consuming one or two existing values.
            _ => {
                let kind = match rng.random_range(0..20u32) {
                    0 => OpKind::Div,
                    1 => OpKind::Sqrt,
                    n if n < 11 => OpKind::Add,
                    _ => OpKind::Mul,
                };
                let op = b.add_op(kind, format!("t{serial:05}"));
                let first = producers[rng.random_range(0..producers.len())];
                // A slice of operand uses is loop-carried (stencil taps).
                if rng.random_range(0..100u32) < 12 {
                    b.reg_dist(first, op, rng.random_range(1..5u32));
                } else {
                    b.reg(first, op);
                }
                if rng.random_range(0..2u32) == 1 {
                    let second = producers[rng.random_range(0..producers.len())];
                    b.reg(second, op);
                }
                // Close a recurrence through the zero-distance operand:
                // `first -> op` plus `op -> first` (distance >= 1) is a
                // genuine loop-carried cycle, so RecMII stays finite.
                if rng.random_range(0.0..1.0f64) < params.recurrence_density {
                    b.reg_dist(op, first, rng.random_range(1..4u32));
                }
                producers.push(op);
            }
        }
    }
    // Always sink the most recent value so every kernel has a live output.
    let st = b.add_op(OpKind::Store, format!("st{target_ops:05}"));
    b.reg(*producers.last().expect("at least the seed load"), st);

    let invariants = rng.random_range(0..=params.max_invariants);
    for j in 0..invariants {
        let user = producers[rng.random_range(0..producers.len())];
        b.invariant(format!("inv{j:02}"), &[user]);
    }

    let weight = match params.weights {
        WeightDist::Constant(w) => w,
        WeightDist::Uniform { lo, hi } => rng.random_range(lo..=hi),
        WeightDist::LogUniform { lo_exp, hi_exp } => {
            let exponent =
                if lo_exp == hi_exp { lo_exp } else { rng.random_range(lo_exp..hi_exp) };
            (10f64.powf(exponent).round() as u64).max(1)
        }
    };

    let ddg = b.build().expect("generated kernel is valid by construction");
    BenchLoop { name: ddg.name().to_string(), ddg, weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::textfmt;

    #[test]
    fn generation_is_byte_stable_and_prefix_stable() {
        let p = GenParams::default();
        let a = generate(11, 40, &p).unwrap();
        let b = generate(11, 40, &p).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(textfmt::format(&x.ddg), textfmt::format(&y.ddg));
            assert_eq!(x.weight, y.weight);
        }
        let prefix = generate(11, 10, &p).unwrap();
        for (x, y) in prefix.iter().zip(&a) {
            assert_eq!(textfmt::format(&x.ddg), textfmt::format(&y.ddg), "prefix property");
            assert_eq!(x.weight, y.weight);
        }
        let other = generate(12, 10, &p).unwrap();
        assert!(
            prefix
                .iter()
                .zip(&other)
                .any(|(x, y)| textfmt::format(&x.ddg) != textfmt::format(&y.ddg)),
            "different seeds diverge"
        );
    }

    #[test]
    fn op_counts_respect_bounds() {
        let p = GenParams { min_ops: 5, max_ops: 9, ..GenParams::default() };
        for l in generate(3, 60, &p).unwrap() {
            let n = l.ddg.num_ops();
            assert!((5..=9).contains(&n), "{}: {n} ops", l.name);
            l.ddg.validate().unwrap();
            assert!(l.weight >= 1);
        }
    }

    #[test]
    fn recurrence_density_moves_the_recurrence_rate() {
        let none = GenParams { recurrence_density: 0.0, ..GenParams::default() };
        let lots = GenParams { recurrence_density: 0.9, ..GenParams::default() };
        let count_recs = |loops: &[BenchLoop]| {
            loops.iter().filter(|l| !regpipe_ddg::algo::recurrences(&l.ddg).is_empty()).count()
        };
        let quiet = count_recs(&generate(5, 80, &none).unwrap());
        let busy = count_recs(&generate(5, 80, &lots).unwrap());
        assert_eq!(quiet, 0, "density 0 means acyclic kernels");
        assert!(busy > 40, "density 0.9 saturates ({busy}/80)");
    }

    #[test]
    fn invariant_and_weight_knobs_apply() {
        let p = GenParams {
            max_invariants: 0,
            weights: WeightDist::Constant(7),
            ..GenParams::default()
        };
        for l in generate(9, 30, &p).unwrap() {
            assert_eq!(l.ddg.num_invariants(), 0);
            assert_eq!(l.weight, 7);
        }
        let p = GenParams {
            max_invariants: 3,
            weights: WeightDist::Uniform { lo: 10, hi: 20 },
            ..GenParams::default()
        };
        let loops = generate(9, 30, &p).unwrap();
        assert!(loops.iter().any(|l| l.ddg.num_invariants() > 0));
        assert!(loops.iter().all(|l| (10..=20).contains(&l.weight)));
    }

    #[test]
    fn bad_params_are_rejected_with_field_names() {
        for (p, needle) in [
            (GenParams { min_ops: 1, ..GenParams::default() }, "min_ops"),
            (GenParams { min_ops: 9, max_ops: 4, ..GenParams::default() }, "max_ops"),
            (
                GenParams { recurrence_density: 1.5, ..GenParams::default() },
                "recurrence_density",
            ),
            (
                GenParams { weights: WeightDist::Constant(0), ..GenParams::default() },
                "constant",
            ),
            (
                GenParams {
                    weights: WeightDist::Uniform { lo: 5, hi: 2 },
                    ..GenParams::default()
                },
                "uniform",
            ),
        ] {
            let err = generate(1, 1, &p).unwrap_err();
            assert!(err.contains(needle), "{p:?}: {err}");
        }
    }
}
