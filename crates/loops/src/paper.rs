//! Reconstructions of the loops the paper discusses by name.

use regpipe_ddg::{Ddg, DdgBuilder, OpKind};

/// The running example of Figure 2: `x(i) = y(i)·a + y(i−3)`.
///
/// Four operations — a load, a multiply by the loop-invariant `a`, an add
/// consuming the load's value from three iterations back, and a store. On
/// the didactic uniform machine (4 units, latency 2) it schedules at II = 1
/// needing 11 registers for loop variants (Figure 2f); at II = 2 it needs 7
/// (Figure 3d); spilling V1 gets it to 5 at II = 2 (Figure 6d).
pub fn example_loop() -> Ddg {
    let mut b = DdgBuilder::new("fig2");
    let ld = b.add_op(OpKind::Load, "Ld");
    let mul = b.add_op(OpKind::Mul, "*");
    let add = b.add_op(OpKind::Add, "+");
    let st = b.add_op(OpKind::Store, "St");
    b.reg(ld, mul);
    b.reg_dist(ld, add, 3);
    b.reg(mul, add);
    b.reg(add, st);
    b.invariant("a", &[mul]);
    b.build().expect("paper example is well-formed")
}

/// A stand-in for loop 47 of APSI (first loop of subroutine CPADE): the
/// *convergent* loop of Figure 4a.
///
/// Five deep multiply/add lanes over nine input streams: lots of medium
/// lifetimes whose scheduling components shrink as the II grows, and almost
/// no distance components — so increasing the II trades performance for
/// registers smoothly (the paper: 54 regs at II 7, 32 at 13, 16 at 31).
pub fn apsi47_like() -> Ddg {
    let mut b = DdgBuilder::new("apsi47");
    let loads: Vec<_> = (0..9).map(|i| b.add_op(OpKind::Load, format!("ld{i}"))).collect();
    for lane in 0..5 {
        let a = loads[(2 * lane) % 9];
        let c = loads[(2 * lane + 1) % 9];
        // t = (a*c + a) * c + a ... depth-6 alternating chain.
        let mut cur = {
            let m = b.add_op(OpKind::Mul, format!("m{lane}_0"));
            b.reg(a, m);
            b.reg(c, m);
            m
        };
        for d in 1..6 {
            let kind = if d % 2 == 0 { OpKind::Mul } else { OpKind::Add };
            let op = b.add_op(kind, format!("t{lane}_{d}"));
            b.reg(cur, op);
            b.reg(loads[(lane + d) % 9], op);
            cur = op;
        }
        let st = b.add_op(OpKind::Store, format!("st{lane}"));
        b.reg(cur, st);
    }
    b.build().expect("apsi47 stand-in is well-formed")
}

/// A stand-in for loop 50 of APSI (second loop of subroutine PADEC): the
/// *non-convergent* loop of Figure 4b.
///
/// Four pinned stencil accumulations with 5–6 taps each (22 distance-
/// component registers in total, matching the paper's count for this loop)
/// plus 11 loop-invariant coefficients: a register floor in the low forties
/// that no II can go below — yet spilling reaches 32 and even 16 registers,
/// exactly the paper's point.
pub fn apsi50_like() -> Ddg {
    let mut b = DdgBuilder::new("apsi50");
    let taps_per_array = [5u32, 6, 5, 6]; // Σ = 22 distance registers
    let mut lane_results = Vec::new();
    for (a, &taps) in taps_per_array.iter().enumerate() {
        let ld = b.add_op(OpKind::Load, format!("ld{a}"));
        let mut acc = b.add_op(OpKind::Mul, format!("m{a}_0"));
        b.reg(ld, acc);
        b.invariant(format!("c{a}_0"), &[acc]);
        for j in 1..=taps {
            let kind = if j % 2 == 0 { OpKind::Mul } else { OpKind::Add };
            let next = b.add_op(kind, format!("a{a}_{j}"));
            b.reg(acc, next);
            b.reg_dist(ld, next, j);
            acc = next;
        }
        lane_results.push(acc);
    }
    let mut combined = lane_results[0];
    for (a, &lane) in lane_results.iter().enumerate().skip(1) {
        let add = b.add_op(OpKind::Add, format!("comb{a}"));
        b.reg(combined, add);
        b.reg(lane, add);
        combined = add;
    }
    let st = b.add_op(OpKind::Store, "st");
    b.reg(combined, st);
    // Seven more coefficient invariants used by scaling multiplies.
    for k in 0..7 {
        let scale = b.add_op(OpKind::Mul, format!("p{k}"));
        b.reg(combined, scale);
        b.invariant(format!("k{k}"), &[scale]);
        let sink = b.add_op(OpKind::Store, format!("stp{k}"));
        b.reg(scale, sink);
    }
    b.build().expect("apsi50 stand-in is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_core::{IncreaseIiDriver, SpillDriver, SpillDriverOptions};
    use regpipe_machine::MachineConfig;
    use regpipe_regalloc::allocate;
    use regpipe_sched::{mii, HrmsScheduler, SchedRequest, Scheduler};

    #[test]
    fn example_loop_matches_figure2() {
        let g = example_loop();
        let m = MachineConfig::uniform(4, 2);
        assert_eq!(mii(&g, &m), 1);
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        assert_eq!(s.ii(), 1);
    }

    #[test]
    fn apsi47_has_high_pressure_but_converges() {
        let g = apsi47_like();
        let m = MachineConfig::p2l4();
        let lo = mii(&g, &m);
        assert_eq!(lo, 8, "15 multiplies on 2 units (paper's loop sits at 7)");
        let driver = IncreaseIiDriver::new();
        let (s, a) = driver.probe(&g, &m, lo).unwrap();
        assert!(a.total() >= 45, "high pressure at MII: {}", a.total());
        let _ = s;
        // Converges at both register budgets (Figure 4a).
        let at32 = driver.run(&g, &m, 32).expect("fits 32 by increasing II");
        assert!(at32.schedule.ii() > lo);
        let at16 = driver.run(&g, &m, 16).expect("fits 16 by increasing II");
        assert!(at16.schedule.ii() > at32.schedule.ii());
    }

    #[test]
    fn apsi50_never_converges_but_spills_fine() {
        let g = apsi50_like();
        let m = MachineConfig::p2l4();
        let driver = IncreaseIiDriver::new();
        let err = driver.run(&g, &m, 32).expect_err("Figure 4b: never converges to 32");
        assert!(err.best_regs > 32);
        // Spilling reaches 32 and even 16 registers (Figure 7b).
        let spill = SpillDriver::new(SpillDriverOptions::default());
        let at32 = spill.run(&g, &m, 32).expect("spill fits 32");
        at32.schedule.verify(&at32.ddg, &m).unwrap();
        let at16 = spill.run(&g, &m, 16).expect("spill fits 16");
        assert!(at16.allocation.total() <= 16);
        assert!(at16.spilled >= at32.spilled);
    }

    #[test]
    fn apsi50_distance_floor_matches_paper() {
        let g = apsi50_like();
        let m = MachineConfig::p2l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::default()).unwrap();
        let analysis = regpipe_regalloc::LifetimeAnalysis::new(&g, &s);
        assert!(
            analysis.distance_component_regs() >= 22,
            "the paper counts 22 distance registers for APSI 50, got {}",
            analysis.distance_component_regs()
        );
        assert_eq!(g.num_live_invariants(), 11);
    }

    #[test]
    fn paper_loops_schedule_on_all_three_machines() {
        for m in MachineConfig::paper_configs() {
            for g in [example_loop(), apsi47_like(), apsi50_like()] {
                let s = HrmsScheduler::new()
                    .schedule(&g, &m, &SchedRequest::default())
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", g.name(), m.name()));
                s.verify(&g, &m).unwrap();
                let a = allocate(&g, &s);
                assert!(a.total() > 0);
            }
        }
    }
}
