//! Ordered parallel map with a chunked work queue.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// and returns the results **in input order**.
///
/// Work is claimed in chunks off a shared atomic counter, so a slow item
/// (the suite's weights are heavy-tailed) only delays its own chunk while
/// other workers drain the rest of the queue. Which thread computes which
/// item is scheduling-dependent, but the returned vector is not: results
/// are reassembled by index, so for a deterministic `f` the output is
/// identical for every `jobs` value, including 1.
///
/// With `jobs == 1` (or one item) no threads are spawned at all; that path
/// is the reference behavior the parallel path must match.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers finish their
/// current chunks.
pub fn parallel_map<T, R, F>(items: &[T], jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.get().min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Small chunks for load balance, but never so many that queue traffic
    // dominates: ~16 chunks per worker.
    let chunk = (n / (workers * 16)).max(1);
    let next = AtomicUsize::new(0);

    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (offset, item) in items[start..end].iter().enumerate() {
                            let i = start + offset;
                            produced.push((i, f(i, item)));
                        }
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // Re-raise the worker's own panic payload so the original
                // diagnostic (e.g. an assert naming the failing loop)
                // reaches the caller intact.
                h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn preserves_order_for_any_job_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for j in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, jobs(j), |_, x| x * x), expect, "jobs={j}");
        }
    }

    #[test]
    fn passes_the_item_index() {
        let items = vec!["a", "b", "c"];
        let got = parallel_map(&items, jobs(2), |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, jobs(4), |_, x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], jobs(4), |_, x| x + 1), [8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items: Vec<u32> = (0..5).collect();
        assert_eq!(parallel_map(&items, jobs(32), |_, x| *x), items);
    }
}
