//! A minimal JSON value model: deterministic rendering plus a strict
//! parser for round-trip checks.
//!
//! The environment is offline, so `serde_json` is not available; this is
//! the small slice the batch reports need. Objects keep their insertion
//! order (a `Vec` of pairs, not a map), which makes rendering byte-stable
//! — the property the determinism tests and the `BENCH_suite.json`
//! trajectory rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (all the report's numbers are integral).
    Int(i64),
    /// A float; rendered with `{}` (shortest round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: an integer value from a `u64` (saturating; the report's
    /// counters are far below `i64::MAX`).
    pub fn uint(v: u64) -> Value {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` omits the point for whole floats; keep it JSON-
                    // unambiguous as a number either way (it already is).
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: exactly one value, nothing but
/// whitespace after it.
///
/// # Errors
///
/// A message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex =
                            bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Value::Object(vec![
            ("schema".into(), Value::Str("regpipe-bench-suite/v1".into())),
            ("n".into(), Value::Int(40)),
            ("share".into(), Value::Num(12.5)),
            (
                "cells".into(),
                Value::Array(vec![Value::Object(vec![
                    ("loop".into(), Value::Str("stream_0000".into())),
                    ("ok".into(), Value::Bool(true)),
                    ("err".into(), Value::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_are_rendered_and_parsed() {
        let v = Value::Str("a\"b\\c\nd\te".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn get_and_as_array_navigate() {
        let doc = parse("{\"a\": [1, 2, 3]}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(doc.get("missing").is_none());
    }
}
