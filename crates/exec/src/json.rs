//! A minimal JSON value model: deterministic rendering plus a strict
//! parser for round-trip checks.
//!
//! The environment is offline, so `serde_json` is not available; this is
//! the small slice the batch reports and the `regpipe serve` wire protocol
//! need. Objects keep their insertion order (a `Vec` of pairs, not a map),
//! which makes rendering byte-stable — the property the determinism tests,
//! the `BENCH_suite.json` trajectory, and the daemon's cache-on/off
//! byte-identity gate rely on.
//!
//! Strictness guarantees (pinned by tests):
//!
//! * Numbers follow the JSON grammar exactly — `.5`, `5.`, `01`, `1e`, and
//!   a bare `-` are rejected rather than handed to `f64::parse`.
//! * `\uXXXX` escapes decode UTF-16 surrogate pairs into one code point;
//!   a lone surrogate is a parse error, never a silent U+FFFD.
//! * Non-finite floats have no JSON representation; rendering one is an
//!   explicit error ([`Value::try_render`]) or panic ([`Value::render`]),
//!   never a silent `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (all the report's numbers are integral).
    Int(i64),
    /// A float; rendered with `{}` (shortest round-trip form). Must be
    /// finite to render — JSON has no NaN/infinity (see [`Value::finite`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: an integer value from a `u64` (saturating; the report's
    /// counters are far below `i64::MAX`).
    pub fn uint(v: u64) -> Value {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Checked float constructor: the only way to build a [`Value::Num`]
    /// that is guaranteed to render.
    ///
    /// # Errors
    ///
    /// Rejects NaN and infinities — JSON cannot represent them, and the
    /// previous behavior of rendering them as `null` silently changed the
    /// value's type (exactly the corruption a daemon's latency stats must
    /// not suffer).
    pub fn finite(v: f64) -> Result<Value, String> {
        if v.is_finite() {
            Ok(Value::Num(v))
        } else {
            Err(format!("non-finite float {v} has no JSON representation"))
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as a float (integers widen losslessly for the
    /// magnitudes the reports use).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    ///
    /// # Panics
    ///
    /// Panics if the value contains a non-finite float: JSON has no
    /// representation for NaN/infinity, and rendering `null` instead would
    /// be a silent type change. Use [`Value::finite`] to construct floats
    /// that cannot panic here, or [`Value::try_render`] to get the error.
    pub fn render(&self) -> String {
        self.try_render().expect("non-finite float in JSON value")
    }

    /// Renders the value as compact JSON, failing on non-finite floats.
    ///
    /// # Errors
    ///
    /// Names the first non-finite float encountered.
    pub fn try_render(&self) -> Result<String, String> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), String> {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if !x.is_finite() {
                    return Err(format!("non-finite float {x} has no JSON representation"));
                }
                // `{}` omits the point for whole floats; keep it JSON-
                // unambiguous as a number either way (it already is).
                let _ = write!(out, "{x}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: exactly one value, nothing but
/// whitespace after it.
///
/// # Errors
///
/// A message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

/// Parses a number following the JSON grammar exactly:
/// `-? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?`.
///
/// The grammar is validated structurally before the text is handed to the
/// standard parsers, so non-JSON spellings `f64::from_str` would happily
/// accept (`.5`, `5.`, `+5`, `1e`, `inf`, `NaN`) are rejected here.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a lone `0`, or a nonzero digit followed by digits
    // (leading zeros like `01` never consume past the `0`).
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}: missing integer part")),
    }
    let mut float = false;
    if bytes.get(*pos) == Some(&b'.') {
        float = true;
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("bad number at byte {start}: no digits after '.'"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("bad number at byte {start}: empty exponent"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    // Only ASCII was consumed, so the slice is valid UTF-8.
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number text is ASCII");
    if !float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    let num = text.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
    // A grammatically valid literal like `1e999` overflows to infinity;
    // admitting it would let `parse` build values `render` refuses.
    if !num.is_finite() {
        return Err(format!("number at byte {start} overflows f64"));
    }
    Ok(Value::Num(num))
}

/// Parses exactly four hex digits (one UTF-16 code unit of a `\u` escape).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    let mut unit: u16 = 0;
    for _ in 0..4 {
        let digit = match bytes.get(*pos) {
            Some(b @ b'0'..=b'9') => b - b'0',
            Some(b @ b'a'..=b'f') => b - b'a' + 10,
            Some(b @ b'A'..=b'F') => b - b'A' + 10,
            _ => return Err(format!("bad \\u escape at byte {}: need 4 hex digits", *pos)),
        };
        unit = unit * 16 + u16::from(digit);
        *pos += 1;
    }
    Ok(unit)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape_at = *pos;
                match bytes.get(*pos) {
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, pos)?;
                        match unit {
                            // A high surrogate is only meaningful as the
                            // first half of a `\uD8xx\uDCxx` pair encoding
                            // one supplementary-plane code point.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos) != Some(&b'\\')
                                    || bytes.get(*pos + 1) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "lone high surrogate \\u{unit:04x} at byte {escape_at}"
                                    ));
                                }
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{unit:04x} at byte {escape_at} \
                                         not followed by a low surrogate"
                                    ));
                                }
                                let code = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                out.push(
                                    char::from_u32(code).expect("surrogate pair is a scalar"),
                                );
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{unit:04x} at byte {escape_at}"
                                ));
                            }
                            _ => out.push(
                                char::from_u32(u32::from(unit))
                                    .expect("BMP non-surrogate is a scalar"),
                            ),
                        }
                    }
                    Some(other) => {
                        let c = match other {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b'r' => '\r',
                            b't' => '\t',
                            b'b' => '\u{8}',
                            b'f' => '\u{c}',
                            _ => return Err(format!("bad escape at byte {escape_at}")),
                        };
                        out.push(c);
                        *pos += 1;
                    }
                    None => return Err(format!("bad escape at byte {escape_at}")),
                }
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Value::Object(vec![
            ("schema".into(), Value::Str("regpipe-bench-suite/v1".into())),
            ("n".into(), Value::Int(40)),
            ("share".into(), Value::Num(12.5)),
            (
                "cells".into(),
                Value::Array(vec![Value::Object(vec![
                    ("loop".into(), Value::Str("stream_0000".into())),
                    ("ok".into(), Value::Bool(true)),
                    ("err".into(), Value::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_are_rendered_and_parsed() {
        let v = Value::Str("a\"b\\c\nd\te".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn get_and_as_array_navigate() {
        let doc = parse("{\"a\": [1, 2, 3]}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn accessors_narrow_by_type() {
        let doc = parse("{\"s\":\"x\",\"i\":7,\"f\":2.5,\"b\":true}").unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("i").unwrap().as_i64(), Some(7));
        assert_eq!(doc.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("s").unwrap().as_i64(), None);
        assert_eq!(doc.get("i").unwrap().as_str(), None);
    }

    /// Regression: a surrogate pair used to decode one code unit at a time
    /// into two U+FFFD replacement characters instead of the real
    /// supplementary-plane character.
    #[test]
    fn surrogate_pairs_combine_into_one_character() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".into()));
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap(), Value::Str("😀".into()));
        // U+10000, the first supplementary code point (boundary case).
        assert_eq!(parse("\"\\ud800\\udc00\"").unwrap(), Value::Str("\u{10000}".into()));
        // U+10FFFF, the last one.
        assert_eq!(parse("\"\\udbff\\udfff\"").unwrap(), Value::Str("\u{10ffff}".into()));
        // Adjacent pairs and BMP escapes mix freely.
        assert_eq!(parse("\"a\\ud83d\\ude00\\u0041\"").unwrap(), Value::Str("a😀A".into()));
    }

    /// Regression: a lone surrogate used to become U+FFFD silently; it is
    /// not a Unicode scalar value and must be rejected.
    #[test]
    fn lone_surrogates_are_rejected() {
        for doc in [
            "\"\\ud800\"",        // lone high at end of string
            "\"\\ud83dx\"",       // high followed by a plain char
            "\"\\ud83d\\n\"",     // high followed by a non-\u escape
            "\"\\ud83d\\ud83d\"", // high followed by another high
            "\"\\ude00\"",        // lone low
            "\"x\\udfffy\"",      // lone low mid-string
        ] {
            let err = parse(doc).unwrap_err();
            assert!(err.contains("surrogate"), "{doc}: {err}");
        }
    }

    #[test]
    fn malformed_u_escapes_are_rejected() {
        assert!(parse("\"\\u12\"").is_err()); // too short
        assert!(parse("\"\\u12g4\"").is_err()); // non-hex digit
        assert!(parse("\"\\u+123\"").is_err()); // from_str_radix would take this
        assert!(parse("\"\\u\"").is_err()); // nothing at all
    }

    /// The accepted side of the JSON number grammar.
    #[test]
    fn json_numbers_parse() {
        for (doc, want) in [
            ("0", Value::Int(0)),
            ("-0", Value::Int(0)),
            ("12", Value::Int(12)),
            ("-37", Value::Int(-37)),
            ("12.5", Value::Num(12.5)),
            ("0.5", Value::Num(0.5)),
            ("-0.25", Value::Num(-0.25)),
            ("1e3", Value::Num(1000.0)),
            ("1E+3", Value::Num(1000.0)),
            ("25e-2", Value::Num(0.25)),
            ("12.5e1", Value::Num(125.0)),
        ] {
            assert_eq!(parse(doc).unwrap(), want, "{doc}");
        }
        // Integers beyond i64 degrade to floats rather than failing.
        assert_eq!(
            parse("123456789012345678901234567890").unwrap(),
            Value::Num(1.2345678901234568e29)
        );
    }

    /// Regression: the "strict" parser accepted every one of these
    /// non-JSON spellings by deferring validation to `f64::parse`.
    #[test]
    fn non_json_numbers_are_rejected() {
        for doc in [
            ".5",   // missing integer part
            "5.",   // missing fraction digits
            "01",   // leading zero
            "-01",  // leading zero, negative
            "-",    // bare sign
            "1e",   // empty exponent
            "1e+",  // signed empty exponent
            "+5",   // leading plus
            "--1",  // double sign
            "1.e5", // dot with no fraction digits
            "NaN", "inf",
        ] {
            assert!(parse(doc).is_err(), "{doc} must be rejected");
        }
        // In nested positions too, not just at top level.
        assert!(parse("[.5]").is_err());
        assert!(parse("{\"a\": 01}").is_err());
        // Grammatically valid but overflows f64 — would become infinity.
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
    }

    /// Regression: non-finite floats used to render as `null` — a silent
    /// type change. The policy is now an explicit error (or panic via
    /// `render`), and `Value::finite` refuses to construct them.
    #[test]
    fn non_finite_floats_refuse_to_render() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Value::Num(bad).try_render().is_err());
            assert!(Value::finite(bad).is_err());
            // Nested occurrences are caught too.
            let nested = Value::Array(vec![Value::Int(1), Value::Num(bad)]);
            assert!(nested.try_render().is_err());
        }
        assert_eq!(Value::finite(2.5).unwrap().render(), "2.5");
    }

    #[test]
    #[should_panic(expected = "non-finite float")]
    fn render_panics_on_non_finite() {
        let _ = Value::Num(f64::NAN).render();
    }
}
