//! The batch-compilation engine: `BatchRequest` → `BatchReport`.

use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use regpipe_core::{compile, CompileOptions, Strategy};
use regpipe_loops::BenchLoop;
use regpipe_machine::MachineConfig;

use crate::json::Value;
use crate::pmap::parallel_map;

/// One batch run: every loop of a suite, at every register budget, under
/// every strategy — each cell an independent `compile` call.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// The machine model all cells compile for.
    pub machine: MachineConfig,
    /// Register budgets (the paper's evaluation uses `[64, 32]`).
    pub budgets: Vec<u32>,
    /// Strategies to compare; each cell overrides
    /// [`CompileOptions::strategy`] with its own.
    pub strategies: Vec<Strategy>,
    /// Base compile options (heuristic, accelerations).
    pub options: CompileOptions,
    /// Worker threads (see [`crate::resolve_jobs`]).
    pub jobs: NonZeroUsize,
}

/// What happened in one cell.
#[derive(Clone, PartialEq, Debug)]
pub enum CellStatus {
    /// The loop fits the budget.
    Fitted {
        /// Achieved initiation interval.
        ii: u32,
        /// Registers used (≤ the cell's budget).
        regs: u32,
        /// Lifetimes spilled.
        spilled: u32,
        /// Scheduling rounds consumed.
        reschedules: u32,
        /// Memory operations per iteration of the final body.
        memory_ops: u32,
        /// Which strategy actually produced the schedule (for
        /// [`Strategy::BestOfAll`], the winning arm).
        strategy_used: Strategy,
    },
    /// The strategy could not reach the budget.
    Failed {
        /// The driver's error message (deterministic).
        error: String,
    },
}

/// Outcome of one `loop × budget × strategy` cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Index of the loop in the request's suite (report order).
    pub loop_index: usize,
    /// The loop's name.
    pub loop_name: String,
    /// The loop's dynamic execution weight.
    pub weight: u64,
    /// Register budget of this cell.
    pub budget: u32,
    /// Strategy requested for this cell.
    pub strategy: Strategy,
    /// Result of the compile call.
    pub status: CellStatus,
    /// Wall-clock time of the compile call. The only non-deterministic
    /// field; excluded from [`BatchReport::to_json`] unless asked for.
    pub wall: Duration,
}

impl CellOutcome {
    /// Execution cycles this cell contributes (`II · weight`; 0 on failure).
    pub fn cycles(&self) -> u64 {
        match self.status {
            CellStatus::Fitted { ii, .. } => u64::from(ii) * self.weight,
            CellStatus::Failed { .. } => 0,
        }
    }

    /// Dynamic memory references (`memory-ops · weight`; 0 on failure).
    pub fn memory_refs(&self) -> u64 {
        match self.status {
            CellStatus::Fitted { memory_ops, .. } => u64::from(memory_ops) * self.weight,
            CellStatus::Failed { .. } => 0,
        }
    }
}

/// Per-`(budget, strategy)` aggregate of a report.
#[derive(Clone, Debug, Default)]
pub struct BatchAggregate {
    /// Register budget.
    pub budget: u32,
    /// Strategy (as requested).
    pub strategy: Option<Strategy>,
    /// Cells that fit the budget.
    pub fitted: u32,
    /// Cells that failed (excluded from the sums).
    pub failures: u32,
    /// Σ II·weight over fitted cells.
    pub cycles: u64,
    /// Σ memory-ops·weight over fitted cells.
    pub memory_refs: u64,
    /// Σ lifetimes spilled.
    pub spilled: u64,
    /// Σ scheduling rounds.
    pub reschedules: u64,
    /// Σ wall-clock compile time (non-deterministic).
    pub wall: Duration,
}

/// The collected outcomes of a batch run, in deterministic cell order:
/// loop-major, then budget, then strategy, exactly as requested.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Machine name (e.g. `P2L4`).
    pub machine: String,
    /// Canonical slug of the core scheduler every cell ran
    /// (`hrms`/`sms`/`asap`, from [`CompileOptions::scheduler`]).
    pub scheduler: String,
    /// Canonical slug of the spill policy every cell ranked victims with
    /// (from `CompileOptions::spill.policy`).
    pub spill_policy: String,
    /// Number of loops in the suite.
    pub suite_size: usize,
    /// Worker threads the run used (metadata only; results are identical
    /// for every value).
    pub jobs: usize,
    /// One outcome per cell.
    pub cells: Vec<CellOutcome>,
    /// End-to-end wall time of the batch (non-deterministic).
    pub total_wall: Duration,
}

impl BatchReport {
    /// Aggregates grouped by `(budget, strategy)`, in request order.
    pub fn aggregates(&self) -> Vec<BatchAggregate> {
        let mut groups: Vec<BatchAggregate> = Vec::new();
        for cell in &self.cells {
            let agg = match groups
                .iter_mut()
                .find(|a| a.budget == cell.budget && a.strategy == Some(cell.strategy))
            {
                Some(a) => a,
                None => {
                    groups.push(BatchAggregate {
                        budget: cell.budget,
                        strategy: Some(cell.strategy),
                        ..BatchAggregate::default()
                    });
                    groups.last_mut().unwrap()
                }
            };
            agg.wall += cell.wall;
            match cell.status {
                CellStatus::Fitted { spilled, reschedules, .. } => {
                    agg.fitted += 1;
                    agg.cycles += cell.cycles();
                    agg.memory_refs += cell.memory_refs();
                    agg.spilled += u64::from(spilled);
                    agg.reschedules += u64::from(reschedules);
                }
                CellStatus::Failed { .. } => agg.failures += 1,
            }
        }
        groups
    }

    /// Renders the report as `BENCH_suite.json` (schema
    /// `regpipe-bench-suite/v3`; v2 added the top-level `scheduler` field
    /// recording the scheduler axis of the run, v3 the `spill_policy`
    /// field recording the spill-policy axis).
    ///
    /// With `include_timing = false` (the default for emitted files) the
    /// rendering contains only deterministic fields and is byte-identical
    /// for any job count; `include_timing = true` adds `wall_us` per cell
    /// and aggregate plus `total_wall_us` and `jobs` at the top level.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut top = vec![
            ("schema".to_string(), Value::Str("regpipe-bench-suite/v3".into())),
            ("machine".to_string(), Value::Str(self.machine.clone())),
            ("scheduler".to_string(), Value::Str(self.scheduler.clone())),
            ("spill_policy".to_string(), Value::Str(self.spill_policy.clone())),
            ("suite_size".to_string(), Value::uint(self.suite_size as u64)),
        ];
        if include_timing {
            top.push(("jobs".into(), Value::uint(self.jobs as u64)));
            top.push(("total_wall_us".into(), Value::uint(self.total_wall.as_micros() as u64)));
        }
        let aggregates = self
            .aggregates()
            .iter()
            .map(|a| {
                let mut pairs = vec![
                    ("budget".to_string(), Value::uint(u64::from(a.budget))),
                    (
                        "strategy".to_string(),
                        Value::Str(a.strategy.map_or("?", strategy_slug).into()),
                    ),
                    ("fitted".to_string(), Value::uint(u64::from(a.fitted))),
                    ("failures".to_string(), Value::uint(u64::from(a.failures))),
                    ("cycles".to_string(), Value::uint(a.cycles)),
                    ("memory_refs".to_string(), Value::uint(a.memory_refs)),
                    ("spilled".to_string(), Value::uint(a.spilled)),
                    ("reschedules".to_string(), Value::uint(a.reschedules)),
                ];
                if include_timing {
                    pairs.push(("wall_us".into(), Value::uint(a.wall.as_micros() as u64)));
                }
                Value::Object(pairs)
            })
            .collect();
        top.push(("aggregates".into(), Value::Array(aggregates)));
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut pairs = vec![
                    ("loop".to_string(), Value::Str(c.loop_name.clone())),
                    ("index".to_string(), Value::uint(c.loop_index as u64)),
                    ("weight".to_string(), Value::uint(c.weight)),
                    ("budget".to_string(), Value::uint(u64::from(c.budget))),
                    ("strategy".to_string(), Value::Str(strategy_slug(c.strategy).into())),
                ];
                match &c.status {
                    CellStatus::Fitted {
                        ii,
                        regs,
                        spilled,
                        reschedules,
                        memory_ops,
                        strategy_used,
                    } => {
                        pairs.push(("status".into(), Value::Str("fitted".into())));
                        pairs.push(("ii".into(), Value::uint(u64::from(*ii))));
                        pairs.push(("regs".into(), Value::uint(u64::from(*regs))));
                        pairs.push(("spilled".into(), Value::uint(u64::from(*spilled))));
                        pairs
                            .push(("reschedules".into(), Value::uint(u64::from(*reschedules))));
                        pairs.push(("memory_ops".into(), Value::uint(u64::from(*memory_ops))));
                        pairs.push(("cycles".into(), Value::uint(c.cycles())));
                        pairs.push(("memory_refs".into(), Value::uint(c.memory_refs())));
                        pairs.push((
                            "strategy_used".into(),
                            Value::Str(strategy_slug(*strategy_used).into()),
                        ));
                    }
                    CellStatus::Failed { error } => {
                        pairs.push(("status".into(), Value::Str("failed".into())));
                        pairs.push(("error".into(), Value::Str(error.clone())));
                    }
                }
                if include_timing {
                    pairs.push(("wall_us".into(), Value::uint(c.wall.as_micros() as u64)));
                }
                Value::Object(pairs)
            })
            .collect();
        top.push(("cells".into(), Value::Array(cells)));
        let mut text = Value::Object(top).render();
        text.push('\n');
        text
    }
}

/// The canonical CLI spelling of a strategy.
pub fn strategy_slug(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::BestOfAll => "best",
        Strategy::Spill => "spill",
        Strategy::IncreaseIi => "increase-ii",
    }
}

/// Parses a CLI strategy spelling (the inverse of [`strategy_slug`]).
///
/// # Errors
///
/// Names the unknown value.
pub fn parse_strategy(raw: &str) -> Result<Strategy, String> {
    match raw {
        "best" => Ok(Strategy::BestOfAll),
        "spill" => Ok(Strategy::Spill),
        "increase-ii" => Ok(Strategy::IncreaseIi),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

/// Runs every `loop × budget × strategy` cell of `req` over `loops`,
/// fanning out across `req.jobs` workers.
///
/// Cell results are deterministic and ordered (loop-major, then budget,
/// then strategy) regardless of the worker count; only the `wall` fields
/// differ between runs.
pub fn run_batch(loops: &[BenchLoop], req: &BatchRequest) -> BatchReport {
    let started = Instant::now();
    let mut keys: Vec<(usize, u32, Strategy)> =
        Vec::with_capacity(loops.len() * req.budgets.len() * req.strategies.len());
    for index in 0..loops.len() {
        for &budget in &req.budgets {
            for &strategy in &req.strategies {
                keys.push((index, budget, strategy));
            }
        }
    }
    let cells = parallel_map(&keys, req.jobs, |_, &(index, budget, strategy)| {
        let l = &loops[index];
        let options = CompileOptions { strategy, ..req.options };
        let cell_started = Instant::now();
        let status = match compile(&l.ddg, &req.machine, budget, &options) {
            Ok(c) => CellStatus::Fitted {
                ii: c.ii(),
                regs: c.registers_used(),
                spilled: c.spilled(),
                reschedules: c.reschedules(),
                memory_ops: c.memory_ops(),
                strategy_used: c.strategy_used(),
            },
            Err(e) => CellStatus::Failed { error: e.to_string() },
        };
        CellOutcome {
            loop_index: index,
            loop_name: l.name.clone(),
            weight: l.weight,
            budget,
            strategy,
            status,
            wall: cell_started.elapsed(),
        }
    });
    BatchReport {
        machine: req.machine.name().to_string(),
        scheduler: req.options.scheduler.slug().to_string(),
        spill_policy: req.options.spill_policy().slug().to_string(),
        suite_size: loops.len(),
        jobs: req.jobs.get(),
        cells,
        total_wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_loops::suite;

    fn request(jobs: usize) -> BatchRequest {
        BatchRequest {
            machine: MachineConfig::p2l4(),
            budgets: vec![64, 32],
            strategies: vec![Strategy::BestOfAll, Strategy::IncreaseIi],
            options: CompileOptions::default(),
            jobs: NonZeroUsize::new(jobs).unwrap(),
        }
    }

    #[test]
    fn cell_order_is_loop_major() {
        let loops = suite(3, 3);
        let report = run_batch(&loops, &request(2));
        assert_eq!(report.cells.len(), 3 * 2 * 2);
        let head: Vec<(usize, u32)> =
            report.cells.iter().take(5).map(|c| (c.loop_index, c.budget)).collect();
        assert_eq!(head, [(0, 64), (0, 64), (0, 32), (0, 32), (1, 64)]);
    }

    #[test]
    fn aggregates_group_in_request_order() {
        let loops = suite(3, 4);
        let report = run_batch(&loops, &request(1));
        let aggs = report.aggregates();
        assert_eq!(aggs.len(), 4);
        assert_eq!(aggs[0].budget, 64);
        assert_eq!(aggs[0].strategy, Some(Strategy::BestOfAll));
        assert_eq!(aggs[3].budget, 32);
        assert_eq!(aggs[3].strategy, Some(Strategy::IncreaseIi));
        for a in &aggs {
            assert_eq!(a.fitted + a.failures, 4);
        }
    }

    #[test]
    fn json_parses_and_omits_timing_by_default() {
        let loops = suite(3, 2);
        let report = run_batch(&loops, &request(2));
        let text = report.to_json(false);
        let doc = crate::json::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("schema"), Some(&Value::Str("regpipe-bench-suite/v3".into())));
        assert_eq!(doc.get("scheduler"), Some(&Value::Str("hrms".into())));
        assert_eq!(doc.get("spill_policy"), Some(&Value::Str("paper".into())));
        assert!(!text.contains("wall_us"));
        let timed = report.to_json(true);
        assert!(timed.contains("wall_us"));
        crate::json::parse(&timed).expect("timed report JSON parses");
    }

    /// The scheduler axis flows from the request into the report: the
    /// top-level field records the slug, and a non-default scheduler
    /// produces its own deterministic results.
    #[test]
    fn scheduler_axis_is_recorded_and_deterministic() {
        use regpipe_core::SchedulerKind;
        let loops = suite(3, 4);
        for kind in SchedulerKind::ALL {
            let mut req = request(2);
            req.options.scheduler = kind;
            let parallel = run_batch(&loops, &req).to_json(false);
            req.jobs = NonZeroUsize::new(1).unwrap();
            let sequential = run_batch(&loops, &req).to_json(false);
            assert_eq!(parallel, sequential, "{kind}: jobs must not matter");
            let doc = crate::json::parse(&parallel).unwrap();
            assert_eq!(doc.get("scheduler"), Some(&Value::Str(kind.slug().into())));
        }
    }

    /// The spill-policy axis flows from the request into the report: the
    /// top-level field records the slug, and every registered policy
    /// produces byte-identical results at any job count.
    #[test]
    fn spill_policy_axis_is_recorded_and_deterministic() {
        use regpipe_core::SpillPolicyKind;
        let loops = suite(3, 4);
        for kind in SpillPolicyKind::ALL {
            let mut req = request(2);
            req.options.spill.policy = kind;
            let parallel = run_batch(&loops, &req).to_json(false);
            req.jobs = NonZeroUsize::new(1).unwrap();
            let sequential = run_batch(&loops, &req).to_json(false);
            assert_eq!(parallel, sequential, "{kind}: jobs must not matter");
            let doc = crate::json::parse(&parallel).unwrap();
            assert_eq!(doc.get("spill_policy"), Some(&Value::Str(kind.slug().into())));
        }
    }

    #[test]
    fn strategy_slugs_roundtrip() {
        for s in [Strategy::BestOfAll, Strategy::Spill, Strategy::IncreaseIi] {
            assert_eq!(parse_strategy(strategy_slug(s)).unwrap(), s);
        }
        assert!(parse_strategy("bogus").is_err());
    }
}
