//! Worker-count policy and output-stability switches.

use std::num::NonZeroUsize;

/// Resolves the worker count for a batch run.
///
/// Precedence: the explicit `flag` (a `--jobs` argument), then the
/// `REGPIPE_JOBS` environment variable, then the machine's available
/// parallelism (1 if unknown). Invalid values — non-numeric or zero — are
/// hard errors rather than silent fallbacks, mirroring the strict
/// `REGPIPE_SUITE_SIZE` handling in `regpipe_loops`.
///
/// # Errors
///
/// A human-readable message naming the offending source and value.
pub fn resolve_jobs(flag: Option<&str>) -> Result<NonZeroUsize, String> {
    if let Some(raw) = flag {
        return parse_jobs("--jobs", raw);
    }
    if let Ok(raw) = std::env::var("REGPIPE_JOBS") {
        return parse_jobs("REGPIPE_JOBS", raw.as_str());
    }
    Ok(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
}

fn parse_jobs(source: &str, raw: &str) -> Result<NonZeroUsize, String> {
    raw.parse::<NonZeroUsize>()
        .map_err(|_| format!("{source} must be a positive integer, got '{raw}'"))
}

/// Whether wall-clock fields should be suppressed from human-readable
/// output (`REGPIPE_STABLE_OUTPUT=1`), so runs can be byte-compared across
/// job counts and machines. Timings are the only non-deterministic part of
/// a batch run; everything else is identical regardless of this switch.
pub fn stable_output() -> bool {
    std::env::var("REGPIPE_STABLE_OUTPUT").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_flag_wins_and_is_strict() {
        assert_eq!(resolve_jobs(Some("3")).unwrap().get(), 3);
        assert!(resolve_jobs(Some("0")).unwrap_err().contains("--jobs"));
        assert!(resolve_jobs(Some("four")).unwrap_err().contains("'four'"));
    }

    #[test]
    fn default_is_at_least_one() {
        // No flag: either REGPIPE_JOBS (if the harness sets it) or the
        // machine's parallelism — both are >= 1 by construction.
        if std::env::var("REGPIPE_JOBS").is_err() {
            assert!(resolve_jobs(None).unwrap().get() >= 1);
        }
    }
}
