//! Deterministic multi-threaded batch execution for the evaluation suite.
//!
//! The paper's evaluation (Section 5) compiles ~1258 loops at two register
//! budgets under three strategies — thousands of independent `compile`
//! calls. This crate fans those cells out across worker threads while
//! keeping every observable result **bit-identical to a sequential run**:
//!
//! * [`parallel_map`] — an ordered parallel map on [`std::thread::scope`]
//!   with a chunked atomic work queue. Results come back in input order
//!   regardless of worker count, so any deterministic per-item function
//!   stays deterministic under parallelism.
//! * [`BatchRequest`] / [`run_batch`] — the batch-compilation engine: every
//!   `BenchLoop × budget × strategy` cell is compiled independently and
//!   collected into a [`BatchReport`] (II, registers, spills, reschedules,
//!   wall time per cell) whose deterministic portion is byte-identical for
//!   any `--jobs` value.
//! * [`BatchReport::to_json`] — a machine-readable `BENCH_suite.json`
//!   rendering (schema `regpipe-bench-suite/v3`, see [`json`]) so the perf
//!   trajectory is trackable across PRs; v2 records the scheduler axis
//!   (`CompileOptions::scheduler`) as a top-level `scheduler` field.
//! * [`resolve_jobs`] — worker-count policy: explicit flag, then the
//!   `REGPIPE_JOBS` environment variable, then the machine's available
//!   parallelism. Invalid values are hard errors, never silent fallbacks.
//!
//! Wall-clock times are the only non-deterministic fields; they are kept
//! out of [`BatchReport::to_json`] unless timing is explicitly requested,
//! and suppressed from human output when [`stable_output`] is on.
//!
//! The crate has no registry dependencies (the environment is offline);
//! JSON support is a small vendored value model in [`json`].
//!
//! ```
//! use std::num::NonZeroUsize;
//! use regpipe_core::{CompileOptions, Strategy};
//! use regpipe_exec::{run_batch, BatchRequest};
//! use regpipe_loops::suite;
//! use regpipe_machine::MachineConfig;
//!
//! let loops = suite(7, 4);
//! let req = BatchRequest {
//!     machine: MachineConfig::p2l4(),
//!     budgets: vec![64, 32],
//!     strategies: vec![Strategy::BestOfAll],
//!     options: CompileOptions::default(),
//!     jobs: NonZeroUsize::new(2).unwrap(),
//! };
//! let report = run_batch(&loops, &req);
//! assert_eq!(report.cells.len(), 4 * 2);
//! // The deterministic rendering is identical for any job count.
//! let sequential = run_batch(&loops, &BatchRequest { jobs: NonZeroUsize::new(1).unwrap(), ..req.clone() });
//! assert_eq!(report.to_json(false), sequential.to_json(false));
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

mod batch;
mod jobs;
pub mod json;
mod pmap;

pub use batch::{
    parse_strategy, run_batch, strategy_slug, BatchAggregate, BatchReport, BatchRequest,
    CellOutcome, CellStatus,
};
pub use jobs::{resolve_jobs, stable_output};
pub use pmap::parallel_map;
