//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of proptest the workspace's property tests use: composable
//! [`strategy::Strategy`] values (ranges, tuples, `prop_map`, collections,
//! sampling), [`any`], the [`proptest!`] macro, and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! deterministic per-case seed, so a failure reproduces exactly by rerunning
//! the test. That trade keeps the stub small while preserving the property
//! coverage the suite relies on.

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

pub mod strategy {
    //! Strategies: deterministic value factories composed like proptest's.

    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A factory for test values, driven by the per-case generator.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produce one value for this test case.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Full-domain generation for primitive types.

    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt};

    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value over the type's whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random_range(0..2u32) == 1
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy { _marker: core::marker::PhantomData }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<T> {
    arbitrary::AnyStrategy::default()
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;

    use crate::strategy::Strategy;

    /// Element counts for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Sampling from fixed sets.

    use rand::rngs::StdRng;
    use rand::RngExt;

    use crate::strategy::Strategy;

    /// Strategy choosing uniformly from a fixed vector.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// A strategy that picks one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod test_runner {
    //! Case scheduling for the [`crate::proptest!`] macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator: case `i` always sees the same seed.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(
            0x005E_ED0F_1258 ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias for the crate root, so `prop::sample::select(..)` etc. work
    /// after a glob import of the prelude.
    pub mod prop {
        pub use crate::{any, arbitrary, collection, sample, strategy, test_runner};
    }
}

/// Define property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property (fails the whole test immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// Without shrinking there is nothing to discard into; the stub simply
/// `continue`s to the next case, which is sound because the macro expands
/// inside the per-case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
