//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) and ranged sampling through [`RngExt`].
//!
//! Determinism is a feature here, not a compromise: the benchmark suite in
//! `regpipe_loops` must generate identical loops for identical seeds on every
//! platform, and the determinism integration test enforces exactly that.

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Produce the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranged sampling, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of a primitive type over its full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// Full-domain sampling for primitives, backing [`RngExt::random`].
pub trait Standard {
    /// Draw one value over the type's whole domain using `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator. Same seed, same stream, everywhere.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble so that nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0xD1B5_4A32_D192_ED03 };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..512 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(2.0..4.2f64);
            assert!((2.0..4.2).contains(&f));
            let i = rng.random_range(-5..6i64);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
