//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the bench harness is
//! vendored: the same `criterion_group!`/`criterion_main!` sources compile
//! unchanged, and running them reports a mean wall-clock ns/iter per
//! benchmark instead of criterion's full statistical analysis.
//!
//! Outside `cargo bench` (i.e. without a `--bench` argument) every benchmark
//! body runs exactly once, so bench binaries double as smoke tests.

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export so sources written against criterion's `black_box` still work.
pub use std::hint::black_box;

/// Top-level driver handed to each benchmark function.
pub struct Criterion {
    /// One quick iteration per bench (test mode) instead of a timed run.
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { quick: !bench_mode }
    }
}

impl Criterion {
    /// Runs one named benchmark body, reporting mean ns/iter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.quick);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group; its benchmarks report as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.repr);
        let mut b = Bencher::new(self.criterion.quick);
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Accepted for source compatibility; the stub has no sampling plan.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (a no-op here, as in criterion's API contract).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{function}/{parameter}") }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    quick: bool,
    iters: u64,
    nanos: u128,
}

impl Bencher {
    fn new(quick: bool) -> Self {
        Bencher { quick, iters: 0, nanos: 0 }
    }

    /// Times `f`: one pass in test mode, a ~200ms sampling loop under
    /// `cargo bench`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up pass, also the only pass in quick (test) mode.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().as_nanos();
        if self.quick {
            self.iters = 1;
            self.nanos = first;
            return;
        }
        // Aim for ~200ms of measurement, between 10 and 10_000 iterations.
        let per_iter = first.max(1);
        let target = (200_000_000 / per_iter).clamp(10, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.iters = target;
        self.nanos = start.elapsed().as_nanos();
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<48} (no measurement)");
        } else {
            let per = self.nanos / u128::from(self.iters);
            println!("{id:<48} {per:>12} ns/iter ({} iters)", self.iters);
        }
    }
}

/// One timing result from [`measure`]: how many iterations ran and how long
/// they took in total.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Iterations executed.
    pub iters: u64,
    /// Total wall time of those iterations, in nanoseconds.
    pub total_nanos: u128,
}

impl Measurement {
    /// Mean wall time per iteration, in nanoseconds.
    pub fn mean_nanos(&self) -> u128 {
        self.total_nanos / u128::from(self.iters.max(1))
    }
}

/// Runs `f` through the harness's sampling loop and returns the measurement
/// instead of printing it.
///
/// With `timed = false` the body runs exactly once (the quick mode bench
/// binaries use under `cargo test`); with `timed = true` it runs the same
/// ~200 ms sampling plan as [`Bencher::iter`]. This is the entry point for
/// callers that consume timings programmatically — e.g. the `regpipe bench`
/// subcommand building `BENCH_compile.json`.
pub fn measure<O, F>(timed: bool, mut f: F) -> Measurement
where
    F: FnMut() -> O,
{
    let mut b = Bencher::new(!timed);
    b.iter(&mut f);
    Measurement { iters: b.iters, total_nanos: b.nanos }
}

/// Collect benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
