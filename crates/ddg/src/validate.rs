//! Structural validation of dependence graphs.

use std::error::Error;
use std::fmt;

use crate::edge::EdgeKind;
use crate::graph::Ddg;
use crate::op::OpId;

/// A violation of the dependence-graph well-formedness rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DdgError {
    /// The graph has no operations; there is nothing to schedule.
    Empty,
    /// A register edge leaves a store, which defines no value.
    RegEdgeFromStore {
        /// The offending store.
        store: OpId,
    },
    /// A fixed (bonded) edge has a non-zero dependence distance.
    FixedEdgeWithDistance {
        /// Source of the edge.
        from: OpId,
        /// Target of the edge.
        to: OpId,
        /// Its (non-zero) distance.
        distance: u32,
    },
    /// A fixed edge is not a register edge.
    FixedEdgeWrongKind {
        /// Source of the edge.
        from: OpId,
        /// Target of the edge.
        to: OpId,
    },
    /// A dependence cycle exists whose total distance is zero: the loop can
    /// never be scheduled (an operation would depend on itself within one
    /// iteration).
    ZeroDistanceCycle {
        /// One operation on the offending cycle.
        witness: OpId,
    },
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::Empty => write!(f, "graph has no operations"),
            DdgError::RegEdgeFromStore { store } => {
                write!(f, "register edge leaves store {store}, which defines no value")
            }
            DdgError::FixedEdgeWithDistance { from, to, distance } => {
                write!(f, "fixed edge {from} -> {to} has non-zero distance {distance}")
            }
            DdgError::FixedEdgeWrongKind { from, to } => {
                write!(f, "fixed edge {from} -> {to} is not a register edge")
            }
            DdgError::ZeroDistanceCycle { witness } => {
                write!(f, "zero-distance dependence cycle through {witness}")
            }
        }
    }
}

impl Error for DdgError {}

/// Checks all well-formedness rules; returns the first violation found.
pub(crate) fn validate(g: &Ddg) -> Result<(), DdgError> {
    if g.num_ops() == 0 {
        return Err(DdgError::Empty);
    }
    for e in g.edges() {
        if e.kind() == EdgeKind::RegFlow && !g.op(e.from()).kind().defines_value() {
            return Err(DdgError::RegEdgeFromStore { store: e.from() });
        }
        if e.is_fixed() {
            if e.distance() != 0 {
                return Err(DdgError::FixedEdgeWithDistance {
                    from: e.from(),
                    to: e.to(),
                    distance: e.distance(),
                });
            }
            if e.kind() != EdgeKind::RegFlow {
                return Err(DdgError::FixedEdgeWrongKind { from: e.from(), to: e.to() });
            }
        }
    }
    if let Some(witness) = zero_distance_cycle(g) {
        return Err(DdgError::ZeroDistanceCycle { witness });
    }
    Ok(())
}

/// Finds a node on a cycle all of whose edges have distance zero, if any.
///
/// Such a cycle makes the loop unschedulable: an operation would transitively
/// depend on its own result within a single iteration. (Loop-carried cycles,
/// i.e. recurrences, are fine — they just bound RecMII.)
fn zero_distance_cycle(g: &Ddg) -> Option<OpId> {
    // DFS over the subgraph of zero-distance edges with coloring.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = g.num_ops();
    let mut color = vec![Color::White; n];
    // Iterative DFS to avoid recursion limits on big graphs.
    for root in g.op_ids() {
        if color[root.index()] != Color::White {
            continue;
        }
        let mut stack: Vec<(OpId, bool)> = vec![(root, false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                color[v.index()] = Color::Black;
                continue;
            }
            if color[v.index()] == Color::Black {
                continue;
            }
            if color[v.index()] == Color::Grey {
                // Already on the stack as unprocessed duplicate; skip.
                continue;
            }
            color[v.index()] = Color::Grey;
            stack.push((v, true));
            for e in g.out_edges(v) {
                if e.distance() != 0 {
                    continue;
                }
                match color[e.to().index()] {
                    Color::Grey => return Some(e.to()),
                    Color::White => stack.push((e.to(), false)),
                    Color::Black => {}
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::op::OpKind;

    #[test]
    fn empty_graph_is_invalid() {
        assert_eq!(Ddg::new("e").validate(), Err(DdgError::Empty));
    }

    #[test]
    fn valid_chain_passes() {
        let mut g = Ddg::new("c");
        let a = g.add_op(OpKind::Load, "a");
        let b = g.add_op(OpKind::Store, "b");
        g.add_edge(Edge::new(a, b, EdgeKind::RegFlow, 0));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn reg_edge_from_store_rejected() {
        let mut g = Ddg::new("bad");
        let s = g.add_op(OpKind::Store, "s");
        let t = g.add_op(OpKind::Add, "t");
        g.add_edge(Edge::new(s, t, EdgeKind::RegFlow, 0));
        assert_eq!(g.validate(), Err(DdgError::RegEdgeFromStore { store: s }));
    }

    #[test]
    fn mem_edge_from_store_is_fine() {
        let mut g = Ddg::new("ok");
        let s = g.add_op(OpKind::Store, "s");
        let l = g.add_op(OpKind::Load, "l");
        g.add_edge(Edge::new(s, l, EdgeKind::Mem, 1));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn multiple_consistent_bonds_accepted() {
        // Two reloads bonded to one consumer (with a stagger) are legal;
        // offset consistency is machine-dependent and checked by the
        // scheduler's complex-group derivation.
        let mut g = Ddg::new("bonds");
        let a = g.add_op(OpKind::Load, "a");
        let b = g.add_op(OpKind::Load, "b");
        let c = g.add_op(OpKind::Add, "c");
        g.add_edge(Edge::fixed(a, c));
        g.add_edge(Edge::fixed_staggered(b, c, 1));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut g = Ddg::new("cyc0");
        let a = g.add_op(OpKind::Add, "a");
        let b = g.add_op(OpKind::Add, "b");
        g.add_edge(Edge::new(a, b, EdgeKind::RegFlow, 0));
        g.add_edge(Edge::new(b, a, EdgeKind::RegFlow, 0));
        assert!(matches!(g.validate(), Err(DdgError::ZeroDistanceCycle { .. })));
    }

    #[test]
    fn loop_carried_cycle_accepted() {
        let mut g = Ddg::new("rec");
        let a = g.add_op(OpKind::Add, "a");
        let b = g.add_op(OpKind::Add, "b");
        g.add_edge(Edge::new(a, b, EdgeKind::RegFlow, 0));
        g.add_edge(Edge::new(b, a, EdgeKind::RegFlow, 1));
        assert!(g.validate().is_ok(), "recurrences are legal");
    }

    #[test]
    fn self_loop_with_distance_accepted() {
        let mut g = Ddg::new("self");
        let a = g.add_op(OpKind::Add, "a");
        g.add_edge(Edge::new(a, a, EdgeKind::RegFlow, 1));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn self_loop_zero_distance_rejected() {
        let mut g = Ddg::new("self0");
        let a = g.add_op(OpKind::Add, "a");
        g.add_edge(Edge::new(a, a, EdgeKind::RegFlow, 0));
        assert_eq!(g.validate(), Err(DdgError::ZeroDistanceCycle { witness: a }));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = DdgError::RegEdgeFromStore { store: OpId::new(7) };
        assert!(e.to_string().contains("op7"));
    }
}
