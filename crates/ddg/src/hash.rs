//! Stable content addressing for dependence graphs.
//!
//! `regpipe serve` keys its result cache by *what the loop is*, not where
//! it came from: two textually different `.ddg` files that parse to the
//! same graph (comment/whitespace/ordering differences aside) must map to
//! the same cache entry. The canonical form is [`crate::textfmt::format`]
//! — already the round-trip normal form every disk frontend goes through
//! — and the hash is FNV-1a over its bytes, which is fully specified here
//! so the value is stable across runs, platforms, and Rust versions
//! (unlike `std::hash`, whose output is deliberately unspecified).

use crate::textfmt;
use crate::Ddg;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string: the workspace's stable, dependency-free
/// hash. Not cryptographic — collisions are possible in principle — but
/// the daemon's cache only ever trades a collision for a wrong *cached*
/// answer on adversarial inputs, and the corpus funnel is trusted.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The stable content address of a graph: FNV-1a over its canonical text
/// form ([`crate::textfmt::format`]).
///
/// Two graphs have equal hashes exactly when their canonical renderings
/// are byte-equal; the loop's name participates (it is part of the
/// canonical form), so corpora with stable names address stably.
///
/// ```
/// use regpipe_ddg::{content_hash, textfmt};
///
/// let a = textfmt::parse("loop l\nop x add\n").unwrap();
/// let b = textfmt::parse("# comment\nloop l\n\nop x add\n").unwrap();
/// assert_eq!(content_hash(&a), content_hash(&b)); // same canonical form
/// ```
pub fn content_hash(ddg: &Ddg) -> u64 {
    fnv1a(textfmt::format(ddg).as_bytes())
}

/// [`content_hash`] as the fixed-width lowercase hex string used in wire
/// responses and log lines (16 digits, zero-padded).
pub fn content_hash_hex(ddg: &Ddg) -> String {
    format!("{:016x}", content_hash(ddg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, OpKind};

    fn sample(name: &str, dist: u32) -> Ddg {
        let mut b = DdgBuilder::new(name);
        let ld = b.add_op(OpKind::Load, "ld");
        let add = b.add_op(OpKind::Add, "+");
        b.reg_dist(ld, add, dist);
        b.build().unwrap()
    }

    /// The hash is pinned: any drift silently invalidates every
    /// content-addressed artifact, so it must be a deliberate change.
    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn equal_graphs_hash_equal_and_different_graphs_differ() {
        assert_eq!(content_hash(&sample("l", 3)), content_hash(&sample("l", 3)));
        assert_ne!(content_hash(&sample("l", 3)), content_hash(&sample("l", 4)));
        assert_ne!(content_hash(&sample("l", 3)), content_hash(&sample("m", 3)));
    }

    #[test]
    fn hex_form_is_fixed_width() {
        let h = content_hash_hex(&sample("l", 3));
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn hash_survives_a_text_round_trip() {
        let g = sample("rt", 2);
        let reparsed = crate::textfmt::parse(&crate::textfmt::format(&g)).unwrap();
        assert_eq!(content_hash(&g), content_hash(&reparsed));
    }
}
