//! Dependence edges.

use std::fmt;

use crate::op::OpId;

/// Index of an edge inside a [`crate::Ddg`].
///
/// Edge ids are invalidated by edge removal (the spill rewriter removes the
/// register edges of the value it spills); they should be treated as
/// short-lived handles obtained from the graph's accessors.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }

    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The kind of a dependence edge (paper Section 2.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum EdgeKind {
    /// Register (flow) data dependence: the source operation produces a
    /// value in a register that the target consumes. Only *flow* register
    /// dependences exist in the model because register allocation happens
    /// after scheduling (paper Section 2.1).
    RegFlow,
    /// Memory data dependence (e.g. a spill store feeding a spill load).
    /// The full source latency must elapse before the target may issue.
    Mem,
    /// Ordering-only dependence with zero latency: the target may not start
    /// before the source *starts* (minus δ·II). Used by the spill rewriter
    /// to keep reloads connected to the original load without forcing them
    /// after its completion (the value is already in memory).
    Order,
}

impl EdgeKind {
    /// All edge kinds.
    pub const ALL: [EdgeKind; 3] = [EdgeKind::RegFlow, EdgeKind::Mem, EdgeKind::Order];

    /// Whether the dependence carries a register value (and therefore
    /// defines a lifetime segment for the source's loop variant).
    pub fn carries_value(self) -> bool {
        matches!(self, EdgeKind::RegFlow)
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::RegFlow => "reg",
            EdgeKind::Mem => "mem",
            EdgeKind::Order => "ord",
        };
        f.write_str(s)
    }
}

/// A dependence edge `from → to` with iteration distance δ.
///
/// The scheduling constraint implied by an edge is
/// `t(to) ≥ t(from) + effective_latency(from) − δ·II`
/// where the effective latency depends on [`EdgeKind`] (zero for
/// [`EdgeKind::Order`], the machine latency of `from` otherwise).
///
/// When [`Edge::is_fixed`] the constraint becomes an *equality*
/// `t(to) = t(from) + latency(from) + stagger`: the two operations form part
/// of a "complex operation" and are scheduled as a unit (paper Section 4.3).
/// The stagger is zero for ordinary bonds; the spill rewriter staggers the
/// second and later reloads of one consumer by a cycle each so they do not
/// all claim the same memory-unit slot. Fixed edges always have distance
/// zero.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    from: OpId,
    to: OpId,
    kind: EdgeKind,
    distance: u32,
    fixed: bool,
    stagger: u32,
}

impl Edge {
    /// Creates a free (non-fixed) edge.
    pub fn new(from: OpId, to: OpId, kind: EdgeKind, distance: u32) -> Self {
        Edge { from, to, kind, distance, fixed: false, stagger: 0 }
    }

    /// Creates a fixed (bonded) register edge: `to` must be scheduled exactly
    /// `latency(from)` cycles after `from`.
    ///
    /// Fixed edges implement the paper's complex operations; they are always
    /// register edges with distance zero.
    ///
    /// An operation may be the target of several fixed edges as long as the
    /// implied offsets are consistent; offset consistency is machine
    /// dependent (latencies) and is checked when the scheduler derives the
    /// complex groups, not by graph validation.
    pub fn fixed(from: OpId, to: OpId) -> Self {
        Edge { from, to, kind: EdgeKind::RegFlow, distance: 0, fixed: true, stagger: 0 }
    }

    /// A fixed edge with an extra stagger:
    /// `t(to) = t(from) + latency(from) + stagger`. Used to bond several
    /// reloads to one consumer without forcing them into the same cycle.
    pub fn fixed_staggered(from: OpId, to: OpId, stagger: u32) -> Self {
        Edge { from, to, kind: EdgeKind::RegFlow, distance: 0, fixed: true, stagger }
    }

    /// Source operation.
    pub fn from(&self) -> OpId {
        self.from
    }

    /// Target operation.
    pub fn to(&self) -> OpId {
        self.to
    }

    /// Edge kind.
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// Dependence distance δ in iterations (0 for intra-iteration edges).
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Whether this edge bonds its endpoints into a complex operation.
    pub fn is_fixed(&self) -> bool {
        self.fixed
    }

    /// Extra cycles added to the bond offset (0 for free edges and plain
    /// bonds).
    pub fn stagger(&self) -> u32 {
        self.stagger
    }

    /// Whether the edge is loop-carried (δ > 0).
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -{}", self.from, self.kind)?;
        if self.distance > 0 {
            write!(f, "[{}]", self.distance)?;
        }
        if self.fixed {
            write!(f, "!")?;
        }
        write!(f, "-> {}", self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_accessors() {
        let e = Edge::new(OpId::new(0), OpId::new(1), EdgeKind::Mem, 3);
        assert_eq!(e.from(), OpId::new(0));
        assert_eq!(e.to(), OpId::new(1));
        assert_eq!(e.kind(), EdgeKind::Mem);
        assert_eq!(e.distance(), 3);
        assert!(!e.is_fixed());
        assert!(e.is_loop_carried());
    }

    #[test]
    fn fixed_edges_are_zero_distance_register_edges() {
        let e = Edge::fixed(OpId::new(2), OpId::new(3));
        assert!(e.is_fixed());
        assert_eq!(e.kind(), EdgeKind::RegFlow);
        assert_eq!(e.distance(), 0);
        assert_eq!(e.stagger(), 0);
        assert!(!e.is_loop_carried());
    }

    #[test]
    fn staggered_bonds_carry_their_offset() {
        let e = Edge::fixed_staggered(OpId::new(0), OpId::new(1), 2);
        assert!(e.is_fixed());
        assert_eq!(e.stagger(), 2);
    }

    #[test]
    fn only_reg_edges_carry_values() {
        assert!(EdgeKind::RegFlow.carries_value());
        assert!(!EdgeKind::Mem.carries_value());
        assert!(!EdgeKind::Order.carries_value());
    }

    #[test]
    fn display_is_compact() {
        let e = Edge::new(OpId::new(0), OpId::new(1), EdgeKind::RegFlow, 3);
        assert_eq!(e.to_string(), "op0 -reg[3]-> op1");
        let f = Edge::fixed(OpId::new(0), OpId::new(1));
        assert_eq!(f.to_string(), "op0 -reg!-> op1");
    }
}
