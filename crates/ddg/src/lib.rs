//! Loop data-dependence graph (DDG) substrate for software pipelining.
//!
//! This crate provides the graph representation used throughout `regpipe`:
//! a loop body is a set of operations ([`Node`]) connected by dependence
//! edges ([`Edge`]) annotated with a *dependence distance* δ (the number of
//! iterations the dependence spans), exactly as defined in Section 2.1 of
//! Llosa, Valero & Ayguadé, *"Heuristics for Register-Constrained Software
//! Pipelining"* (MICRO 1996).
//!
//! The representation is deliberately small and self-contained:
//!
//! * [`Ddg`] — the graph itself, with loop-invariant values as first-class
//!   citizens ([`Invariant`]) and per-value *non-spillable* marking (used by
//!   the spilling machinery to guarantee convergence, paper Section 4.3).
//! * [`DdgBuilder`] — ergonomic construction of loop bodies.
//! * [`algo`] — Tarjan SCCs (recurrence detection), topological orders,
//!   elementary-circuit enumeration (Johnson) and reachability.
//! * [`to_dot`] — Graphviz export for debugging and documentation.
//!
//! # Example
//!
//! The running example of the paper (Figure 2): `x(i) = y(i)*a + y(i-3)`.
//!
//! ```
//! use regpipe_ddg::{DdgBuilder, OpKind};
//!
//! let mut b = DdgBuilder::new("fig2");
//! let ld = b.add_op(OpKind::Load, "Ld");
//! let mul = b.add_op(OpKind::Mul, "*");
//! let add = b.add_op(OpKind::Add, "+");
//! let st = b.add_op(OpKind::Store, "St");
//! b.reg(ld, mul);          // y(i) feeds the multiply
//! b.reg_dist(ld, add, 3);  // y(i-3): loop-carried, distance 3
//! b.reg(mul, add);
//! b.reg(add, st);
//! b.invariant("a", &[mul]); // the loop-invariant scalar a
//! let ddg = b.build()?;
//!
//! assert_eq!(ddg.num_ops(), 4);
//! assert_eq!(ddg.num_invariants(), 1);
//! assert!(regpipe_ddg::algo::recurrences(&ddg).is_empty()); // no cycles
//! # Ok::<(), regpipe_ddg::DdgError>(())
//! ```

// Every public item of this crate is documented; CI turns gaps into errors.
#![warn(missing_docs)]

pub mod algo;
mod builder;
mod dot;
mod edge;
mod graph;
mod hash;
mod invariant;
mod node;
mod op;
pub mod textfmt;
mod validate;

pub use builder::DdgBuilder;
pub use dot::to_dot;
pub use edge::{Edge, EdgeId, EdgeKind};
pub use graph::Ddg;
pub use hash::{content_hash, content_hash_hex, fnv1a};
pub use invariant::{Invariant, InvariantId};
pub use node::Node;
pub use op::{OpId, OpKind};
pub use validate::DdgError;
