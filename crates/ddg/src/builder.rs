//! Ergonomic construction of dependence graphs.

use crate::edge::{Edge, EdgeKind};
use crate::graph::Ddg;
use crate::invariant::InvariantId;
use crate::op::{OpId, OpKind};
use crate::validate::DdgError;

/// A non-consuming builder for [`Ddg`]s.
///
/// The builder offers shorthands for the common edge kinds and validates the
/// finished graph in [`DdgBuilder::build`].
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind};
///
/// let mut b = DdgBuilder::new("saxpy");
/// let lx = b.add_op(OpKind::Load, "ld x");
/// let ly = b.add_op(OpKind::Load, "ld y");
/// let mul = b.add_op(OpKind::Mul, "a*x");
/// let add = b.add_op(OpKind::Add, "+y");
/// let st = b.add_op(OpKind::Store, "st y");
/// b.invariant("a", &[mul]);
/// b.reg(lx, mul);
/// b.reg(mul, add);
/// b.reg(ly, add);
/// b.reg(add, st);
/// let ddg = b.build()?;
/// assert_eq!(ddg.num_ops(), 5);
/// # Ok::<(), regpipe_ddg::DdgError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DdgBuilder {
    graph: Ddg,
}

impl DdgBuilder {
    /// Starts a new loop body with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DdgBuilder { graph: Ddg::new(name) }
    }

    /// Adds an operation and returns its id.
    pub fn add_op(&mut self, kind: OpKind, name: impl Into<String>) -> OpId {
        self.graph.add_op(kind, name)
    }

    /// Adds a register flow dependence with distance 0.
    pub fn reg(&mut self, from: OpId, to: OpId) -> &mut Self {
        self.graph.add_edge(Edge::new(from, to, EdgeKind::RegFlow, 0));
        self
    }

    /// Adds a register flow dependence with the given distance.
    pub fn reg_dist(&mut self, from: OpId, to: OpId, distance: u32) -> &mut Self {
        self.graph.add_edge(Edge::new(from, to, EdgeKind::RegFlow, distance));
        self
    }

    /// Adds a memory dependence with the given distance.
    pub fn mem(&mut self, from: OpId, to: OpId, distance: u32) -> &mut Self {
        self.graph.add_edge(Edge::new(from, to, EdgeKind::Mem, distance));
        self
    }

    /// Adds an ordering-only dependence with the given distance.
    pub fn order(&mut self, from: OpId, to: OpId, distance: u32) -> &mut Self {
        self.graph.add_edge(Edge::new(from, to, EdgeKind::Order, distance));
        self
    }

    /// Adds a fixed (bonded) register edge; see [`Edge::fixed`].
    pub fn bond(&mut self, from: OpId, to: OpId) -> &mut Self {
        self.graph.add_edge(Edge::fixed(from, to));
        self
    }

    /// Adds a staggered bond; see [`Edge::fixed_staggered`].
    pub fn bond_staggered(&mut self, from: OpId, to: OpId, stagger: u32) -> &mut Self {
        self.graph.add_edge(Edge::fixed_staggered(from, to, stagger));
        self
    }

    /// Declares a loop-invariant value consumed by `uses`.
    pub fn invariant(&mut self, name: impl Into<String>, uses: &[OpId]) -> InvariantId {
        self.graph.add_invariant(name, uses)
    }

    /// Validates and returns the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`DdgError`] if the graph violates a structural rule
    /// (empty body, register edge from a store, malformed bonds, or a
    /// zero-distance dependence cycle).
    pub fn build(self) -> Result<Ddg, DdgError> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Returns the graph without validating (for tests that need to observe
    /// invalid graphs).
    pub fn build_unchecked(self) -> Ddg {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_graph() {
        let mut b = DdgBuilder::new("t");
        let a = b.add_op(OpKind::Load, "a");
        let c = b.add_op(OpKind::Store, "c");
        b.reg(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_rejects_invalid_graph() {
        let b = DdgBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), DdgError::Empty);
    }

    #[test]
    fn edge_shorthands_set_kinds() {
        let mut b = DdgBuilder::new("kinds");
        let a = b.add_op(OpKind::Add, "a");
        let s = b.add_op(OpKind::Store, "s");
        let l = b.add_op(OpKind::Load, "l");
        b.reg(a, s);
        b.mem(s, l, 2);
        b.order(l, a, 1);
        let g = b.build().unwrap();
        let kinds: Vec<_> = g.edges().map(|e| (e.kind(), e.distance())).collect();
        assert_eq!(
            kinds,
            vec![(EdgeKind::RegFlow, 0), (EdgeKind::Mem, 2), (EdgeKind::Order, 1)]
        );
    }

    #[test]
    fn bond_creates_fixed_edge() {
        let mut b = DdgBuilder::new("bond");
        let a = b.add_op(OpKind::Load, "a");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(a, s);
        let g = b.build().unwrap();
        assert!(g.edges().next().unwrap().is_fixed());
    }
}
