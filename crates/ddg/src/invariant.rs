//! Loop-invariant values.

use std::fmt;

use crate::op::OpId;

/// Index of a loop invariant inside a [`crate::Ddg`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvariantId(u32);

impl InvariantId {
    /// Creates an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        InvariantId(u32::try_from(index).expect("invariant index overflows u32"))
    }

    /// The dense index of this invariant.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

impl fmt::Display for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

/// A loop-invariant value: defined before the loop, repeatedly used inside
/// it, never redefined (paper Section 2.3).
///
/// An unspilled invariant occupies exactly one register for the whole loop
/// execution, regardless of the schedule — this is one of the reasons the
/// increase-II strategy fails to converge on some loops (Section 3.1).
/// Spilling an invariant stores it to memory before the loop and reloads it
/// at each use (Section 4.2); afterwards [`Invariant::is_spilled`] is true
/// and the invariant occupies no register.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Invariant {
    name: String,
    uses: Vec<OpId>,
    spillable: bool,
    spilled: bool,
}

impl Invariant {
    /// Creates a live (unspilled) invariant used by `uses`.
    pub fn new(name: impl Into<String>, uses: Vec<OpId>) -> Self {
        Invariant { name: name.into(), uses, spillable: true, spilled: false }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operations that consume this invariant.
    pub fn uses(&self) -> &[OpId] {
        &self.uses
    }

    /// Whether the spill heuristics may select this invariant.
    pub fn is_spillable(&self) -> bool {
        self.spillable && !self.spilled && !self.uses.is_empty()
    }

    /// Whether this invariant has been spilled to memory (and therefore no
    /// longer occupies a register).
    pub fn is_spilled(&self) -> bool {
        self.spilled
    }

    /// Forbids spilling this invariant.
    pub fn mark_non_spillable(&mut self) {
        self.spillable = false;
    }

    /// Records that the invariant now lives in memory and rewires its uses
    /// away (the caller has inserted reload operations).
    pub fn mark_spilled(&mut self) {
        self.spilled = true;
        self.uses.clear();
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} uses{})",
            self.name,
            self.uses.len(),
            if self.spilled { ", spilled" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_invariant_is_spillable() {
        let inv = Invariant::new("a", vec![OpId::new(0)]);
        assert!(inv.is_spillable());
        assert!(!inv.is_spilled());
        assert_eq!(inv.uses(), &[OpId::new(0)]);
    }

    #[test]
    fn invariant_without_uses_is_not_spillable() {
        let inv = Invariant::new("a", vec![]);
        assert!(!inv.is_spillable(), "spilling a dead invariant frees nothing");
    }

    #[test]
    fn spilling_clears_uses_and_disables_further_spills() {
        let mut inv = Invariant::new("a", vec![OpId::new(0), OpId::new(1)]);
        inv.mark_spilled();
        assert!(inv.is_spilled());
        assert!(inv.uses().is_empty());
        assert!(!inv.is_spillable());
    }

    #[test]
    fn non_spillable_marking_sticks() {
        let mut inv = Invariant::new("a", vec![OpId::new(0)]);
        inv.mark_non_spillable();
        assert!(!inv.is_spillable());
        assert!(!inv.is_spilled());
    }
}
