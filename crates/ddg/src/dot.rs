//! Graphviz (DOT) export.

use std::fmt::Write as _;

use crate::edge::EdgeKind;
use crate::graph::Ddg;

/// Renders the graph in Graphviz DOT syntax.
///
/// Register edges are solid, memory edges dashed, ordering edges dotted;
/// loop-carried edges are labelled with their distance; fixed (bonded) edges
/// are drawn bold. Non-spillable values get a grey fill, invariants appear
/// as boxes.
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind, to_dot};
/// let mut b = DdgBuilder::new("tiny");
/// let x = b.add_op(OpKind::Load, "x");
/// let s = b.add_op(OpKind::Store, "s");
/// b.reg(x, s);
/// let dot = to_dot(&b.build()?);
/// assert!(dot.starts_with("digraph"));
/// # Ok::<(), regpipe_ddg::DdgError>(())
/// ```
pub fn to_dot(g: &Ddg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(g.name()));
    let _ = writeln!(s, "  node [shape=ellipse, fontname=\"monospace\"];");
    for (id, n) in g.ops() {
        let fill = if g.is_value_marked_non_spillable(id) {
            ", style=filled, fillcolor=lightgrey"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  n{} [label=\"{}\\n{}\"{}];",
            id.index(),
            escape(n.name()),
            n.kind(),
            fill
        );
    }
    for (iid, inv) in g.invariants() {
        let _ = writeln!(
            s,
            "  inv{} [label=\"{}\", shape=box{}];",
            iid.index(),
            escape(inv.name()),
            if inv.is_spilled() { ", style=dashed" } else { "" }
        );
        for u in inv.uses() {
            let _ = writeln!(s, "  inv{} -> n{} [color=gray];", iid.index(), u.index());
        }
    }
    for e in g.edges() {
        let style = match e.kind() {
            EdgeKind::RegFlow => {
                if e.is_fixed() {
                    "style=bold"
                } else {
                    "style=solid"
                }
            }
            EdgeKind::Mem => "style=dashed",
            EdgeKind::Order => "style=dotted",
        };
        let label = if e.distance() > 0 {
            format!(", label=\"{}\"", e.distance())
        } else {
            String::new()
        };
        let _ =
            writeln!(s, "  n{} -> n{} [{}{}];", e.from().index(), e.to().index(), style, label);
    }
    let _ = writeln!(s, "}}");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn dot_contains_nodes_edges_invariants() {
        let mut b = DdgBuilder::new("loop \"x\"");
        let ld = b.add_op(OpKind::Load, "ld");
        let st = b.add_op(OpKind::Store, "st");
        b.reg_dist(ld, st, 2);
        b.invariant("a", &[st]);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"loop \\\"x\\\"\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("label=\"2\""));
        assert!(dot.contains("inv0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn fixed_edges_render_bold() {
        let mut b = DdgBuilder::new("b");
        let a = b.add_op(OpKind::Load, "a");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(a, s);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("style=bold"));
    }
}
