//! Reachability queries.

use crate::graph::Ddg;
use crate::op::OpId;

/// Word-packed transitive closure over an arbitrary adjacency-list graph
/// (node = index into the list).
///
/// Built once in O((V+E)·V/64) by accumulating successor sets in reverse
/// topological order of the SCC condensation (one pass — no fixpoint
/// iteration), queried in O(1). Rows are exposed as `&[u64]` so callers can
/// union several sources with plain bitwise ORs; the schedulers use this to
/// find the operations lying *between* an already-ordered set and a
/// recurrence (the "path nodes" of the HRMS ordering phase) without a BFS
/// per query.
#[derive(Clone, Debug)]
pub struct BitClosure {
    n: usize,
    words: usize,
    /// `bits[v * words ..][..words]`: set of nodes reachable from v
    /// (including v itself).
    bits: Vec<u64>,
}

impl BitClosure {
    /// Builds the closure of the graph whose successors of `v` are
    /// `adj[v]`. Self-loops and duplicate edges are tolerated.
    pub fn new(adj: &[Vec<usize>]) -> Self {
        let n = adj.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for v in 0..n {
            bits[v * words + v / 64] |= 1 << (v % 64);
        }
        // Tarjan SCCs emit components in reverse topological order of the
        // condensation, so by the time a component is closed every
        // successor outside it already has its final row: one OR pass per
        // edge suffices. Edges inside the component are handled by giving
        // all its members one shared row.
        for comp in sccs_of(adj) {
            // Union the members' direct-successor rows into the first
            // member's row, then copy it to the rest.
            let root = comp[0];
            for &v in &comp {
                for &s in &adj[v] {
                    if s == root {
                        continue;
                    }
                    let (dst, src) = disjoint_rows(&mut bits, words, root, s);
                    for w in 0..words {
                        dst[w] |= src[w];
                    }
                }
                if v != root {
                    bits[root * words + v / 64] |= 1 << (v % 64);
                }
            }
            for &v in comp.iter().skip(1) {
                let (dst, src) = disjoint_rows(&mut bits, words, v, root);
                dst.copy_from_slice(src);
            }
        }
        BitClosure { n, words, bits }
    }

    /// Builds the closure of the transposed graph (i.e. *backward*
    /// reachability of the original).
    pub fn transposed(adj: &[Vec<usize>]) -> Self {
        let mut rev = vec![Vec::new(); adj.len()];
        for (v, succs) in adj.iter().enumerate() {
            for &s in succs {
                rev[s].push(v);
            }
        }
        BitClosure::new(&rev)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the closure covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of `u64` words per row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Whether `to` is reachable from `from` (every node reaches itself).
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        assert!(from < self.n && to < self.n, "node index out of bounds");
        self.bits[from * self.words + to / 64] >> (to % 64) & 1 == 1
    }

    /// The reachable set of `from`, as a packed bitset row.
    pub fn row(&self, from: usize) -> &[u64] {
        assert!(from < self.n, "node index out of bounds");
        &self.bits[from * self.words..(from + 1) * self.words]
    }
}

/// Two non-overlapping rows of the packed matrix, mutably and immutably.
fn disjoint_rows(
    bits: &mut [u64],
    words: usize,
    dst: usize,
    src: usize,
) -> (&mut [u64], &[u64]) {
    debug_assert_ne!(dst, src);
    let hi = dst.max(src);
    let (a, b) = bits.split_at_mut(hi * words);
    if dst < src {
        (&mut a[dst * words..(dst + 1) * words], &b[..words])
    } else {
        (&mut b[..words], &a[src * words..(src + 1) * words])
    }
}

/// Tarjan SCCs of an adjacency-list graph, in reverse topological order of
/// the condensation (iterative, shared by [`BitClosure`] and the scheduler's
/// group-level super graph).
pub fn sccs_of(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        work.push((root, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on[root] = true;
        while let Some(&mut (v, ref mut cur)) = work.last_mut() {
            if *cur < adj[v].len() {
                let w = adj[v][*cur];
                *cur += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on[w] = true;
                    work.push((w, 0));
                } else if on[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan underflow");
                        on[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Precomputed all-pairs reachability (transitive closure) over a graph.
///
/// A thin [`OpId`]-typed facade over [`BitClosure`]: built once, queried in
/// O(1), following all edge kinds and distances — reachability is about
/// graph topology, not timing.
#[derive(Clone, Debug)]
pub struct Reachability {
    closure: BitClosure,
}

impl Reachability {
    /// Builds the transitive closure of `g`.
    pub fn new(g: &Ddg) -> Self {
        let adj: Vec<Vec<usize>> = (0..g.num_ops())
            .map(|v| g.successors(OpId::new(v)).map(|s| s.index()).collect())
            .collect();
        Reachability { closure: BitClosure::new(&adj) }
    }

    /// Whether `to` is reachable from `from` (every node reaches itself).
    pub fn reaches(&self, from: OpId, to: OpId) -> bool {
        self.closure.reaches(from.index(), to.index())
    }

    /// All nodes reachable from `from` (including itself).
    pub fn reachable_from(&self, from: OpId) -> Vec<OpId> {
        (0..self.closure.len())
            .filter(|&t| self.closure.reaches(from.index(), t))
            .map(OpId::new)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn chain_reachability() {
        let mut b = DdgBuilder::new("chain");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        let z = b.add_op(OpKind::Add, "z");
        b.reg(x, y);
        b.reg(y, z);
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(r.reaches(x, z));
        assert!(!r.reaches(z, x));
        assert!(r.reaches(y, y));
        assert_eq!(r.reachable_from(x).len(), 3);
    }

    #[test]
    fn cycle_reaches_everything_in_it() {
        let mut b = DdgBuilder::new("cyc");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        b.reg_dist(y, x, 1);
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(r.reaches(x, y));
        assert!(r.reaches(y, x));
    }

    #[test]
    fn disconnected_components_do_not_reach() {
        let mut b = DdgBuilder::new("disc");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(!r.reaches(x, y));
        assert!(!r.reaches(y, x));
    }

    /// Reference BFS reachability, for cross-checking the bitset closure.
    fn bfs_reach(adj: &[Vec<usize>], from: usize) -> Vec<bool> {
        let mut seen = vec![false; adj.len()];
        let mut queue = vec![from];
        seen[from] = true;
        while let Some(v) = queue.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    queue.push(w);
                }
            }
        }
        seen
    }

    #[test]
    fn bit_closure_matches_bfs_on_random_adjacency() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..60 {
            let n = rng.random_range(1..90usize);
            let mut adj = vec![Vec::new(); n];
            for _ in 0..rng.random_range(0..3 * n) {
                let f = rng.random_range(0..n);
                let t = rng.random_range(0..n);
                adj[f].push(t);
            }
            let closure = BitClosure::new(&adj);
            let back = BitClosure::transposed(&adj);
            for v in 0..n {
                let seen = bfs_reach(&adj, v);
                for (t, &reachable) in seen.iter().enumerate() {
                    assert_eq!(
                        closure.reaches(v, t),
                        reachable,
                        "case {case}: closure({v} -> {t})"
                    );
                    assert_eq!(
                        back.reaches(t, v),
                        reachable,
                        "case {case}: transpose({t} <- {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_closure_rows_are_unionable() {
        // a -> b, c -> d: the union of rows a and c covers all four nodes.
        let adj = vec![vec![1], vec![], vec![3], vec![]];
        let closure = BitClosure::new(&adj);
        assert_eq!(closure.words(), 1);
        let union = closure.row(0)[0] | closure.row(2)[0];
        assert_eq!(union, 0b1111);
        assert!(!closure.is_empty());
        assert_eq!(closure.len(), 4);
    }

    #[test]
    fn sccs_of_emits_reverse_topological_components() {
        // 0 <-> 1 -> 2, 2 -> 3 <-> 4: the sink component {3,4} comes first.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![4], vec![3]];
        let comps = sccs_of(&adj);
        assert_eq!(comps.len(), 3);
        let mut sets: Vec<Vec<usize>> = comps
            .iter()
            .map(|c| {
                let mut s = c.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(sets.remove(0), vec![3, 4], "sink SCC closed first");
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![2]));
    }

    #[test]
    fn wide_graph_over_64_nodes() {
        // 70 sources all feeding one sink exercises multi-word bitsets.
        let mut b = DdgBuilder::new("wide");
        let sink = b.add_op(OpKind::Store, "sink");
        let mut srcs = Vec::new();
        for i in 0..70 {
            let s = b.add_op(OpKind::Load, format!("s{i}"));
            b.reg(s, sink);
            srcs.push(s);
        }
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        for &s in &srcs {
            assert!(r.reaches(s, sink));
            assert!(!r.reaches(sink, s));
        }
    }
}
