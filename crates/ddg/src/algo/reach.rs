//! Reachability queries.

use crate::graph::Ddg;
use crate::op::OpId;

/// Precomputed all-pairs reachability (transitive closure) over a graph.
///
/// Built once (O(V·E / 64) via bitset DFS), queried in O(1). The schedulers
/// use it to find the operations lying *between* an already-ordered set and
/// a recurrence (the "path nodes" of the ordering phase).
#[derive(Clone, Debug)]
pub struct Reachability {
    n: usize,
    words: usize,
    /// `bits[v * words ..][..]`: set of nodes reachable from v (including v).
    bits: Vec<u64>,
}

impl Reachability {
    /// Builds the transitive closure of `g` (following all edge kinds and
    /// distances — reachability is about graph topology, not timing).
    pub fn new(g: &Ddg) -> Self {
        let n = g.num_ops();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];

        // Process in reverse condensation order so most successors are done
        // first; fall back to fixpoint iteration for cyclic graphs.
        let mut changed = true;
        for v in 0..n {
            bits[v * words + v / 64] |= 1 << (v % 64);
        }
        while changed {
            changed = false;
            for v in 0..n {
                // OR in all successors' sets.
                let succ: Vec<usize> = g.successors(OpId::new(v)).map(|s| s.index()).collect();
                for s in succ {
                    if s == v {
                        continue;
                    }
                    let (lo, hi) = if v < s { (v, s) } else { (s, v) };
                    let (a, b) = bits.split_at_mut(hi * words);
                    let (dst, src) = if v < s {
                        (&mut a[v * words..v * words + words], &b[..words])
                    } else {
                        (&mut b[..words], &a[s * words..s * words + words])
                    };
                    let _ = lo;
                    for w in 0..words {
                        let nv = dst[w] | src[w];
                        if nv != dst[w] {
                            dst[w] = nv;
                            changed = true;
                        }
                    }
                }
            }
        }
        Reachability { n, words, bits }
    }

    /// Whether `to` is reachable from `from` (every node reaches itself).
    pub fn reaches(&self, from: OpId, to: OpId) -> bool {
        let (f, t) = (from.index(), to.index());
        assert!(f < self.n && t < self.n, "op id out of bounds");
        self.bits[f * self.words + t / 64] >> (t % 64) & 1 == 1
    }

    /// All nodes reachable from `from` (including itself).
    pub fn reachable_from(&self, from: OpId) -> Vec<OpId> {
        (0..self.n).filter(|&t| self.reaches(from, OpId::new(t))).map(OpId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn chain_reachability() {
        let mut b = DdgBuilder::new("chain");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        let z = b.add_op(OpKind::Add, "z");
        b.reg(x, y);
        b.reg(y, z);
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(r.reaches(x, z));
        assert!(!r.reaches(z, x));
        assert!(r.reaches(y, y));
        assert_eq!(r.reachable_from(x).len(), 3);
    }

    #[test]
    fn cycle_reaches_everything_in_it() {
        let mut b = DdgBuilder::new("cyc");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        b.reg_dist(y, x, 1);
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(r.reaches(x, y));
        assert!(r.reaches(y, x));
    }

    #[test]
    fn disconnected_components_do_not_reach() {
        let mut b = DdgBuilder::new("disc");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        assert!(!r.reaches(x, y));
        assert!(!r.reaches(y, x));
    }

    #[test]
    fn wide_graph_over_64_nodes() {
        // 70 sources all feeding one sink exercises multi-word bitsets.
        let mut b = DdgBuilder::new("wide");
        let sink = b.add_op(OpKind::Store, "sink");
        let mut srcs = Vec::new();
        for i in 0..70 {
            let s = b.add_op(OpKind::Load, format!("s{i}"));
            b.reg(s, sink);
            srcs.push(s);
        }
        let g = b.build().unwrap();
        let r = Reachability::new(&g);
        for &s in &srcs {
            assert!(r.reaches(s, sink));
            assert!(!r.reaches(sink, s));
        }
    }
}
