//! Elementary circuit enumeration (Johnson's algorithm).
//!
//! Used for exact per-recurrence diagnostics: each elementary circuit `C`
//! bounds the initiation interval from below by `⌈Lat(C) / Dist(C)⌉`
//! (paper Section 2.2). The schedulers themselves use the cheaper
//! binary-search formulation in `regpipe-sched`; this module exists for
//! reporting and for cross-checking `RecMII` in tests.

use crate::graph::Ddg;
use crate::op::OpId;

/// An elementary circuit of the dependence graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Circuit {
    ops: Vec<OpId>,
    total_distance: u32,
}

impl Circuit {
    /// The operations of the circuit, in traversal order. The edge closing
    /// the circuit runs from the last operation back to the first.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// The sum of dependence distances along the circuit (always positive
    /// for a valid graph).
    pub fn total_distance(&self) -> u32 {
        self.total_distance
    }
}

/// Enumerates elementary circuits with Johnson's algorithm, giving up after
/// `cap` circuits (pathological graphs can have exponentially many).
///
/// Returns `None` if the cap was hit, `Some(circuits)` otherwise.
pub fn elementary_circuits(g: &Ddg, cap: usize) -> Option<Vec<Circuit>> {
    let n = g.num_ops();
    let mut out: Vec<Circuit> = Vec::new();

    // Minimal distance between each ordered pair that is directly connected,
    // so parallel edges don't multiply circuits: we keep, per (from, to),
    // the minimum distance (it yields the tightest II bound).
    let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (f, t) = (e.from().index(), e.to().index());
        if let Some(slot) = adj[f].iter_mut().find(|(w, _)| *w == t) {
            slot.1 = slot.1.min(e.distance());
        } else {
            adj[f].push((t, e.distance()));
        }
    }
    for l in &mut adj {
        l.sort_unstable();
    }

    let mut blocked = vec![false; n];
    let mut block_map: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stack: Vec<(usize, u32)> = Vec::new();

    fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [Vec<usize>]) {
        blocked[v] = false;
        let pending = std::mem::take(&mut block_map[v]);
        for w in pending {
            if blocked[w] {
                unblock(w, blocked, block_map);
            }
        }
    }

    // Recursive circuit search rooted at `s`, restricted to nodes >= s.
    #[allow(clippy::too_many_arguments)]
    fn circuit(
        v: usize,
        s: usize,
        adj: &[Vec<(usize, u32)>],
        blocked: &mut [bool],
        block_map: &mut [Vec<usize>],
        stack: &mut Vec<(usize, u32)>,
        out: &mut Vec<Circuit>,
        cap: usize,
    ) -> bool {
        let mut found = false;
        blocked[v] = true;
        for &(w, dist) in &adj[v] {
            if w < s || out.len() >= cap {
                continue;
            }
            if w == s {
                let mut ops: Vec<OpId> = stack.iter().map(|&(x, _)| OpId::new(x)).collect();
                ops.push(OpId::new(v));
                let total: u32 = stack.iter().map(|&(_, d)| d).sum::<u32>() + dist;
                out.push(Circuit { ops, total_distance: total });
                found = true;
            } else if !blocked[w] {
                stack.push((v, dist));
                if circuit(w, s, adj, blocked, block_map, stack, out, cap) {
                    found = true;
                }
                stack.pop();
            }
        }
        if found {
            unblock(v, blocked, block_map);
        } else {
            for &(w, _) in &adj[v] {
                if w >= s && !block_map[w].contains(&v) {
                    block_map[w].push(v);
                }
            }
        }
        found
    }

    for s in 0..n {
        if out.len() >= cap {
            return None;
        }
        for v in s..n {
            blocked[v] = false;
            block_map[v].clear();
        }
        circuit(s, s, &adj, &mut blocked, &mut block_map, &mut stack, &mut out, cap);
        debug_assert!(stack.is_empty());
    }
    if out.len() >= cap {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn dag_has_no_circuits() {
        let mut b = DdgBuilder::new("dag");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        let g = b.build().unwrap();
        assert_eq!(elementary_circuits(&g, 100).unwrap(), vec![]);
    }

    #[test]
    fn simple_recurrence_yields_one_circuit() {
        let mut b = DdgBuilder::new("rec");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        b.reg_dist(y, x, 2);
        let g = b.build().unwrap();
        let cs = elementary_circuits(&g, 100).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ops().len(), 2);
        assert_eq!(cs[0].total_distance(), 2);
    }

    #[test]
    fn self_loop_is_a_circuit() {
        let mut b = DdgBuilder::new("self");
        let x = b.add_op(OpKind::Add, "x");
        b.reg_dist(x, x, 3);
        let g = b.build().unwrap();
        let cs = elementary_circuits(&g, 100).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ops(), &[x]);
        assert_eq!(cs[0].total_distance(), 3);
    }

    #[test]
    fn two_nested_circuits_found() {
        // x -> y -> x (dist 1) and x -> y -> z -> x (dist 2).
        let mut b = DdgBuilder::new("nested");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        let z = b.add_op(OpKind::Add, "z");
        b.reg(x, y);
        b.reg_dist(y, x, 1);
        b.reg(y, z);
        b.reg_dist(z, x, 2);
        let g = b.build().unwrap();
        let cs = elementary_circuits(&g, 100).unwrap();
        assert_eq!(cs.len(), 2);
        let mut dists: Vec<u32> = cs.iter().map(Circuit::total_distance).collect();
        dists.sort_unstable();
        assert_eq!(dists, vec![1, 2]);
    }

    #[test]
    fn cap_is_respected() {
        // Complete digraph on 6 nodes has 409 elementary circuits.
        let mut b = DdgBuilder::new("k6");
        let vs: Vec<_> = (0..6).map(|i| b.add_op(OpKind::Add, format!("v{i}"))).collect();
        for &u in &vs {
            for &v in &vs {
                if u != v {
                    b.reg_dist(u, v, 1);
                }
            }
        }
        let g = b.build().unwrap();
        assert!(elementary_circuits(&g, 10).is_none());
        assert!(elementary_circuits(&g, 100_000).is_some());
    }

    #[test]
    fn parallel_edges_keep_min_distance() {
        let mut b = DdgBuilder::new("par");
        let x = b.add_op(OpKind::Add, "x");
        let y = b.add_op(OpKind::Add, "y");
        b.reg(x, y);
        b.reg_dist(y, x, 5);
        b.reg_dist(y, x, 2); // tighter
        let g = b.build().unwrap();
        let cs = elementary_circuits(&g, 100).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].total_distance(), 2);
    }
}
