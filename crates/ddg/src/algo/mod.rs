//! Graph algorithms over dependence graphs.
//!
//! Everything a modulo scheduler needs from graph theory: strongly connected
//! components (recurrence detection), topological orders, elementary-circuit
//! enumeration (for exact per-recurrence `RecMII` diagnostics) and
//! reachability.

mod circuits;
mod reach;
mod scc;
mod topo;

pub use circuits::{elementary_circuits, Circuit};
pub use reach::{sccs_of, BitClosure, Reachability};
pub use scc::{recurrences, sccs, Scc};
pub use topo::{condensation_order, topo_order_ignoring_back_edges};
