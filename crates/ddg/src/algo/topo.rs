//! Topological orders.

use std::collections::VecDeque;

use crate::algo::scc::sccs;
use crate::graph::Ddg;
use crate::op::OpId;

/// A topological order of the graph's *condensation*: operations appear so
/// that every edge that is not internal to a recurrence points forward.
///
/// Operations inside the same recurrence appear contiguously. This is the
/// skeleton order the schedulers start from.
pub fn condensation_order(g: &Ddg) -> Vec<OpId> {
    // Tarjan emits SCCs in reverse topological order; reversing gives a
    // forward topological order of components.
    let comps = sccs(g);
    let mut out = Vec::with_capacity(g.num_ops());
    for comp in comps.iter().rev() {
        out.extend_from_slice(comp.ops());
    }
    out
}

/// Kahn topological order that ignores loop-carried (distance > 0) edges.
///
/// Zero-distance edges form a DAG in any valid graph (guaranteed by
/// [`crate::Ddg::validate`]), so this always yields a complete order. Ties
/// are broken by operation index for determinism.
pub fn topo_order_ignoring_back_edges(g: &Ddg) -> Vec<OpId> {
    let n = g.num_ops();
    let mut indeg = vec![0usize; n];
    for e in g.edges() {
        if e.distance() == 0 {
            indeg[e.to().index()] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        out.push(OpId::new(v));
        for e in g.out_edges(OpId::new(v)) {
            if e.distance() == 0 {
                let w = e.to().index();
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), n, "zero-distance edges must form a DAG");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn condensation_order_respects_cross_edges() {
        let mut b = DdgBuilder::new("g");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "b");
        let d = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1); // recurrence {a, b}
        b.reg(c, d);
        let g = b.build().unwrap();
        let order = condensation_order(&g);
        let pos = |x: OpId| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(a) < pos(d));
        assert!(pos(c) < pos(d));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn kahn_order_is_complete_and_forward() {
        let mut b = DdgBuilder::new("g");
        let x = b.add_op(OpKind::Load, "x");
        let y = b.add_op(OpKind::Add, "y");
        let z = b.add_op(OpKind::Store, "z");
        b.reg(x, y);
        b.reg(y, z);
        b.order(z, x, 1); // back edge: ignored
        let g = b.build().unwrap();
        let order = topo_order_ignoring_back_edges(&g);
        assert_eq!(order, vec![x, y, z]);
    }

    #[test]
    fn kahn_on_parallel_chains_is_deterministic() {
        let mut b = DdgBuilder::new("p");
        let a0 = b.add_op(OpKind::Add, "a0");
        let a1 = b.add_op(OpKind::Add, "a1");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(a0, s);
        b.reg(a1, s);
        let g = b.build().unwrap();
        assert_eq!(topo_order_ignoring_back_edges(&g), vec![a0, a1, s]);
    }
}
