//! Strongly connected components (Tarjan) and recurrence detection.

use crate::graph::Ddg;
use crate::op::OpId;

/// A strongly connected component: a set of mutually reachable operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scc {
    ops: Vec<OpId>,
    /// Whether the component contains at least one cycle (more than one node,
    /// or a self-loop).
    cyclic: bool,
}

impl Scc {
    /// The operations of the component, in discovery order.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Whether the component contains a dependence cycle — i.e. whether it is
    /// a *recurrence* in modulo-scheduling terms.
    pub fn is_recurrence(&self) -> bool {
        self.cyclic
    }

    /// Number of operations in the component.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the component is empty (never true for components returned by
    /// [`sccs`]).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Computes all strongly connected components with Tarjan's algorithm
/// (iterative, so deep graphs cannot overflow the stack).
///
/// Components are returned in *reverse topological order* (callees first), a
/// property of Tarjan's algorithm the scheduler relies on.
pub fn sccs(g: &Ddg) -> Vec<Scc> {
    let n = g.num_ops();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    // Iterative Tarjan: frame = (node, next-successor-cursor).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        work.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            let succs: Vec<usize> = g.successors(OpId::new(v)).map(|s| s.index()).collect();
            if *cursor < succs.len() {
                let w = succs[*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut ops = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        ops.push(OpId::new(w));
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = ops.len() > 1 || g.successors(ops[0]).any(|s| s == ops[0]);
                    out.push(Scc { ops, cyclic });
                }
            }
        }
    }
    out
}

/// The recurrences of the graph: SCCs that contain a cycle.
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind, algo};
/// let mut b = DdgBuilder::new("rec");
/// let a = b.add_op(OpKind::Add, "a");
/// let c = b.add_op(OpKind::Add, "b");
/// b.reg(a, c);
/// b.reg_dist(c, a, 1);
/// let g = b.build()?;
/// assert_eq!(algo::recurrences(&g).len(), 1);
/// # Ok::<(), regpipe_ddg::DdgError>(())
/// ```
pub fn recurrences(g: &Ddg) -> Vec<Scc> {
    sccs(g).into_iter().filter(Scc::is_recurrence).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpKind;

    fn two_recurrences() -> Ddg {
        // r1: a <-> b  (via distance-1 back edge)
        // r2: c -> d -> e -> c (distance 2 on the back edge)
        // bridge: b -> c
        let mut bld = DdgBuilder::new("two");
        let a = bld.add_op(OpKind::Add, "a");
        let b = bld.add_op(OpKind::Mul, "b");
        let c = bld.add_op(OpKind::Add, "c");
        let d = bld.add_op(OpKind::Add, "d");
        let e = bld.add_op(OpKind::Add, "e");
        bld.reg(a, b);
        bld.reg_dist(b, a, 1);
        bld.reg(b, c);
        bld.reg(c, d);
        bld.reg(d, e);
        bld.reg_dist(e, c, 2);
        bld.build().unwrap()
    }

    #[test]
    fn dag_has_no_recurrences() {
        let mut b = DdgBuilder::new("dag");
        let x = b.add_op(OpKind::Load, "x");
        let y = b.add_op(OpKind::Store, "y");
        b.reg(x, y);
        let g = b.build().unwrap();
        assert_eq!(sccs(&g).len(), 2);
        assert!(recurrences(&g).is_empty());
    }

    #[test]
    fn finds_both_recurrences() {
        let g = two_recurrences();
        let recs = recurrences(&g);
        assert_eq!(recs.len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<_> = recs.iter().map(Scc::len).collect();
            v.sort();
            v
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn scc_order_is_reverse_topological() {
        let g = two_recurrences();
        let comps = sccs(&g);
        // The {c,d,e} component is downstream of {a,b}, so it must come first.
        let pos_ab = comps.iter().position(|s| s.ops().contains(&OpId::new(0))).unwrap();
        let pos_cde = comps.iter().position(|s| s.ops().contains(&OpId::new(2))).unwrap();
        assert!(pos_cde < pos_ab);
    }

    #[test]
    fn self_loop_is_a_recurrence() {
        let mut b = DdgBuilder::new("self");
        let a = b.add_op(OpKind::Add, "a");
        b.reg_dist(a, a, 1);
        let g = b.build().unwrap();
        let recs = recurrences(&g);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].len(), 1);
    }

    #[test]
    fn isolated_node_is_not_a_recurrence() {
        let mut b = DdgBuilder::new("iso");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        assert!(recurrences(&g).is_empty());
        assert_eq!(sccs(&g).len(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut b = DdgBuilder::new("deep");
        let mut prev = b.add_op(OpKind::Add, "n0");
        for i in 1..20_000 {
            let cur = b.add_op(OpKind::Add, format!("n{i}"));
            b.reg(prev, cur);
            prev = cur;
        }
        let g = b.build().unwrap();
        assert_eq!(sccs(&g).len(), 20_000);
    }
}
