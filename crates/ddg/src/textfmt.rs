//! A plain-text interchange format for dependence graphs.
//!
//! This module is the `.ddg` frontend: every loop that enters `regpipe`
//! from disk — single files via `regpipe compile`, whole corpus
//! directories via `regpipe suite --corpus` — goes through [`parse`].
//! The full grammar is specified in `docs/formats.md` (EBNF plus a worked
//! example); this doc comment and that spec are kept in agreement.
//!
//! One declaration per line; `#` starts a comment that runs to the end of
//! the line. The declarations are:
//!
//! ```text
//! loop fig2                  # loop name (optional; default "anonymous")
//! op Ld load                 # operation: name + kind
//! op mul1 mul
//! op add1 add
//! op St store
//! edge Ld -> mul1 reg 0      # dependence: source -> target kind distance
//! edge Ld -> add1 reg 3
//! edge mul1 -> add1 reg 0
//! edge add1 -> St reg 0
//! inv a uses mul1            # loop-invariant value and its consumers
//! nospill Ld                 # forbid spilling the value Ld defines
//! ```
//!
//! Op kinds are `load` (alias `ld`), `store` (alias `st`), `add`, `mul`,
//! `div`, `sqrt`, `copy`. Edge kinds are `reg`, `mem`, `ord`; the trailing
//! integer is the dependence distance in iterations (default 0); `reg!`
//! declares a bonded edge and `reg!+k` a bond staggered by `k` cycles.
//! Op names must be unique within a loop and must not contain whitespace.
//!
//! [`format()`](fn@format) renders a graph in the same syntax, and the two functions
//! round-trip — parse, print, parse again and the graphs agree:
//!
//! ```
//! use regpipe_ddg::textfmt::{format, parse};
//!
//! let text = "loop l\nop a load\nop b add\nop c store\n\
//!             edge a -> b reg 2\nedge b -> c reg 0\ninv k uses b\n";
//! let once = parse(text)?;
//! let again = parse(&format(&once))?;
//! assert_eq!(format(&once), format(&again));
//! assert_eq!(once.num_ops(), again.num_ops());
//! assert_eq!(once.max_distance(), again.max_distance());
//! # Ok::<(), regpipe_ddg::textfmt::ParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::edge::{Edge, EdgeKind};
use crate::graph::Ddg;
use crate::op::{OpId, OpKind};
use crate::validate::DdgError;

/// A parse failure, with the 1-based line number and (when the text came
/// from disk) the offending file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// The file being parsed, if known (set by [`parse_named`]). Corpus
    /// loaders must populate this so a bad file in a thousand-loop
    /// directory is actionable.
    pub file: Option<String>,
    /// Line where the problem was found (0 for whole-input problems such
    /// as validation failures).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Attaches the source file name, making the rendered message
    /// `file:line: message` instead of `line N: message`.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(f, "{}:{}: {}", file, self.line, self.message),
            None => write!(f, "line {}: {}", self.line, self.message),
        }
    }
}

impl Error for ParseError {}

impl From<(usize, String)> for ParseError {
    fn from((line, message): (usize, String)) -> Self {
        ParseError { file: None, line, message }
    }
}

/// Renders `ddg` in the text format; [`parse`] round-trips it.
pub fn format(ddg: &Ddg) -> String {
    let mut out = String::new();
    out.push_str(&format!("loop {}\n", sanitize(ddg.name())));
    for (_, node) in ddg.ops() {
        out.push_str(&format!("op {} {}\n", sanitize(node.name()), kind_name(node.kind())));
    }
    for e in ddg.edges() {
        let kind = match (e.kind(), e.is_fixed(), e.stagger()) {
            (EdgeKind::RegFlow, true, 0) => "reg!".to_string(),
            (EdgeKind::RegFlow, true, s) => format!("reg!+{s}"),
            (EdgeKind::RegFlow, false, _) => "reg".to_string(),
            (EdgeKind::Mem, _, _) => "mem".to_string(),
            (EdgeKind::Order, _, _) => "ord".to_string(),
        };
        out.push_str(&format!(
            "edge {} -> {} {} {}\n",
            sanitize(ddg.op(e.from()).name()),
            sanitize(ddg.op(e.to()).name()),
            kind,
            e.distance()
        ));
    }
    for (_, inv) in ddg.invariants() {
        out.push_str(&format!("inv {} uses", sanitize(inv.name())));
        for u in inv.uses() {
            out.push_str(&format!(" {}", sanitize(ddg.op(*u).name())));
        }
        out.push('\n');
    }
    for id in ddg.op_ids() {
        if ddg.is_value_marked_non_spillable(id) {
            out.push_str(&format!("nospill {}\n", sanitize(ddg.op(id).name())));
        }
    }
    out
}

/// [`parse`], with the source file name attached to any error.
///
/// This is the entry point disk frontends (the CLI, the corpus loader)
/// must use: the rendered error then reads `file:line: message`, which is
/// what makes a bad file in a large corpus directory actionable.
///
/// # Errors
///
/// As [`parse`], with [`ParseError::file`] set to `file`.
pub fn parse_named(text: &str, file: impl Into<String>) -> Result<Ddg, ParseError> {
    parse(text).map_err(|e| e.with_file(file))
}

/// Parses the text format into a validated graph.
///
/// # Errors
///
/// [`ParseError`] on malformed input; the graph is also
/// [validated](Ddg::validate), with violations reported on line 0.
pub fn parse(text: &str) -> Result<Ddg, ParseError> {
    let mut name = String::from("anonymous");
    let mut ops: Vec<(String, OpKind)> = Vec::new();
    let mut by_name: HashMap<String, OpId> = HashMap::new();
    let mut g: Option<Ddg> = None;

    let ensure_graph = |g: &mut Option<Ddg>, name: &str| {
        if g.is_none() {
            *g = Some(Ddg::new(name));
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "loop" => {
                name = words
                    .next()
                    .ok_or_else(|| (line_no, "missing loop name".to_string()))?
                    .to_string();
                if let Some(g) = &mut g {
                    g.set_name(&name);
                } else {
                    g = Some(Ddg::new(&name));
                }
            }
            "op" => {
                ensure_graph(&mut g, &name);
                let op_name =
                    words.next().ok_or_else(|| (line_no, "missing op name".to_string()))?;
                let kind_str =
                    words.next().ok_or_else(|| (line_no, "missing op kind".to_string()))?;
                let kind = parse_kind(kind_str)
                    .ok_or_else(|| (line_no, format!("unknown op kind '{kind_str}'")))?;
                if by_name.contains_key(op_name) {
                    return Err((line_no, format!("duplicate op '{op_name}'")).into());
                }
                let id = g.as_mut().expect("ensured").add_op(kind, op_name);
                by_name.insert(op_name.to_string(), id);
                ops.push((op_name.to_string(), kind));
            }
            "edge" => {
                let g =
                    g.as_mut().ok_or_else(|| (line_no, "edge before any op".to_string()))?;
                let from =
                    words.next().ok_or_else(|| (line_no, "missing edge source".to_string()))?;
                let arrow = words.next();
                if arrow != Some("->") {
                    return Err((line_no, "expected '->'".to_string()).into());
                }
                let to =
                    words.next().ok_or_else(|| (line_no, "missing edge target".to_string()))?;
                let kind_str = words.next().unwrap_or("reg");
                let distance: u32 = match words.next() {
                    Some(d) => {
                        d.parse().map_err(|_| (line_no, format!("bad distance '{d}'")))?
                    }
                    None => 0,
                };
                let &f = by_name
                    .get(from)
                    .ok_or_else(|| (line_no, format!("unknown op '{from}'")))?;
                let &t =
                    by_name.get(to).ok_or_else(|| (line_no, format!("unknown op '{to}'")))?;
                let edge = if let Some(stagger) = kind_str.strip_prefix("reg!+") {
                    let s: u32 = stagger
                        .parse()
                        .map_err(|_| (line_no, format!("bad stagger '{stagger}'")))?;
                    Edge::fixed_staggered(f, t, s)
                } else if kind_str == "reg!" {
                    Edge::fixed(f, t)
                } else {
                    let kind = match kind_str {
                        "reg" => EdgeKind::RegFlow,
                        "mem" => EdgeKind::Mem,
                        "ord" => EdgeKind::Order,
                        other => {
                            return Err((line_no, format!("unknown edge kind '{other}'")).into())
                        }
                    };
                    Edge::new(f, t, kind, distance)
                };
                g.add_edge(edge);
            }
            "inv" => {
                let g = g.as_mut().ok_or_else(|| (line_no, "inv before any op".to_string()))?;
                let inv_name = words
                    .next()
                    .ok_or_else(|| (line_no, "missing invariant name".to_string()))?;
                if words.next() != Some("uses") {
                    return Err((line_no, "expected 'uses'".to_string()).into());
                }
                let mut uses = Vec::new();
                for u in words {
                    let &id =
                        by_name.get(u).ok_or_else(|| (line_no, format!("unknown op '{u}'")))?;
                    uses.push(id);
                }
                g.add_invariant(inv_name, &uses);
            }
            "nospill" => {
                let g =
                    g.as_mut().ok_or_else(|| (line_no, "nospill before any op".to_string()))?;
                let op_name =
                    words.next().ok_or_else(|| (line_no, "missing op name".to_string()))?;
                let &id = by_name
                    .get(op_name)
                    .ok_or_else(|| (line_no, format!("unknown op '{op_name}'")))?;
                g.mark_value_non_spillable(id);
            }
            other => {
                return Err((line_no, format!("unknown keyword '{other}'")).into());
            }
        }
    }
    let g = g.ok_or_else(|| (0usize, "empty input".to_string()))?;
    g.validate().map_err(|e: DdgError| ParseError {
        file: None,
        line: 0,
        message: e.to_string(),
    })?;
    Ok(g)
}

fn parse_kind(s: &str) -> Option<OpKind> {
    Some(match s {
        "load" | "ld" => OpKind::Load,
        "store" | "st" => OpKind::Store,
        "add" => OpKind::Add,
        "mul" => OpKind::Mul,
        "div" => OpKind::Div,
        "sqrt" => OpKind::Sqrt,
        "copy" => OpKind::Copy,
        _ => return None,
    })
}

fn kind_name(k: OpKind) -> &'static str {
    match k {
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Add => "add",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Sqrt => "sqrt",
        OpKind::Copy => "copy",
    }
}

/// Replaces whitespace and `#` in names so they survive a round trip
/// (whitespace would split the token, `#` would start a comment); an
/// empty name becomes `_` so declarations keep their arity.
fn sanitize(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_whitespace() || c == '#' { '_' } else { c }).collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;

    const FIG2: &str = "
# the paper's example
loop fig2
op Ld load
op mul1 mul
op add1 add
op St store
edge Ld -> mul1 reg 0
edge Ld -> add1 reg 3
edge mul1 -> add1 reg
edge add1 -> St reg 0
inv a uses mul1
";

    #[test]
    fn parses_the_example() {
        let g = parse(FIG2).unwrap();
        assert_eq!(g.name(), "fig2");
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_invariants(), 1);
        assert_eq!(g.max_distance(), 3);
    }

    #[test]
    fn round_trips() {
        let g = parse(FIG2).unwrap();
        let text = format(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.num_ops(), g.num_ops());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_invariants(), g.num_invariants());
        let e1: Vec<_> =
            g.edges().map(|e| (e.from(), e.to(), e.kind(), e.distance())).collect();
        let e2: Vec<_> =
            g2.edges().map(|e| (e.from(), e.to(), e.kind(), e.distance())).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn bonds_and_staggers_round_trip() {
        let mut b = DdgBuilder::new("bonds");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        let c = b.add_op(OpKind::Add, "c");
        b.bond(l1, c);
        b.bond_staggered(l2, c, 2);
        b.mem(c, l1, 1); // just to exercise mem edges (add -> load is fine)
        let g = b.build().unwrap();
        let g2 = parse(&format(&g)).unwrap();
        let fixed: Vec<_> = g2.edges().filter(|e| e.is_fixed()).map(|e| e.stagger()).collect();
        assert_eq!(fixed, vec![0, 2]);
    }

    #[test]
    fn nospill_round_trips() {
        let mut b = DdgBuilder::new("ns");
        let l = b.add_op(OpKind::Load, "l");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(l, s);
        let mut g = b.build().unwrap();
        g.mark_value_non_spillable(l);
        let g2 = parse(&format(&g)).unwrap();
        assert!(g2.is_value_marked_non_spillable(OpId::new(0)));
    }

    /// Regression: errors from disk-backed parses used to render only a
    /// line number ("line 3: ..."), leaving the user to guess which of a
    /// corpus directory's files was broken. [`parse_named`] must stamp the
    /// file onto the error and the rendered message must lead with it.
    #[test]
    fn errors_from_named_parses_render_the_file_path() {
        let err =
            parse_named("loop x\nop a add\nedge a -> b reg 0\n", "corpus/bad.ddg").unwrap_err();
        assert_eq!(err.file.as_deref(), Some("corpus/bad.ddg"));
        assert_eq!(err.line, 3);
        assert_eq!(err.to_string(), "corpus/bad.ddg:3: unknown op 'b'");
        // Validation failures (line 0) also carry the file.
        let err = parse_named("", "empty.ddg").unwrap_err();
        assert_eq!(err.to_string(), "empty.ddg:0: empty input");
        // A successful named parse is just a parse.
        assert!(parse_named("loop x\nop a add\n", "ok.ddg").is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("loop x\nop a add\nedge a -> b reg 0\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown op 'b'"));
        assert_eq!(err.file, None);
        assert_eq!(err.to_string(), "line 3: unknown op 'b'");

        let err = parse("loop x\nop a wibble\n").unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse("loop x\nop a add\nop a add\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn validation_failures_are_reported() {
        // A zero-distance cycle parses but fails validation.
        let err = parse("loop x\nop a add\nop b add\nedge a -> b reg 0\nedge b -> a reg 0\n")
            .unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = parse("\n# hi\nloop l # trailing\nop a add # yes\n").unwrap();
        assert_eq!(g.num_ops(), 1);
    }

    /// Regression: a `#` inside an op or loop name used to truncate the
    /// rendered line at the comment marker, breaking the round trip.
    #[test]
    fn names_with_comment_markers_are_sanitized() {
        let mut b = DdgBuilder::new("l#1");
        let a = b.add_op(OpKind::Load, "ld#x");
        let s = b.add_op(OpKind::Store, "st");
        b.reg(a, s);
        let g2 = parse(&format(&b.build().unwrap())).unwrap();
        assert_eq!(g2.name(), "l_1");
        assert_eq!(g2.op(OpId::new(0)).name(), "ld_x");
        assert_eq!(g2.num_edges(), 1);
    }

    #[test]
    fn names_with_spaces_are_sanitized() {
        let mut b = DdgBuilder::new("my loop");
        b.add_op(OpKind::Load, "ld x[i]");
        let g = b.build().unwrap();
        let g2 = parse(&format(&g)).unwrap();
        assert_eq!(g2.name(), "my_loop");
        assert_eq!(g2.op(OpId::new(0)).name(), "ld_x[i]");
    }
}
