//! The dependence graph container.

use std::fmt;

use crate::edge::{Edge, EdgeId, EdgeKind};
use crate::invariant::{Invariant, InvariantId};
use crate::node::Node;
use crate::op::{OpId, OpKind};
use crate::validate::{self, DdgError};

/// A loop data-dependence graph `G = (V, E, δ)` (paper Section 2.1).
///
/// Nodes are operations of a single-basic-block loop body; edges are
/// dependences annotated with an iteration distance δ. Loop-invariant values
/// are tracked separately (they consume one register each but are not
/// produced by any node in the body).
///
/// The graph is an *append-only* node container: spilling adds stores and
/// loads but never removes operations (a fully-spilled load simply becomes
/// dead, as in the paper's Figure 5c). Edges may be removed.
///
/// Construction normally goes through [`crate::DdgBuilder`]; the mutating
/// methods here are what the spill rewriter uses.
#[derive(Clone, Debug)]
pub struct Ddg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `succs[v]` / `preds[v]`: edge indices leaving / entering `v`.
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    invariants: Vec<Invariant>,
    /// Per-node flag: the value defined by this node must not be spilled
    /// (it was created by spilling; re-spilling it would deadlock,
    /// paper Section 4.3).
    non_spillable: Vec<bool>,
}

impl Ddg {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Ddg {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            invariants: Vec::new(),
            non_spillable: Vec::new(),
        }
    }

    /// The loop's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the loop.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.nodes.len()
    }

    /// The node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn op(&self, id: OpId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all operation ids in index order.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> + Clone + use<> {
        (0..self.nodes.len()).map(OpId::new)
    }

    /// Iterates over `(id, node)` pairs.
    pub fn ops(&self) -> impl ExactSizeIterator<Item = (OpId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (OpId::new(i), n))
    }

    /// Appends an operation and returns its id.
    pub fn add_op(&mut self, kind: OpKind, name: impl Into<String>) -> OpId {
        let id = OpId::new(self.nodes.len());
        self.nodes.push(Node::new(kind, name));
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.non_spillable.push(false);
        id
    }

    // ------------------------------------------------------------------
    // Edges
    // ------------------------------------------------------------------

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds (e.g. stale after a removal).
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Edges leaving `v`.
    pub fn out_edges(&self, v: OpId) -> impl Iterator<Item = &Edge> {
        self.succs[v.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Edges entering `v`.
    pub fn in_edges(&self, v: OpId) -> impl Iterator<Item = &Edge> {
        self.preds[v.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Successor operations of `v` (may repeat if parallel edges exist).
    pub fn successors(&self, v: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.out_edges(v).map(|e| e.to())
    }

    /// Predecessor operations of `v` (may repeat if parallel edges exist).
    pub fn predecessors(&self, v: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.in_edges(v).map(|e| e.from())
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, edge: Edge) -> EdgeId {
        assert!(edge.from().index() < self.nodes.len(), "edge source out of bounds");
        assert!(edge.to().index() < self.nodes.len(), "edge target out of bounds");
        let id = EdgeId::new(self.edges.len());
        self.succs[edge.from().index()].push(id.index() as u32);
        self.preds[edge.to().index()].push(id.index() as u32);
        self.edges.push(edge);
        id
    }

    /// Removes every edge for which `pred` returns `true` and rebuilds the
    /// adjacency lists. Any previously obtained [`EdgeId`] is invalidated.
    ///
    /// Returns the number of edges removed.
    pub fn remove_edges_where(&mut self, mut pred: impl FnMut(&Edge) -> bool) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| !pred(e));
        let removed = before - self.edges.len();
        if removed > 0 {
            self.rebuild_adjacency();
        }
        removed
    }

    fn rebuild_adjacency(&mut self) {
        for l in &mut self.succs {
            l.clear();
        }
        for l in &mut self.preds {
            l.clear();
        }
        for (i, e) in self.edges.iter().enumerate() {
            self.succs[e.from().index()].push(i as u32);
            self.preds[e.to().index()].push(i as u32);
        }
    }

    // ------------------------------------------------------------------
    // Loop variants (register values) and spillability
    // ------------------------------------------------------------------

    /// The register-flow consumers of the value defined by `producer`,
    /// with their dependence distances: `(consumer, δ)` pairs.
    pub fn reg_consumers(&self, producer: OpId) -> impl Iterator<Item = (OpId, u32)> + '_ {
        self.out_edges(producer)
            .filter(|e| e.kind() == EdgeKind::RegFlow)
            .map(|e| (e.to(), e.distance()))
    }

    /// Operations that define a *live* loop variant (they define a value and
    /// at least one register consumer exists).
    pub fn live_variants(&self) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids().filter(|&v| {
            self.op(v).kind().defines_value() && self.reg_consumers(v).next().is_some()
        })
    }

    /// Whether the value defined by `producer` may be spilled.
    ///
    /// A value is spillable when it is live, was not created by a previous
    /// spill (paper Section 4.3's deadlock-avoidance rule), and is not the
    /// source of a fixed (bonded) edge.
    pub fn is_value_spillable(&self, producer: OpId) -> bool {
        !self.non_spillable[producer.index()]
            && self.op(producer).kind().defines_value()
            && self.reg_consumers(producer).next().is_some()
            && !self.out_edges(producer).any(|e| e.is_fixed())
    }

    /// Marks the value defined by `producer` as non-spillable.
    pub fn mark_value_non_spillable(&mut self, producer: OpId) {
        self.non_spillable[producer.index()] = true;
    }

    /// Whether the value defined by `producer` carries the non-spillable mark.
    pub fn is_value_marked_non_spillable(&self, producer: OpId) -> bool {
        self.non_spillable[producer.index()]
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Number of declared invariants (spilled or not).
    pub fn num_invariants(&self) -> usize {
        self.invariants.len()
    }

    /// Number of invariants currently occupying a register.
    pub fn num_live_invariants(&self) -> usize {
        self.invariants.iter().filter(|i| !i.is_spilled()).count()
    }

    /// The invariant for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn invariant(&self, id: InvariantId) -> &Invariant {
        &self.invariants[id.index()]
    }

    /// Mutable access to the invariant for `id` (used by the spill rewriter).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn invariant_mut(&mut self, id: InvariantId) -> &mut Invariant {
        &mut self.invariants[id.index()]
    }

    /// Iterates over `(id, invariant)` pairs.
    pub fn invariants(&self) -> impl ExactSizeIterator<Item = (InvariantId, &Invariant)> {
        self.invariants.iter().enumerate().map(|(i, inv)| (InvariantId::new(i), inv))
    }

    /// Declares a loop-invariant value consumed by `uses`.
    ///
    /// # Panics
    ///
    /// Panics if any use is out of bounds.
    pub fn add_invariant(&mut self, name: impl Into<String>, uses: &[OpId]) -> InvariantId {
        for u in uses {
            assert!(u.index() < self.nodes.len(), "invariant use out of bounds");
        }
        let id = InvariantId::new(self.invariants.len());
        self.invariants.push(Invariant::new(name, uses.to_vec()));
        id
    }

    // ------------------------------------------------------------------
    // Derived statistics
    // ------------------------------------------------------------------

    /// Number of memory operations (loads + stores) in the body; this is the
    /// per-iteration dynamic memory traffic of the loop.
    pub fn memory_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind().is_memory()).count()
    }

    /// Count of operations per kind, indexed by [`OpKind::index`].
    pub fn kind_histogram(&self) -> [usize; OpKind::ALL.len()] {
        let mut h = [0usize; OpKind::ALL.len()];
        for n in &self.nodes {
            h[n.kind().index()] += 1;
        }
        h
    }

    /// The largest dependence distance appearing on any edge.
    pub fn max_distance(&self) -> u32 {
        self.edges.iter().map(|e| e.distance()).max().unwrap_or(0)
    }

    /// Validates structural invariants; see [`DdgError`] for the rules.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn validate(&self) -> Result<(), DdgError> {
        validate::validate(self)
    }
}

impl fmt::Display for Ddg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ddg '{}': {} ops, {} edges, {} invariants",
            self.name,
            self.nodes.len(),
            self.edges.len(),
            self.invariants.len()
        )?;
        for (id, n) in self.ops() {
            writeln!(
                f,
                "  {id} = {n}{}",
                if self.non_spillable[id.index()] { " [ns]" } else { "" }
            )?;
        }
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        for (_, inv) in self.invariants() {
            writeln!(f, "  invariant {inv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Ddg {
        // ld -> {mul, add} -> st
        let mut g = Ddg::new("diamond");
        let ld = g.add_op(OpKind::Load, "ld");
        let mul = g.add_op(OpKind::Mul, "mul");
        let add = g.add_op(OpKind::Add, "add");
        let st = g.add_op(OpKind::Store, "st");
        g.add_edge(Edge::new(ld, mul, EdgeKind::RegFlow, 0));
        g.add_edge(Edge::new(ld, add, EdgeKind::RegFlow, 2));
        g.add_edge(Edge::new(mul, st, EdgeKind::RegFlow, 0));
        g.add_edge(Edge::new(add, st, EdgeKind::RegFlow, 0));
        g
    }

    #[test]
    fn adjacency_tracks_edges() {
        let g = diamond();
        let ld = OpId::new(0);
        let st = OpId::new(3);
        assert_eq!(g.successors(ld).count(), 2);
        assert_eq!(g.predecessors(st).count(), 2);
        assert_eq!(g.in_edges(ld).count(), 0);
        assert_eq!(g.out_edges(st).count(), 0);
    }

    #[test]
    fn reg_consumers_report_distances() {
        let g = diamond();
        let mut cons: Vec<_> = g.reg_consumers(OpId::new(0)).collect();
        cons.sort();
        assert_eq!(cons, vec![(OpId::new(1), 0), (OpId::new(2), 2)]);
    }

    #[test]
    fn live_variants_exclude_stores_and_dead_values() {
        let mut g = diamond();
        let dead = g.add_op(OpKind::Add, "dead");
        let live: Vec<_> = g.live_variants().collect();
        assert!(live.contains(&OpId::new(0)));
        assert!(!live.contains(&OpId::new(3)), "stores define nothing");
        assert!(!live.contains(&dead), "no consumers, no lifetime");
    }

    #[test]
    fn remove_edges_rebuilds_adjacency() {
        let mut g = diamond();
        let removed = g.remove_edges_where(|e| e.from() == OpId::new(0));
        assert_eq!(removed, 2);
        assert_eq!(g.successors(OpId::new(0)).count(), 0);
        assert_eq!(g.num_edges(), 2);
        // Remaining edges still reachable through adjacency.
        assert_eq!(g.predecessors(OpId::new(3)).count(), 2);
    }

    #[test]
    fn spillability_rules() {
        let mut g = diamond();
        let ld = OpId::new(0);
        assert!(g.is_value_spillable(ld));
        g.mark_value_non_spillable(ld);
        assert!(!g.is_value_spillable(ld));
        // A store never defines a spillable value.
        assert!(!g.is_value_spillable(OpId::new(3)));
    }

    #[test]
    fn fixed_out_edge_blocks_spilling() {
        let mut g = diamond();
        // Bond mul to st: mul's value is now part of a complex op.
        g.add_edge(Edge::fixed(OpId::new(1), OpId::new(3)));
        assert!(!g.is_value_spillable(OpId::new(1)));
    }

    #[test]
    fn invariants_lifecycle() {
        let mut g = diamond();
        let id = g.add_invariant("a", &[OpId::new(1)]);
        assert_eq!(g.num_invariants(), 1);
        assert_eq!(g.num_live_invariants(), 1);
        g.invariant_mut(id).mark_spilled();
        assert_eq!(g.num_invariants(), 1);
        assert_eq!(g.num_live_invariants(), 0);
    }

    #[test]
    fn histogram_and_traffic() {
        let g = diamond();
        let h = g.kind_histogram();
        assert_eq!(h[OpKind::Load.index()], 1);
        assert_eq!(h[OpKind::Store.index()], 1);
        assert_eq!(g.memory_ops(), 2);
        assert_eq!(g.max_distance(), 2);
    }

    #[test]
    fn display_mentions_all_parts() {
        let mut g = diamond();
        g.add_invariant("a", &[OpId::new(1)]);
        let s = g.to_string();
        assert!(s.contains("diamond"));
        assert!(s.contains("invariant a"));
        assert!(s.contains("op0"));
    }
}
