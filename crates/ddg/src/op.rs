//! Operation identifiers and operation kinds.

use std::fmt;

/// Index of an operation (node) inside a [`crate::Ddg`].
///
/// `OpId`s are dense indices: they are assigned sequentially starting from
/// zero and remain stable for the lifetime of the graph (nodes are never
/// removed, only added — the spill rewriter disconnects nodes instead of
/// deleting them, mirroring the paper's treatment of dead loads).
///
/// ```
/// use regpipe_ddg::{DdgBuilder, OpKind};
/// let mut b = DdgBuilder::new("l");
/// let a = b.add_op(OpKind::Add, "a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u32);

impl OpId {
    /// Creates an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        OpId(u32::try_from(index).expect("operation index overflows u32"))
    }

    /// The dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The kind of an operation in the loop body.
///
/// The kinds mirror the operation classes of the paper's evaluation
/// machines (Section 5): memory operations (load/store), an adder, a
/// multiplier, and a non-pipelined divide/square-root unit. [`OpKind::Copy`]
/// models cheap register moves / address updates and executes on the adder.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Memory load. Produces a register value.
    Load,
    /// Memory store. Consumes values, produces none.
    Store,
    /// Floating-point (or integer) addition.
    Add,
    /// Multiplication.
    Mul,
    /// Division (long-latency, not pipelined on the paper's machines).
    Div,
    /// Square root (longest latency, not pipelined).
    Sqrt,
    /// Register move / trivial ALU op; executes on the adder.
    Copy,
}

impl OpKind {
    /// All operation kinds, in a fixed order usable for dense tables.
    pub const ALL: [OpKind; 7] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Sqrt,
        OpKind::Copy,
    ];

    /// Dense index of this kind within [`OpKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            OpKind::Load => 0,
            OpKind::Store => 1,
            OpKind::Add => 2,
            OpKind::Mul => 3,
            OpKind::Div => 4,
            OpKind::Sqrt => 5,
            OpKind::Copy => 6,
        }
    }

    /// Whether this operation accesses memory (contributes to memory
    /// traffic and occupies a load/store unit).
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Whether this operation defines a register value.
    ///
    /// Stores consume values but define none; every other kind defines
    /// exactly one loop-variant value per iteration.
    pub fn defines_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Short mnemonic used by [`std::fmt::Display`] and DOT export.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Add => "add",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Sqrt => "sqrt",
            OpKind::Copy => "copy",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_round_trips_index() {
        for i in [0usize, 1, 17, 100_000] {
            assert_eq!(OpId::new(i).index(), i);
        }
    }

    #[test]
    fn op_id_orders_by_index() {
        assert!(OpId::new(1) < OpId::new(2));
        assert_eq!(OpId::new(3), OpId::new(3));
    }

    #[test]
    fn all_kinds_have_unique_dense_indices() {
        let mut seen = [false; OpKind::ALL.len()];
        for kind in OpKind::ALL {
            assert!(!seen[kind.index()], "duplicate index for {kind}");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn memory_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::Add.is_memory());
        assert!(!OpKind::Div.is_memory());
    }

    #[test]
    fn only_stores_define_nothing() {
        for kind in OpKind::ALL {
            assert_eq!(kind.defines_value(), kind != OpKind::Store);
        }
    }

    #[test]
    fn display_uses_mnemonics() {
        assert_eq!(OpKind::Sqrt.to_string(), "sqrt");
        assert_eq!(format!("{}", OpId::new(4)), "op4");
    }
}
