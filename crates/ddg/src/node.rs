//! Operation nodes.

use std::fmt;

use crate::op::OpKind;

/// An operation of the loop body (a vertex of the dependence graph).
///
/// A node that [defines a value](OpKind::defines_value) defines one *loop
/// variant*: a new instance of the value is produced in every iteration.
/// Lifetime analysis and spilling identify the variant with its producing
/// node's [`crate::OpId`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Node {
    name: String,
    kind: OpKind,
}

impl Node {
    /// Creates a node with a human-readable name.
    pub fn new(kind: OpKind, name: impl Into<String>) -> Self {
        Node { name: name.into(), kind }
    }

    /// Human-readable name (used in kernels, DOT dumps, error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors_and_display() {
        let n = Node::new(OpKind::Mul, "t1");
        assert_eq!(n.name(), "t1");
        assert_eq!(n.kind(), OpKind::Mul);
        assert_eq!(n.to_string(), "t1:mul");
    }
}
