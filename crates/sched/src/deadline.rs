//! Cooperative per-request deadlines for the compile path.
//!
//! A long-lived daemon cannot afford an unbounded compile: the exact
//! scheduler's branch-and-bound can blow up, and even the heuristic
//! drivers sweep many IIs on pathological loops. This module threads a
//! *cooperative* check-budget through the schedulers and drivers without
//! changing a single signature: [`arm`] installs a thread-local deadline
//! for the current request, and the hot loops call [`check`] at their
//! natural round boundaries (driver rounds, II probes, every 1024
//! branch-and-bound nodes).
//!
//! When the deadline has passed, [`check`] cancels the compile by
//! unwinding with a dedicated [`DeadlineExceeded`] payload. All compile
//! state is request-local (there is no shared mutable state below the
//! driver layer), so the unwind simply discards the partial work; the
//! caller catches it with `std::panic::catch_unwind`, recognizes the
//! payload with [`is_deadline_panic`], and degrades gracefully — a
//! structured `deadline` error instead of a hung worker.
//!
//! With no deadline armed (the default, and the only configuration the
//! byte-determinism gates run under) [`check`] is a thread-local read
//! and never fires, so results stay deterministic.

use std::any::Any;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// The panic payload [`check`] unwinds with when the armed deadline has
/// passed. Catch with `catch_unwind` and test with [`is_deadline_panic`].
pub struct DeadlineExceeded;

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Re-arms the previous deadline (usually none) when dropped, so a
/// caught deadline unwind cannot leak an expired deadline into the
/// thread's next request.
#[must_use = "the deadline is disarmed when the guard drops"]
pub struct DeadlineGuard {
    prev: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.set(self.prev);
    }
}

/// Arms a deadline `budget` from now on the current thread. The
/// returned guard restores the previous state on drop — including
/// during the unwind [`check`] starts.
pub fn arm(budget: Duration) -> DeadlineGuard {
    let prev = DEADLINE.replace(Some(Instant::now() + budget));
    DeadlineGuard { prev }
}

/// Cancels the current compile (by unwinding with [`DeadlineExceeded`])
/// if an armed deadline has passed; otherwise a cheap no-op. Call this
/// from bounded-work loop boundaries only — never while holding a lock
/// or halfway through mutating shared state.
pub fn check() {
    if let Some(deadline) = DEADLINE.get() {
        if Instant::now() >= deadline {
            std::panic::panic_any(DeadlineExceeded);
        }
    }
}

/// Whether a `catch_unwind` payload is a deadline cancellation (as
/// opposed to a genuine panic).
pub fn is_deadline_panic(payload: &(dyn Any + Send)) -> bool {
    payload.is::<DeadlineExceeded>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn unarmed_check_is_a_no_op() {
        check();
    }

    #[test]
    fn expired_deadline_unwinds_with_the_marker_payload() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _guard = arm(Duration::ZERO);
            check();
        }))
        .unwrap_err();
        assert!(is_deadline_panic(&*err));
        // The guard restored the thread state during the unwind.
        check();
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let _guard = arm(Duration::from_secs(3600));
        check();
    }

    #[test]
    fn ordinary_panics_are_not_deadline_panics() {
        let err = catch_unwind(|| panic!("boom")).unwrap_err();
        assert!(!is_deadline_panic(&*err));
    }
}
