//! Kernel extraction (paper Figure 2e).
//!
//! The kernel is the II-cycle block that the steady state iterates on: each
//! scheduled operation appears once, at cycle `t mod II`, annotated with its
//! stage `⌊t / II⌋`. The ramp-up (prologue) and ramp-down (epilogue) each
//! take `(SC − 1) · II` cycles.

use std::fmt;

use regpipe_ddg::{Ddg, OpId};

use crate::schedule::Schedule;

/// One operation's position in the kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KernelSlot {
    /// The operation.
    pub op: OpId,
    /// Kernel row (cycle modulo II).
    pub cycle: u32,
    /// Stage index (0 = newest iteration).
    pub stage: u32,
}

/// The kernel of a modulo schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    ii: u32,
    stage_count: u32,
    /// Rows indexed by cycle; each row sorted by stage then op.
    rows: Vec<Vec<KernelSlot>>,
    names: Vec<String>,
}

impl Kernel {
    /// Extracts the kernel of `schedule` for `ddg`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the graph.
    pub fn new(ddg: &Ddg, schedule: &Schedule) -> Self {
        assert_eq!(ddg.num_ops(), schedule.num_ops(), "schedule/graph mismatch");
        let ii = schedule.ii();
        let mut rows: Vec<Vec<KernelSlot>> = vec![Vec::new(); ii as usize];
        for (id, _) in ddg.ops() {
            let t = schedule.start(id);
            let cycle = (t % i64::from(ii)) as u32;
            let stage = schedule.stage(id);
            rows[cycle as usize].push(KernelSlot { op: id, cycle, stage });
        }
        for row in &mut rows {
            row.sort_by_key(|s| (s.stage, s.op));
        }
        Kernel {
            ii,
            stage_count: schedule.stage_count(),
            rows,
            names: ddg.ops().map(|(_, n)| n.name().to_string()).collect(),
        }
    }

    /// The initiation interval (number of kernel rows).
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The stage count.
    pub fn stage_count(&self) -> u32 {
        self.stage_count
    }

    /// The slots issued at kernel `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle >= ii`.
    pub fn row(&self, cycle: u32) -> &[KernelSlot] {
        &self.rows[cycle as usize]
    }

    /// Iterates over all slots in (cycle, stage) order.
    pub fn slots(&self) -> impl Iterator<Item = &KernelSlot> {
        self.rows.iter().flatten()
    }

    /// Length of the prologue (and of the epilogue) in cycles.
    pub fn prologue_cycles(&self) -> u32 {
        (self.stage_count - 1) * self.ii
    }

    /// Total cycles to execute the loop for `iterations` iterations:
    /// prologue + steady state + epilogue.
    ///
    /// For fewer iterations than stages the loop never reaches steady state;
    /// the estimate degrades to the sequential span.
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        let ii = u64::from(self.ii);
        let sc = u64::from(self.stage_count);
        if iterations == 0 {
            return 0;
        }
        if iterations < sc {
            return (iterations + sc - 1) * ii;
        }
        // (SC-1)·II ramp-up + iterations·II + (SC-1)·II ramp-down, counting
        // the conventional single-issue of the final stages.
        (iterations + 2 * (sc - 1)) * ii
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel: II={}, SC={}", self.ii, self.stage_count)?;
        for (cycle, row) in self.rows.iter().enumerate() {
            write!(f, "  {cycle:>3}:")?;
            for slot in row {
                write!(f, " {}[{}]", self.names[slot.op.index()], slot.stage)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn fig2_like() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        let g = b.build().unwrap();
        // The paper's Figure 2c schedule: Ld@0, *@2, +@4, St@6, II = 1.
        let s = Schedule::new(1, vec![0, 2, 4, 6]);
        (g, s)
    }

    #[test]
    fn fig2_kernel_has_seven_stages() {
        let (g, s) = fig2_like();
        let k = Kernel::new(&g, &s);
        assert_eq!(k.ii(), 1);
        assert_eq!(k.stage_count(), 7);
        // One row with all four ops at stages 0, 2, 4, 6 (Figure 2e).
        let stages: Vec<u32> = k.row(0).iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![0, 2, 4, 6]);
        assert_eq!(k.prologue_cycles(), 6);
    }

    #[test]
    fn kernel_rows_partition_ops() {
        let (g, _) = fig2_like();
        let s = Schedule::new(2, vec![0, 2, 4, 6]);
        let k = Kernel::new(&g, &s);
        assert_eq!(k.ii(), 2);
        assert_eq!(k.stage_count(), 4);
        assert_eq!(k.slots().count(), 4);
        assert_eq!(k.row(0).len(), 4, "all starts are even");
        assert_eq!(k.row(1).len(), 0);
    }

    #[test]
    fn total_cycles_accounts_for_ramp() {
        let (g, s) = fig2_like();
        let k = Kernel::new(&g, &s);
        // II=1, SC=7: N iterations take N + 12 cycles.
        assert_eq!(k.total_cycles(100), 112);
        assert_eq!(k.total_cycles(0), 0);
        assert!(k.total_cycles(3) >= 3);
    }

    #[test]
    fn display_prints_rows() {
        let (g, s) = fig2_like();
        let k = Kernel::new(&g, &s);
        let txt = k.to_string();
        assert!(txt.contains("II=1"));
        assert!(txt.contains("Ld[0]"));
        assert!(txt.contains("St[6]"));
    }
}
