//! Whole-pipeline code emission: prologue, kernel, epilogue.
//!
//! A modulo schedule describes one iteration; actually executing the loop
//! requires a ramp-up (prologue) that starts iterations 0..SC−1, the
//! repeating kernel, and a ramp-down (epilogue) that drains the last SC−1
//! iterations (paper Section 2.2). This module materializes all three —
//! what a compiler backend would emit — plus a flat execution trace for
//! small iteration counts, used by tests to cross-check the model.

use std::fmt;

use regpipe_ddg::{Ddg, OpId};

use crate::schedule::Schedule;

/// An operation instance in the flat execution trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// Absolute issue cycle.
    pub cycle: i64,
    /// The operation.
    pub op: OpId,
    /// Which loop iteration this instance belongs to.
    pub iteration: u64,
}

/// The emitted software pipeline for one loop.
#[derive(Clone, Debug)]
pub struct PipelinedLoop {
    ii: u32,
    stage_count: u32,
    /// `(relative cycle, op, iteration-offset)` triples of the prologue:
    /// iteration-offset counts from the first iteration (0-based).
    prologue: Vec<(i64, OpId, u32)>,
    /// `(kernel row, op, stage)` of the steady state.
    kernel: Vec<(u32, OpId, u32)>,
    /// `(relative cycle, op, iterations-from-last)` of the epilogue:
    /// offset 0 is the final iteration.
    epilogue: Vec<(i64, OpId, u32)>,
    names: Vec<String>,
}

impl PipelinedLoop {
    /// Emits the pipeline for `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the graph.
    pub fn new(ddg: &Ddg, schedule: &Schedule) -> Self {
        assert_eq!(ddg.num_ops(), schedule.num_ops(), "schedule/graph mismatch");
        let ii = i64::from(schedule.ii());
        let sc = schedule.stage_count();
        let ramp = i64::from(sc - 1) * ii;

        // Prologue: instances of iterations 0..SC-1 that issue before the
        // steady state begins (absolute cycle < (SC-1)*II).
        let mut prologue = Vec::new();
        for k in 0..sc {
            for (id, _) in ddg.ops() {
                let t = schedule.start(id) + i64::from(k) * ii;
                if t < ramp {
                    prologue.push((t, id, k));
                }
            }
        }
        prologue.sort_by_key(|&(t, op, _)| (t, op));

        // Kernel: one slot per op, annotated with its stage.
        let mut kernel: Vec<(u32, OpId, u32)> = ddg
            .ops()
            .map(|(id, _)| ((schedule.start(id) % ii) as u32, id, schedule.stage(id)))
            .collect();
        kernel.sort_by_key(|&(row, op, _)| (row, op));

        // Epilogue: instances still in flight after the last iteration has
        // issued its stage-0 part; offset o = SC-1-stage iterations from
        // the end, relative cycle counted from the last kernel repetition.
        let mut epilogue = Vec::new();
        for (id, _) in ddg.ops() {
            let stage = schedule.stage(id);
            // The final SC-1 iterations each still owe their later stages.
            for back in 0..stage {
                let from_last = stage - back - 1;
                let t = schedule.start(id) - i64::from(schedule.stage(id)) * ii
                    + i64::from(back + 1) * ii;
                epilogue.push((t, id, from_last));
            }
        }
        epilogue.sort_by_key(|&(t, op, _)| (t, op));

        PipelinedLoop {
            ii: schedule.ii(),
            stage_count: sc,
            prologue,
            kernel,
            epilogue,
            names: ddg.ops().map(|(_, n)| n.name().to_string()).collect(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The stage count.
    pub fn stage_count(&self) -> u32 {
        self.stage_count
    }

    /// Prologue length in cycles.
    pub fn prologue_cycles(&self) -> u32 {
        (self.stage_count - 1) * self.ii
    }

    /// Number of operation instances in the prologue (= in the epilogue).
    pub fn prologue_ops(&self) -> usize {
        self.prologue.len()
    }

    /// Number of operation instances in the epilogue.
    pub fn epilogue_ops(&self) -> usize {
        self.epilogue.len()
    }

    /// Code-size estimate in operation slots: prologue + kernel + epilogue.
    pub fn code_size(&self) -> usize {
        self.prologue.len() + self.kernel.len() + self.epilogue.len()
    }

    /// The flat execution trace for `iterations` iterations: every dynamic
    /// operation instance with its absolute issue cycle, sorted by cycle.
    ///
    /// Iteration `k`'s instance of op `v` issues at `start(v) + k·II` —
    /// the defining equation of modulo scheduling; tests use this to verify
    /// that prologue/kernel/epilogue views agree with the model.
    pub fn trace(&self, schedule: &Schedule, iterations: u64) -> Vec<TraceEntry> {
        let ii = i64::from(self.ii);
        let mut out = Vec::new();
        for k in 0..iterations {
            for (idx, _) in self.names.iter().enumerate() {
                let op = OpId::new(idx);
                out.push(TraceEntry {
                    cycle: schedule.start(op) + k as i64 * ii,
                    op,
                    iteration: k,
                });
            }
        }
        out.sort_by_key(|e| (e.cycle, e.op));
        out
    }
}

impl fmt::Display for PipelinedLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipelined loop: II={}, SC={}, code size {} slots",
            self.ii,
            self.stage_count,
            self.code_size()
        )?;
        writeln!(f, "prologue ({} cycles):", self.prologue_cycles())?;
        for &(t, op, iter) in &self.prologue {
            writeln!(f, "  {t:>4}: {}(i{iter})", self.names[op.index()])?;
        }
        writeln!(f, "kernel (repeat; op(i-s) reads iteration i-s):")?;
        for &(row, op, stage) in &self.kernel {
            writeln!(f, "  {row:>4}: {}(i-{stage})", self.names[op.index()])?;
        }
        writeln!(f, "epilogue:")?;
        for &(t, op, back) in &self.epilogue {
            writeln!(f, "  {t:>4}: {}(N-{back})", self.names[op.index()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn fig2() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        (b.build().unwrap(), Schedule::new(1, vec![0, 2, 4, 6]))
    }

    #[test]
    fn prologue_and_epilogue_balance() {
        let (g, s) = fig2();
        let p = PipelinedLoop::new(&g, &s);
        assert_eq!(p.stage_count(), 7);
        assert_eq!(p.prologue_cycles(), 6);
        // Every op instance not yet in steady state appears once in the
        // prologue; symmetric count drains in the epilogue.
        assert_eq!(p.prologue_ops(), p.epilogue_ops());
        assert_eq!(p.code_size(), p.prologue_ops() + 4 + p.epilogue_ops());
    }

    #[test]
    fn trace_matches_the_modulo_model() {
        let (g, s) = fig2();
        let p = PipelinedLoop::new(&g, &s);
        let trace = p.trace(&s, 10);
        assert_eq!(trace.len(), 40, "4 ops x 10 iterations");
        for e in &trace {
            assert_eq!(e.cycle, s.start(e.op) + e.iteration as i64);
        }
        // The store of iteration k issues at cycle 6 + k.
        let stores: Vec<i64> =
            trace.iter().filter(|e| e.op == OpId::new(3)).map(|e| e.cycle).collect();
        assert_eq!(stores, (6..16).collect::<Vec<i64>>());
    }

    #[test]
    fn prologue_instances_precede_steady_state() {
        let (g, s) = fig2();
        let p = PipelinedLoop::new(&g, &s);
        for &(t, _, iter) in &p.prologue {
            assert!(t < 6, "prologue ends at cycle (SC-1)*II");
            assert!(iter < 7);
        }
    }

    #[test]
    fn single_stage_loop_has_empty_ramps() {
        let mut b = DdgBuilder::new("flat");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        let g = b.build().unwrap();
        let s = Schedule::new(8, vec![0, 4]);
        let p = PipelinedLoop::new(&g, &s);
        assert_eq!(p.stage_count(), 1);
        assert_eq!(p.prologue_ops(), 0);
        assert_eq!(p.epilogue_ops(), 0);
        assert_eq!(p.code_size(), 2);
    }

    #[test]
    fn display_sections_render() {
        let (g, s) = fig2();
        let p = PipelinedLoop::new(&g, &s);
        let txt = p.to_string();
        assert!(txt.contains("prologue"));
        assert!(txt.contains("kernel"));
        assert!(txt.contains("epilogue"));
        assert!(txt.contains("St(i-6)"), "kernel reads 6 stages back:\n{txt}");
    }
}
