//! Complex-operation groups ("bonded" operations, paper Section 4.3).
//!
//! Spill loads and stores must stay glued to their consumer/producer: a
//! spill store issues exactly `lat(producer)` cycles after the producer, a
//! consumer exactly `lat(load)` cycles after its reload. Otherwise a
//! register-insensitive scheduler could stretch the new lifetimes and
//! *increase* register pressure, defeating the spill. The paper's fix is to
//! schedule each bonded cluster as a single "complex operation".
//!
//! Fixed edges in the graph encode the bonds; this module derives the
//! clusters and the exact cycle offset of every member relative to the
//! cluster leader.

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

/// The partition of a graph's operations into complex-operation groups.
///
/// Operations without bonds form singleton groups with offset 0.
#[derive(Clone, Debug)]
pub struct ComplexGroups {
    /// Group index per operation.
    group_of: Vec<u32>,
    /// Offset (in cycles) of each operation relative to its group leader.
    offset: Vec<i64>,
    /// Members of each group, sorted by offset then id.
    members: Vec<Vec<OpId>>,
    /// Leader (offset-0 member) of each group.
    leaders: Vec<OpId>,
}

impl ComplexGroups {
    /// Derives groups from the graph's fixed edges.
    ///
    /// Offsets follow the bond rule `t(to) = t(from) + latency(from)`.
    /// Offsets are normalized so each group's minimum offset is zero; the
    /// operation at offset zero is the group's leader.
    ///
    /// # Panics
    ///
    /// Panics if fixed edges form a cycle or assign an operation two
    /// inconsistent offsets ([`Ddg::validate`] rejects such graphs).
    pub fn new(ddg: &Ddg, machine: &MachineConfig) -> Self {
        let n = ddg.num_ops();
        // Union-find over fixed edges.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for e in ddg.edges().filter(|e| e.is_fixed()) {
            let (a, b) = (e.from().index() as u32, e.to().index() as u32);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }

        // Relative offsets: solve the bond equalities by bidirectional BFS
        // over fixed edges (a bond is a difference constraint, so any member
        // can seed its group). Inconsistent bond systems — constructible
        // only by hand, never by the spill rewriter — are rejected here.
        let mut offset = vec![0i64; n];
        let mut pinned = vec![false; n];
        let mut fixed_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fixed_in: Vec<Vec<usize>> = vec![Vec::new(); n];
        let fixed_edges: Vec<_> = ddg.edges().filter(|e| e.is_fixed()).cloned().collect();
        for (i, e) in fixed_edges.iter().enumerate() {
            fixed_out[e.from().index()].push(i);
            fixed_in[e.to().index()].push(i);
        }
        let bond_len = |e: &regpipe_ddg::Edge| {
            i64::from(machine.latency(ddg.op(e.from()).kind())) + i64::from(e.stagger())
        };
        for seed in 0..n {
            if pinned[seed] {
                continue;
            }
            pinned[seed] = true;
            offset[seed] = 0;
            let mut queue = vec![seed];
            while let Some(v) = queue.pop() {
                for &i in &fixed_out[v] {
                    let e = &fixed_edges[i];
                    let want = offset[v] + bond_len(e);
                    let t = e.to().index();
                    if pinned[t] {
                        assert_eq!(offset[t], want, "conflicting bond offsets for op {t}");
                    } else {
                        offset[t] = want;
                        pinned[t] = true;
                        queue.push(t);
                    }
                }
                for &i in &fixed_in[v] {
                    let e = &fixed_edges[i];
                    let want = offset[v] - bond_len(e);
                    let f = e.from().index();
                    if pinned[f] {
                        assert_eq!(offset[f], want, "conflicting bond offsets for op {f}");
                    } else {
                        offset[f] = want;
                        pinned[f] = true;
                        queue.push(f);
                    }
                }
            }
        }

        // Collect groups, normalize offsets.
        let mut group_of = vec![u32::MAX; n];
        let mut members: Vec<Vec<OpId>> = Vec::new();
        for v in 0..n {
            let root = find(&mut parent, v as u32) as usize;
            if group_of[root] == u32::MAX {
                group_of[root] = members.len() as u32;
                members.push(Vec::new());
            }
            let gi = group_of[root];
            group_of[v] = gi;
            members[gi as usize].push(OpId::new(v));
        }
        let mut leaders = Vec::with_capacity(members.len());
        for group in &mut members {
            let min = group.iter().map(|m| offset[m.index()]).min().unwrap_or(0);
            for m in group.iter() {
                offset[m.index()] -= min;
            }
            group.sort_by_key(|m| (offset[m.index()], m.index()));
            leaders.push(group[0]);
        }
        ComplexGroups { group_of, offset, members, leaders }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no groups (empty graph).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Group index of `op`.
    pub fn group_of(&self, op: OpId) -> usize {
        self.group_of[op.index()] as usize
    }

    /// Offset of `op` relative to its group leader (≥ 0).
    pub fn offset(&self, op: OpId) -> i64 {
        self.offset[op.index()]
    }

    /// Members of the group containing `op`, sorted by offset.
    pub fn members_of(&self, op: OpId) -> &[OpId] {
        &self.members[self.group_of(op)]
    }

    /// The leader (offset-0 member) of group `g`.
    pub fn leader(&self, g: usize) -> OpId {
        self.leaders[g]
    }

    /// Whether `op` belongs to a multi-operation (complex) group.
    pub fn is_complex(&self, op: OpId) -> bool {
        self.members_of(op).len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::{DdgBuilder, OpKind};

    #[test]
    fn singleton_groups_without_bonds() {
        let mut b = DdgBuilder::new("s");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Mul, "c");
        b.reg(a, c);
        let g = b.build().unwrap();
        let groups = ComplexGroups::new(&g, &MachineConfig::p1l4());
        assert_eq!(groups.len(), 2);
        assert!(!groups.is_complex(a));
        assert_eq!(groups.offset(c), 0);
    }

    #[test]
    fn bond_chain_offsets_follow_latencies() {
        // producer(add, lat 4) ->! store ; load ->! consumer(add)
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let groups = ComplexGroups::new(&g, &m);
        assert_eq!(groups.len(), 1);
        assert!(groups.is_complex(p));
        assert_eq!(groups.leader(0), p);
        assert_eq!(groups.offset(p), 0);
        assert_eq!(groups.offset(s), 4, "store exactly lat(add) after producer");
    }

    #[test]
    fn load_consumer_bond() {
        let mut b = DdgBuilder::new("lc");
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        let g = b.build().unwrap();
        let groups = ComplexGroups::new(&g, &MachineConfig::p2l6());
        assert_eq!(groups.offset(c), 2, "consumer exactly lat(load) after reload");
        assert_eq!(groups.members_of(l), &[l, c]);
    }

    #[test]
    fn staggered_reloads_bond_to_one_consumer() {
        // Two reloads into one consumer: the second staggered by a cycle.
        let mut b = DdgBuilder::new("stagger");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        let c = b.add_op(OpKind::Add, "c");
        b.bond(l1, c); // t(c) = t(l1) + 2
        b.bond_staggered(l2, c, 1); // t(c) = t(l2) + 3
        let g = b.build().unwrap();
        let groups = ComplexGroups::new(&g, &MachineConfig::p1l4());
        assert_eq!(groups.members_of(c).len(), 3);
        // Normalized offsets: l2 earliest (0), l1 at 1, c at 3.
        assert_eq!(groups.offset(l2), 0);
        assert_eq!(groups.offset(l1), 1);
        assert_eq!(groups.offset(c), 3);
    }

    #[test]
    fn shared_consumer_merges_groups() {
        // Two loads bonded to the same consumer would conflict; but two
        // loads bonded to one consumer each, where the consumer is shared,
        // is exactly what happens when an op has two spilled operands —
        // validation forbids two fixed in-edges, so model it as one bond
        // plus a free edge.
        let mut b = DdgBuilder::new("m");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        let c = b.add_op(OpKind::Add, "c");
        b.bond(l1, c);
        b.reg(l2, c);
        let g = b.build().unwrap();
        let groups = ComplexGroups::new(&g, &MachineConfig::p1l4());
        assert_eq!(groups.members_of(l1).len(), 2);
        assert!(!groups.is_complex(l2));
    }

    #[test]
    fn transitive_bonds_accumulate() {
        // a ->! b ->! c : offsets 0, lat(a), lat(a)+lat(b).
        let mut b = DdgBuilder::new("t");
        let x = b.add_op(OpKind::Load, "x"); // lat 2
        let y = b.add_op(OpKind::Mul, "y"); // lat 4
        let z = b.add_op(OpKind::Store, "z");
        b.bond(x, y);
        b.bond(y, z);
        let g = b.build().unwrap();
        let groups = ComplexGroups::new(&g, &MachineConfig::p1l4());
        assert_eq!(groups.offset(x), 0);
        assert_eq!(groups.offset(y), 2);
        assert_eq!(groups.offset(z), 6);
        assert_eq!(groups.len(), 1);
    }
}
