//! Swing Modulo Scheduling (SMS).
//!
//! SMS (Llosa, González, Ayguadé & Valero) is the direct successor of HRMS
//! by the same group and the second register-sensitive production scheduler
//! of this crate. Like HRMS it works in two phases over the shared
//! [`LoopAnalysis`] context — the recurrence-first priority sets, the
//! group super graph, the warm-started [`TimeAnalysis`] and the placement
//! machinery are all reused — but the **ordering phase** walks each
//! priority set by a different priority, the node's *swing*:
//!
//! * In a **top-down** sweep (some predecessors already ordered) the next
//!   node is the one with the **smallest ALAP** — the tightest deadline:
//!   placing it late would stretch the lifetimes of its (already placed)
//!   producers, so it is emitted before nodes that can still swing down.
//! * In a **bottom-up** sweep (some successors already ordered) the next
//!   node is the one with the **largest ASAP** — the deepest origin: it
//!   sits closest above its (already placed) consumers, so emitting it
//!   first lets the placement phase pull it down next to them.
//!
//! Ties break by smaller mobility, then group index, keeping the order
//! fully deterministic. Where the HRMS ordering of this crate strongly
//! prefers nodes whose same-direction neighbours are all ordered (a
//! robustness gate against unsatisfiable placement windows), SMS follows
//! the swing priority unconditionally; a node may therefore be emitted
//! between its neighbours and end up with scheduled operations on *both*
//! sides. The bidirectional placement handles that window, and when it is
//! infeasible at a candidate II the search simply moves on — the same
//! ASAP-clamped fallback HRMS uses guarantees the II search converges.
//!
//! The placement phase is identical to HRMS ([`PlaceMode::Hrms`]): scan up
//! from the earliest start when producers anchor the node, down from the
//! latest start when consumers do, at most II slots of the modulo
//! reservation table — operations hug their scheduled neighbours and
//! lifetimes stay near their dataflow minimum.
//!
//! The worked comparison of both orderings on the same kernels lives in
//! `docs/algorithms.md`.

use std::collections::BTreeSet;

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::MachineConfig;

use crate::analysis::TimeAnalysis;
use crate::hrms::{
    frontier_walk, group_priorities, place_order, Direction, PlaceMode, PlaceScratch,
};
use crate::loop_analysis::LoopAnalysis;
use crate::{SchedError, SchedRequest, Schedule, Scheduler};

/// The Swing Modulo Scheduling register-sensitive scheduler.
///
/// The ordering phase walks the shared priority sets by each node's
/// combined ASAP/ALAP *swing* priority — tightest deadline top-down,
/// deepest origin bottom-up — where
/// [`HrmsScheduler`](crate::HrmsScheduler) prefers readiness; the
/// bidirectional placement phase and every II-independent analysis
/// ([`LoopAnalysis`]) are shared. `docs/algorithms.md` walks both
/// orderings side by side on the same kernels.
#[derive(Clone, Copy, Default, Debug)]
pub struct SmsScheduler {
    _private: (),
}

impl SmsScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        SmsScheduler { _private: () }
    }

    /// Runs the swing ordering phase in isolation: the sequence of
    /// complex-group leaders SMS places at `ii`, one per group.
    ///
    /// Returns `None` when the timing analysis is infeasible at `ii`.
    pub fn ordering(&self, ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Option<Vec<OpId>> {
        let ctx = LoopAnalysis::new(ddg, machine);
        let analysis = ctx.time_analysis(ii, None)?;
        Some(swing_ordering(&ctx, &analysis))
    }
}

impl Scheduler for SmsScheduler {
    fn name(&self) -> &'static str {
        "sms"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        self.schedule_in(&LoopAnalysis::new(ddg, machine), request)
    }

    fn schedule_in(
        &self,
        ctx: &LoopAnalysis<'_>,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        let lower = ctx.mii().max(request.min_ii.unwrap_or(1));
        let upper = request.max_ii.unwrap_or_else(|| ctx.fallback_max_ii());
        if upper < lower {
            return Err(SchedError::InfeasibleRequest { min_ii: lower, max_ii: upper });
        }
        let mut scratch = PlaceScratch::new(ctx.ddg().num_ops());
        let mut tried = 0u32;
        let mut prev: Option<TimeAnalysis> = None;
        for ii in lower..=upper {
            tried += 1;
            let Some(analysis) = ctx.time_analysis(ii, prev.as_ref()) else {
                continue;
            };
            let order = swing_ordering(ctx, &analysis);
            if let Some(starts) =
                place_order(ctx, ii, &order, &analysis, PlaceMode::Hrms, &mut scratch)
            {
                return Ok(Schedule::with_provenance(ii, starts, "sms", tried));
            }
            // The swing order has no readiness gate, so both-sided windows
            // can wedge at tight IIs; fall back to the context's forward
            // topological order with ASAP-clamped placement before moving
            // on, exactly as HRMS does, so the search always converges.
            if let Some(starts) = place_order(
                ctx,
                ii,
                &ctx.fallback,
                &analysis,
                PlaceMode::AsapClamped,
                &mut scratch,
            ) {
                return Ok(Schedule::with_provenance(ii, starts, "sms", tried));
            }
            prev = Some(analysis);
        }
        Err(SchedError::NoScheduleUpTo { max_ii: upper })
    }
}

/// The swing ordering: the shared [`frontier_walk`] over the context's
/// precomputed priority sets (recurrences by decreasing RecMII, each with
/// its connecting path nodes, then the acyclic rest), emitting at each
/// step the frontier group with the best swing priority for the sweep
/// direction.
pub(crate) fn swing_ordering(ctx: &LoopAnalysis<'_>, analysis: &TimeAnalysis) -> Vec<OpId> {
    let (g_asap, g_alap, g_mob) = group_priorities(ctx, analysis);
    frontier_walk(
        ctx,
        // Fresh start: the least slack, then the tightest deadline — the
        // node whose placement window the rest of the set must be
        // arranged around.
        |remaining| {
            remaining
                .iter()
                .copied()
                .min_by_key(|&v| (g_mob[v], g_alap[v], v))
                .expect("non-empty")
        },
        |frontier, _remaining, dir| pick_swing(frontier, dir, &g_asap, &g_alap, &g_mob),
    )
}

/// Picks the frontier group with the best swing priority: tightest deadline
/// (smallest ALAP) top-down, deepest origin (largest ASAP) bottom-up; ties
/// by smaller mobility, then index. Unlike the HRMS pick there is no
/// readiness gate — the swing is followed unconditionally.
fn pick_swing(
    frontier: &BTreeSet<usize>,
    dir: Direction,
    g_asap: &[i64],
    g_alap: &[i64],
    g_mob: &[i64],
) -> Option<usize> {
    frontier.iter().copied().min_by_key(|&v| {
        let swing = match dir {
            Direction::TopDown => g_alap[v],
            Direction::BottomUp => -g_asap[v],
        };
        (swing, g_mob[v], v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mii, HrmsScheduler};
    use regpipe_ddg::{DdgBuilder, OpKind};

    fn schedule_ok(ddg: &Ddg, machine: &MachineConfig) -> Schedule {
        let s = SmsScheduler::new()
            .schedule(ddg, machine, &SchedRequest::default())
            .expect("schedulable");
        s.verify(ddg, machine).expect("valid");
        s
    }

    #[test]
    fn single_op_loop() {
        let mut b = DdgBuilder::new("one");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 1);
        assert_eq!(s.scheduler(), "sms");
    }

    #[test]
    fn paper_example_achieves_ii_1_on_uniform_machine() {
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        let g = b.build().unwrap();
        let m = MachineConfig::uniform(4, 2);
        let s = schedule_ok(&g, &m);
        assert_eq!(s.ii(), 1, "resource bound: 4 ops / 4 units");
    }

    #[test]
    fn recurrence_constrains_ii() {
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p2l4());
        assert_eq!(s.ii(), 8);
    }

    #[test]
    fn bonded_pair_scheduled_atomically() {
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        b.mem(s, l, 1);
        let g = b.build().unwrap();
        let sched = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(sched.start(s) - sched.start(p), 4);
        assert_eq!(sched.start(c) - sched.start(l), 2);
    }

    #[test]
    fn honours_min_ii_and_rejects_empty_ranges() {
        let mut b = DdgBuilder::new("m");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let s = SmsScheduler::new().schedule(&g, &m, &SchedRequest::starting_at(5)).unwrap();
        assert_eq!(s.ii(), 5);
        let err = SmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: Some(4), max_ii: Some(3) })
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleRequest { .. }));
    }

    /// The swing ordering follows deadlines where HRMS follows readiness:
    /// on a join whose arms have different depths the two emit visibly
    /// different orders (the kernel walked in `docs/algorithms.md`).
    #[test]
    fn swing_order_differs_from_hrms_on_asymmetric_joins() {
        let mut b = DdgBuilder::new("join");
        let a = b.add_op(OpKind::Load, "a");
        let bb = b.add_op(OpKind::Store, "b");
        let c = b.add_op(OpKind::Load, "c");
        let d = b.add_op(OpKind::Mul, "d");
        let s = b.add_op(OpKind::Store, "s");
        b.reg(a, bb);
        b.reg(a, d);
        b.reg(c, d);
        b.reg(d, s);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let ii = mii(&g, &m);
        let sms = SmsScheduler::new().ordering(&g, &m, ii).expect("feasible");
        let hrms = HrmsScheduler::new().ordering(&g, &m, ii).expect("feasible");
        assert_ne!(sms, hrms, "orderings must diverge on the join kernel");
        // SMS takes the tight-deadline multiply before the slack store.
        let pos = |order: &[OpId], op: OpId| order.iter().position(|&x| x == op).unwrap();
        assert!(pos(&sms, d) < pos(&sms, bb), "sms follows the deadline: {sms:?}");
        assert!(pos(&hrms, bb) < pos(&hrms, d), "hrms follows readiness: {hrms:?}");
        // Both still schedule the kernel to a verified optimum.
        let s1 = schedule_ok(&g, &m);
        assert_eq!(s1.ii(), ii);
    }

    #[test]
    fn stress_random_graphs_schedule_and_verify() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let machines = [MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()];
        for case in 0..150 {
            let n = rng.random_range(2..24usize);
            let mut b = DdgBuilder::new(format!("s{case}"));
            let kinds = [
                OpKind::Load,
                OpKind::Store,
                OpKind::Add,
                OpKind::Mul,
                OpKind::Copy,
                OpKind::Div,
            ];
            let ops: Vec<OpId> = (0..n)
                .map(|i| b.add_op(kinds[rng.random_range(0..kinds.len())], format!("n{i}")))
                .collect();
            for _ in 0..rng.random_range(0..2 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                if f == t {
                    continue;
                }
                let dist =
                    if t > f { rng.random_range(0..3u32) } else { rng.random_range(1..3u32) };
                if b.clone().build_unchecked().op(f).kind() == OpKind::Store {
                    b.mem(f, t, dist.max(if t > f { 0 } else { 1 }));
                } else {
                    b.reg_dist(f, t, dist);
                }
            }
            let Ok(g) = b.build() else { continue };
            let m = &machines[case % machines.len()];
            let s = SmsScheduler::new()
                .schedule(&g, m, &SchedRequest::default())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{g}"));
            s.verify(&g, m).unwrap_or_else(|e| panic!("case {case}: {e}\n{g}\n{s}"));
            assert!(s.ii() >= mii(&g, m));
        }
    }
}
