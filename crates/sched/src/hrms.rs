//! HRMS-style register-sensitive modulo scheduling.
//!
//! The paper uses HRMS (Hypernode Reduction Modulo Scheduling, by the same
//! authors) as its core scheduler. HRMS has two phases:
//!
//! 1. An **ordering phase** that arranges the operations so every operation
//!    is placed while only its predecessors *or* only its successors are
//!    already scheduled (recurrences are handled first, in decreasing order
//!    of their RecMII bound, together with the nodes on paths connecting
//!    them).
//! 2. A **placement phase** that walks the order, computing the earliest
//!    start implied by scheduled predecessors and/or the latest start
//!    implied by scheduled successors, and scanning at most II slots of the
//!    modulo reservation table in the direction that keeps the operation as
//!    close to its neighbours as possible.
//!
//! Keeping operations close to their producers/consumers is what makes the
//! scheduler *register-sensitive*: lifetimes stay near their dataflow
//! minimum. Where the MICRO-28 description of HRMS leaves details open we
//! follow the ordering later formalized by the same group (Swing Modulo
//! Scheduling), which preserves the pred-XOR-succ property.
//!
//! Complex-operation groups (bonded spill code, Section 4.3 of the paper)
//! are ordered and placed atomically with exact member offsets.

use std::collections::BTreeSet;

use regpipe_ddg::{Ddg, OpId};
use regpipe_machine::{MachineConfig, Mrt};

use crate::analysis::TimeAnalysis;
use crate::groups::ComplexGroups;
use crate::{
    edge_latency, fallback_max_ii, mii, SchedError, SchedRequest, Schedule, Scheduler,
};

const NEG_INF: i64 = i64::MIN / 4;

/// The register-sensitive HRMS/Swing-style modulo scheduler.
///
/// See the [crate documentation](crate) for the algorithm outline.
#[derive(Clone, Copy, Default, Debug)]
pub struct HrmsScheduler {
    _private: (),
}

impl HrmsScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        HrmsScheduler { _private: () }
    }

    /// Runs the ordering phase in isolation: the sequence of complex-group
    /// leaders HRMS places at `ii`, one per group.
    ///
    /// The order satisfies the pred-XOR-succ property: a group outside any
    /// recurrence is emitted while only its predecessors or only its
    /// successors are already ordered, never both (inside recurrences both
    /// sides may be ordered; the placement window handles that case).
    ///
    /// Returns `None` when the timing analysis is infeasible at `ii`.
    pub fn ordering(&self, ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Option<Vec<OpId>> {
        let groups = ComplexGroups::new(ddg, machine);
        let analysis = TimeAnalysis::new(ddg, machine, ii)?;
        Some(ordering(ddg, machine, &analysis, &groups))
    }
}

impl Scheduler for HrmsScheduler {
    fn name(&self) -> &'static str {
        "hrms"
    }

    fn schedule(
        &self,
        ddg: &Ddg,
        machine: &MachineConfig,
        request: &SchedRequest,
    ) -> Result<Schedule, SchedError> {
        let lower = mii(ddg, machine).max(request.min_ii.unwrap_or(1));
        let upper = request
            .max_ii
            .unwrap_or_else(|| fallback_max_ii(ddg, machine))
            .max(request.max_ii.unwrap_or(0));
        if upper < lower {
            return Err(SchedError::InfeasibleRequest { min_ii: lower, max_ii: upper });
        }
        let groups = ComplexGroups::new(ddg, machine);
        let fallback = topo_leader_order(ddg, &groups);
        let mut tried = 0u32;
        for ii in lower..=upper {
            tried += 1;
            let Some(analysis) = TimeAnalysis::new(ddg, machine, ii) else {
                continue;
            };
            let order = ordering(ddg, machine, &analysis, &groups);
            if let Some(starts) =
                place_order(ddg, machine, ii, &order, &groups, &analysis, PlaceMode::Hrms)
            {
                return Ok(Schedule::with_provenance(ii, starts, "hrms", tried));
            }
            // The greedy bidirectional placement can paint itself into a
            // corner on graphs whose acyclic part straddles the recurrences.
            // A forward topological order with ASAP-clamped placement cannot
            // drift and converges as II grows; try it before giving up on
            // this II so the search degrades gracefully instead of failing.
            if let Some(starts) = place_order(
                ddg,
                machine,
                ii,
                &fallback,
                &groups,
                &analysis,
                PlaceMode::AsapClamped,
            ) {
                return Ok(Schedule::with_provenance(ii, starts, "hrms", tried));
            }
        }
        Err(SchedError::NoScheduleUpTo { max_ii: upper })
    }
}

// ----------------------------------------------------------------------
// Ordering phase
// ----------------------------------------------------------------------

/// A super-graph over complex groups: adjacency between group indices.
struct SuperGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    /// Groups closed into a recurrence by a loop-carried edge internal to
    /// the group (e.g. an accumulator's self-edge). Tracked separately:
    /// `succs`/`preds` drop intra-group edges, so a one-group recurrence is
    /// invisible to the SCC pass.
    self_cyclic: Vec<bool>,
}

impl SuperGraph {
    fn new(ddg: &Ddg, groups: &ComplexGroups) -> Self {
        let g = groups.len();
        let mut succs = vec![Vec::new(); g];
        let mut preds = vec![Vec::new(); g];
        let mut self_cyclic = vec![false; g];
        for e in ddg.edges() {
            let gf = groups.group_of(e.from());
            let gt = groups.group_of(e.to());
            if gf != gt {
                if !succs[gf].contains(&gt) {
                    succs[gf].push(gt);
                }
                if !preds[gt].contains(&gf) {
                    preds[gt].push(gf);
                }
            } else if e.distance() > 0 {
                // Distance-0 intra-group edges (bonds and the free edges
                // between bonded members) are acyclic by validation; only a
                // carried edge closes a recurrence through the group.
                self_cyclic[gf] = true;
            }
        }
        SuperGraph { succs, preds, self_cyclic }
    }

    /// Tarjan SCCs over the super graph, in reverse topological order.
    fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.succs.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![usize::MAX; n];
        let mut on = vec![false; n];
        let mut stack = Vec::new();
        let mut next = 0usize;
        let mut out = Vec::new();
        let mut work: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            work.push((root, 0));
            index[root] = next;
            low[root] = next;
            next += 1;
            stack.push(root);
            on[root] = true;
            while let Some(&mut (v, ref mut cur)) = work.last_mut() {
                if *cur < self.succs[v].len() {
                    let w = self.succs[v][*cur];
                    *cur += 1;
                    if index[w] == usize::MAX {
                        index[w] = next;
                        low[w] = next;
                        next += 1;
                        stack.push(w);
                        on[w] = true;
                        work.push((w, 0));
                    } else if on[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(p, _)) = work.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan underflow");
                            on[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    fn forward_reach(&self, from: &[usize]) -> Vec<bool> {
        bfs(&self.succs, from)
    }

    fn backward_reach(&self, from: &[usize]) -> Vec<bool> {
        bfs(&self.preds, from)
    }
}

fn bfs(adj: &[Vec<usize>], from: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; adj.len()];
    let mut queue: Vec<usize> = Vec::new();
    for &f in from {
        if !seen[f] {
            seen[f] = true;
            queue.push(f);
        }
    }
    while let Some(v) = queue.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                queue.push(w);
            }
        }
    }
    seen
}

/// Recurrence bound of a node subset: smallest II with no positive cycle in
/// the induced subgraph.
fn subset_rec_bound(ddg: &Ddg, machine: &MachineConfig, members: &[OpId]) -> u32 {
    let k = members.len();
    if k == 0 {
        return 1;
    }
    let mut pos = vec![usize::MAX; ddg.num_ops()];
    for (i, m) in members.iter().enumerate() {
        pos[m.index()] = i;
    }
    let edges: Vec<(usize, usize, i64, i64)> = ddg
        .edges()
        .filter(|e| pos[e.from().index()] != usize::MAX && pos[e.to().index()] != usize::MAX)
        .map(|e| {
            (
                pos[e.from().index()],
                pos[e.to().index()],
                edge_latency(machine, ddg, e),
                i64::from(e.distance()),
            )
        })
        .collect();
    let hi_bound: i64 = edges.iter().map(|&(_, _, l, _)| l.max(0)).sum::<i64>().max(1);
    let feasible = |ii: i64| -> bool {
        let mut dist = vec![NEG_INF; k * k];
        for &(f, t, l, d) in &edges {
            let w = l - ii * d;
            if w > dist[f * k + t] {
                dist[f * k + t] = w;
            }
        }
        for m in 0..k {
            for i in 0..k {
                let dim = dist[i * k + m];
                if dim == NEG_INF {
                    continue;
                }
                for j in 0..k {
                    let dmj = dist[m * k + j];
                    if dmj == NEG_INF {
                        continue;
                    }
                    if dim + dmj > dist[i * k + j] {
                        dist[i * k + j] = dim + dmj;
                    }
                }
                if dist[i * k + i] > 0 {
                    return false;
                }
            }
        }
        (0..k).all(|i| dist[i * k + i] <= 0)
    };
    let (mut lo, mut hi) = (1i64, hi_bound);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    u32::try_from(lo).unwrap_or(u32::MAX)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    TopDown,
    BottomUp,
}

/// Produces the scheduling order as a list of group leaders.
fn ordering(
    ddg: &Ddg,
    machine: &MachineConfig,
    analysis: &TimeAnalysis,
    groups: &ComplexGroups,
) -> Vec<OpId> {
    let sg = SuperGraph::new(ddg, groups);
    let g = groups.len();

    // Group-level priorities.
    let mut g_asap = vec![i64::MAX; g];
    let mut g_alap = vec![NEG_INF; g];
    let mut g_mob = vec![i64::MAX; g];
    for gi in 0..g {
        for &m in groups.members_of(groups.leader(gi)) {
            g_asap[gi] = g_asap[gi].min(analysis.asap(m) - groups.offset(m));
            g_alap[gi] = g_alap[gi].max(analysis.alap(m) - groups.offset(m));
            g_mob[gi] = g_mob[gi].min(analysis.mobility(m));
        }
    }
    let horizon: i64 = (0..g).map(|gi| g_alap[gi]).max().unwrap_or(0);

    // Priority sets: recurrences sorted by decreasing RecMII bound, each
    // augmented with the nodes on paths to/from previously chosen sets;
    // one final set with everything else.
    let sccs = sg.sccs();
    let mut rec_sets: Vec<(u32, Vec<usize>)> = Vec::new();
    for comp in &sccs {
        let cyclic = comp.len() > 1 || sg.self_cyclic[comp[0]];
        if cyclic {
            let members: Vec<OpId> = comp
                .iter()
                .flat_map(|&gi| groups.members_of(groups.leader(gi)).iter().copied())
                .collect();
            let bound = subset_rec_bound(ddg, machine, &members);
            rec_sets.push((bound, comp.clone()));
        }
    }
    rec_sets.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    let mut chosen = vec![false; g];
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut chosen_list: Vec<usize> = Vec::new();
    for (_, comp) in &rec_sets {
        let mut set: Vec<usize> = comp.iter().copied().filter(|&x| !chosen[x]).collect();
        if !chosen_list.is_empty() && !set.is_empty() {
            // Path nodes between previously chosen sets and this recurrence.
            let fwd_from_chosen = sg.forward_reach(&chosen_list);
            let back_to_comp = sg.backward_reach(comp);
            let fwd_from_comp = sg.forward_reach(comp);
            let back_to_chosen = sg.backward_reach(&chosen_list);
            for v in 0..g {
                if chosen[v] || set.contains(&v) {
                    continue;
                }
                let on_path = (fwd_from_chosen[v] && back_to_comp[v])
                    || (fwd_from_comp[v] && back_to_chosen[v]);
                if on_path {
                    set.push(v);
                }
            }
        }
        if !set.is_empty() {
            for &v in &set {
                chosen[v] = true;
                chosen_list.push(v);
            }
            sets.push(set);
        }
    }
    let rest: Vec<usize> = (0..g).filter(|&v| !chosen[v]).collect();
    if !rest.is_empty() {
        sets.push(rest);
    }

    // Alternating-direction inner ordering.
    let mut order: Vec<usize> = Vec::with_capacity(g);
    let mut ordered = vec![false; g];
    for set in &sets {
        let mut remaining: BTreeSet<usize> = set.iter().copied().collect();
        while !remaining.is_empty() {
            let td: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&v| sg.preds[v].iter().any(|&p| ordered[p]))
                .collect();
            let bu: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&v| sg.succs[v].iter().any(|&s| ordered[s]))
                .collect();
            let (mut frontier, dir): (BTreeSet<usize>, Direction) =
                if !td.is_empty() && bu.is_empty() {
                    (td.into_iter().collect(), Direction::TopDown)
                } else if !bu.is_empty() && td.is_empty() {
                    (bu.into_iter().collect(), Direction::BottomUp)
                } else if td.is_empty() && bu.is_empty() {
                    // Fresh start: most critical (min mobility), earliest.
                    let seed = remaining
                        .iter()
                        .copied()
                        .min_by_key(|&v| (g_mob[v], g_asap[v], v))
                        .expect("non-empty");
                    ([seed].into_iter().collect(), Direction::TopDown)
                } else {
                    (td.into_iter().collect(), Direction::TopDown)
                };
            while let Some(v) =
                pick(&frontier, &remaining, &sg, dir, &g_asap, &g_alap, &g_mob, horizon)
            {
                frontier.remove(&v);
                if !remaining.remove(&v) {
                    continue;
                }
                ordered[v] = true;
                order.push(v);
                let next = match dir {
                    Direction::TopDown => &sg.succs[v],
                    Direction::BottomUp => &sg.preds[v],
                };
                for &w in next {
                    if remaining.contains(&w) {
                        frontier.insert(w);
                    }
                }
            }
        }
    }
    order.into_iter().map(|gi| groups.leader(gi)).collect()
}

/// Picks the next group from the frontier.
///
/// Groups that are *ready* — all their same-set predecessors (top-down) or
/// successors (bottom-up) already ordered — are strongly preferred: ordering
/// an ancestor before its in-set descendant in a bottom-up sweep (or vice
/// versa) can anchor the two against different neighbours and leave the
/// in-between node an unsatisfiable window at every II. Ties fall back to
/// criticality, then mobility, then index.
#[allow(clippy::too_many_arguments)]
fn pick(
    frontier: &BTreeSet<usize>,
    remaining: &BTreeSet<usize>,
    sg: &SuperGraph,
    dir: Direction,
    g_asap: &[i64],
    g_alap: &[i64],
    g_mob: &[i64],
    horizon: i64,
) -> Option<usize> {
    frontier.iter().copied().min_by_key(|&v| {
        let blocked_by = match dir {
            Direction::TopDown => &sg.preds[v],
            Direction::BottomUp => &sg.succs[v],
        };
        let not_ready = blocked_by.iter().any(|w| remaining.contains(w) && *w != v);
        let criticality = match dir {
            // Top-down: prefer the node with the longest path below it.
            Direction::TopDown => -(horizon - g_alap[v]),
            // Bottom-up: prefer the node with the longest path above it.
            Direction::BottomUp => -g_asap[v],
        };
        (not_ready, criticality, g_mob[v], v)
    })
}

/// Group leaders in a forward topological order of the zero-distance edge
/// DAG; each group is placed at the position of its *last* member so all
/// free intra-iteration predecessors of every member come first.
pub(crate) fn topo_leader_order(ddg: &Ddg, groups: &ComplexGroups) -> Vec<OpId> {
    let node_order = regpipe_ddg::algo::topo_order_ignoring_back_edges(ddg);
    let mut position = vec![0usize; ddg.num_ops()];
    for (i, v) in node_order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut group_pos: Vec<(usize, usize)> = (0..groups.len())
        .map(|gi| {
            let last = groups
                .members_of(groups.leader(gi))
                .iter()
                .map(|m| position[m.index()])
                .max()
                .expect("groups are non-empty");
            (last, gi)
        })
        .collect();
    group_pos.sort_unstable();
    group_pos.into_iter().map(|(_, gi)| groups.leader(gi)).collect()
}

// ----------------------------------------------------------------------
// Placement phase (shared with the ASAP baseline)
// ----------------------------------------------------------------------

/// Placement policy for [`place_order`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PlaceMode {
    /// HRMS: operations hug their scheduled neighbours — upward scans from
    /// the earliest start when predecessors anchor them, downward scans from
    /// the latest start when successors do. Minimizes lifetimes but can
    /// wedge on graphs whose acyclic part straddles several recurrences.
    Hrms,
    /// ASAP with a dataflow clamp: every scan runs upward and never starts
    /// below the operation's ASAP level, so placements cannot drift
    /// unboundedly negative. Register-insensitive, but guaranteed to
    /// converge as II grows (placing everything at its ASAP fixpoint is
    /// dependence-feasible, and resource conflicts vanish at large II).
    AsapClamped,
}

/// Places groups following `order`; returns per-op start cycles or `None`
/// if some group cannot be placed at this II.
pub(crate) fn place_order(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    order: &[OpId],
    groups: &ComplexGroups,
    analysis: &TimeAnalysis,
    mode: PlaceMode,
) -> Option<Vec<i64>> {
    let n = ddg.num_ops();
    let ii64 = i64::from(ii);
    let mut start: Vec<Option<i64>> = vec![None; n];
    let mut mrt = Mrt::new(machine, ii);

    // Pre-check: free edges internal to a group must be consistent with the
    // bond offsets at this II.
    for e in ddg.edges() {
        if e.is_fixed() {
            continue;
        }
        if groups.group_of(e.from()) == groups.group_of(e.to()) {
            let sep = groups.offset(e.to()) - groups.offset(e.from());
            let need = edge_latency(machine, ddg, e) - ii64 * i64::from(e.distance());
            if sep < need {
                return None;
            }
        }
    }

    for &leader in order {
        let members = groups.members_of(leader);
        debug_assert_eq!(groups.offset(leader), 0);

        // Window from scheduled neighbours, expressed on the leader's time.
        let mut early: Option<i64> = None;
        let mut late: Option<i64> = None;
        for &m in members {
            let m_off = groups.offset(m);
            for e in ddg.in_edges(m) {
                if groups.group_of(e.from()) == groups.group_of(m) {
                    continue;
                }
                if let Some(tp) = start[e.from().index()] {
                    let c = tp + edge_latency(machine, ddg, e)
                        - ii64 * i64::from(e.distance())
                        - m_off;
                    early = Some(early.map_or(c, |x: i64| x.max(c)));
                }
            }
            for e in ddg.out_edges(m) {
                if groups.group_of(e.to()) == groups.group_of(m) {
                    continue;
                }
                if let Some(ts) = start[e.to().index()] {
                    let c = ts - edge_latency(machine, ddg, e) + ii64 * i64::from(e.distance())
                        - m_off;
                    late = Some(late.map_or(c, |x: i64| x.min(c)));
                }
            }
        }

        // The group's ASAP level on the leader's clock.
        let g_asap = members
            .iter()
            .map(|&m| analysis.asap(m) - groups.offset(m))
            .max()
            .expect("groups are non-empty");

        // Candidate slots, at most II of them.
        let candidates: Vec<i64> = match (early, late) {
            (Some(e), Some(l)) => {
                if l < e {
                    return None;
                }
                let lo = match mode {
                    PlaceMode::Hrms => e,
                    // Clamp toward the dataflow level when the window allows.
                    PlaceMode::AsapClamped => {
                        if e.max(g_asap) <= l {
                            e.max(g_asap)
                        } else {
                            e
                        }
                    }
                };
                (lo..=l.min(lo + ii64 - 1)).collect()
            }
            (Some(e), None) => {
                let lo = match mode {
                    PlaceMode::Hrms => e,
                    PlaceMode::AsapClamped => e.max(g_asap),
                };
                (lo..lo + ii64).collect()
            }
            (None, Some(l)) => match mode {
                // Scan downward: place as late as possible, next to the
                // already-scheduled consumers.
                PlaceMode::Hrms => (0..ii64).map(|k| l - k).collect(),
                PlaceMode::AsapClamped => {
                    if l < g_asap {
                        return None;
                    }
                    (g_asap..=l.min(g_asap + ii64 - 1)).collect()
                }
            },
            (None, None) => (g_asap..g_asap + ii64).collect(),
        };

        let mut placed_at: Option<i64> = None;
        'slots: for t in candidates {
            // Transactionally place all members.
            let mut done: Vec<(regpipe_ddg::OpKind, i64)> = Vec::new();
            for &m in members {
                let kind = ddg.op(m).kind();
                let cycle = t + groups.offset(m);
                if mrt.try_place(kind, cycle) {
                    done.push((kind, cycle));
                } else {
                    for (k, c) in done.drain(..) {
                        mrt.remove(k, c);
                    }
                    continue 'slots;
                }
            }
            placed_at = Some(t);
            break;
        }
        let t = placed_at?;
        for &m in members {
            start[m.index()] = Some(t + groups.offset(m));
        }
    }
    Some(start.into_iter().map(|t| t.expect("all ops ordered")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regpipe_ddg::DdgBuilder;
    use regpipe_ddg::OpKind;

    fn schedule_ok(ddg: &Ddg, machine: &MachineConfig) -> Schedule {
        let s = HrmsScheduler::new()
            .schedule(ddg, machine, &SchedRequest::default())
            .expect("schedulable");
        s.verify(ddg, machine).expect("valid");
        s
    }

    #[test]
    fn single_op_loop() {
        let mut b = DdgBuilder::new("one");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 1);
    }

    #[test]
    fn paper_example_achieves_ii_1_on_uniform_machine() {
        // Figure 2: x(i) = y(i)*a + y(i-3); 4 units, latency 2 -> II = 1.
        let mut b = DdgBuilder::new("fig2");
        let ld = b.add_op(OpKind::Load, "Ld");
        let mul = b.add_op(OpKind::Mul, "*");
        let add = b.add_op(OpKind::Add, "+");
        let st = b.add_op(OpKind::Store, "St");
        b.reg(ld, mul);
        b.reg_dist(ld, add, 3);
        b.reg(mul, add);
        b.reg(add, st);
        let g = b.build().unwrap();
        let m = MachineConfig::uniform(4, 2);
        let s = schedule_ok(&g, &m);
        assert_eq!(s.ii(), 1, "resource bound: 4 ops / 4 units");
    }

    #[test]
    fn recurrence_constrains_ii() {
        let mut b = DdgBuilder::new("rec");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let s = schedule_ok(&g, &m);
        assert_eq!(s.ii(), 8);
    }

    #[test]
    fn saturated_memory_unit() {
        let mut b = DdgBuilder::new("mem");
        let l1 = b.add_op(OpKind::Load, "l1");
        let l2 = b.add_op(OpKind::Load, "l2");
        let a = b.add_op(OpKind::Add, "a");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(l1, a);
        b.reg(l2, a);
        b.reg(a, st);
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 3, "3 memory ops on one unit");
    }

    #[test]
    fn bonded_pair_scheduled_atomically() {
        let mut b = DdgBuilder::new("bond");
        let p = b.add_op(OpKind::Add, "p");
        let s = b.add_op(OpKind::Store, "s");
        b.bond(p, s);
        let l = b.add_op(OpKind::Load, "l");
        let c = b.add_op(OpKind::Mul, "c");
        b.bond(l, c);
        b.mem(s, l, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let sched = schedule_ok(&g, &m);
        assert_eq!(sched.start(s) - sched.start(p), 4);
        assert_eq!(sched.start(c) - sched.start(l), 2);
    }

    #[test]
    fn divider_heavy_loop() {
        let mut b = DdgBuilder::new("div");
        let l = b.add_op(OpKind::Load, "l");
        let d = b.add_op(OpKind::Div, "d");
        let st = b.add_op(OpKind::Store, "st");
        b.reg(l, d);
        b.reg(d, st);
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p1l4());
        assert_eq!(s.ii(), 17, "non-pipelined divide dominates");
        let s2 = schedule_ok(&g, &MachineConfig::p2l4());
        assert_eq!(s2.ii(), 9, "two div units halve the bound");
    }

    #[test]
    fn honours_min_ii_request() {
        let mut b = DdgBuilder::new("m");
        b.add_op(OpKind::Add, "a");
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let s = HrmsScheduler::new().schedule(&g, &m, &SchedRequest::starting_at(5)).unwrap();
        assert_eq!(s.ii(), 5);
    }

    #[test]
    fn empty_ii_range_is_an_error() {
        let mut b = DdgBuilder::new("m");
        let a = b.add_op(OpKind::Add, "a");
        let c = b.add_op(OpKind::Add, "c");
        b.reg(a, c);
        b.reg_dist(c, a, 1); // MII 8
        let g = b.build().unwrap();
        let m = MachineConfig::p1l4();
        let err = HrmsScheduler::new()
            .schedule(&g, &m, &SchedRequest { min_ii: None, max_ii: Some(3) })
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleRequest { .. }));
    }

    #[test]
    fn wide_independent_ops_fill_slots() {
        // 8 independent adds on 2 adders: II = 4, all slots used.
        let mut b = DdgBuilder::new("wide");
        for i in 0..8 {
            b.add_op(OpKind::Add, format!("a{i}"));
        }
        let g = b.build().unwrap();
        let s = schedule_ok(&g, &MachineConfig::p2l4());
        assert_eq!(s.ii(), 4);
    }

    #[test]
    fn stress_random_graphs_schedule_and_verify() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let machines = [MachineConfig::p1l4(), MachineConfig::p2l4(), MachineConfig::p2l6()];
        for case in 0..150 {
            let n = rng.random_range(2..24usize);
            let mut b = DdgBuilder::new(format!("s{case}"));
            let kinds = [
                OpKind::Load,
                OpKind::Store,
                OpKind::Add,
                OpKind::Mul,
                OpKind::Copy,
                OpKind::Div,
            ];
            let ops: Vec<OpId> = (0..n)
                .map(|i| b.add_op(kinds[rng.random_range(0..kinds.len())], format!("n{i}")))
                .collect();
            for _ in 0..rng.random_range(0..2 * n) {
                let f = ops[rng.random_range(0..n)];
                let t = ops[rng.random_range(0..n)];
                if f == t {
                    continue;
                }
                let dist =
                    if t > f { rng.random_range(0..3u32) } else { rng.random_range(1..3u32) };
                if b.clone().build_unchecked().op(f).kind() == OpKind::Store {
                    b.mem(f, t, dist.max(if t > f { 0 } else { 1 }));
                } else {
                    b.reg_dist(f, t, dist);
                }
            }
            let Ok(g) = b.build() else { continue };
            let m = &machines[case % machines.len()];
            let s = HrmsScheduler::new()
                .schedule(&g, m, &SchedRequest::default())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{g}"));
            s.verify(&g, m).unwrap_or_else(|e| panic!("case {case}: {e}\n{g}\n{s}"));
            assert!(s.ii() >= mii(&g, m));
        }
    }
    #[test]
    fn self_recurrence_group_is_ordered_first() {
        // An accumulator self-recurrence is a one-group recurrence: the
        // ordering phase must treat it as a recurrence set (highest RecMII
        // first), not as leftover acyclic work ordered after everything else.
        let mut b = DdgBuilder::new("acc");
        let feeders: Vec<_> = (0..4).map(|i| b.add_op(OpKind::Load, format!("f{i}"))).collect();
        let acc = b.add_op(OpKind::Div, "acc"); // latency makes its RecMII dominate
        for &f in &feeders {
            b.reg(f, acc);
        }
        b.reg_dist(acc, acc, 1);
        let g = b.build().unwrap();
        let m = MachineConfig::p2l4();
        let order =
            HrmsScheduler::new().ordering(&g, &m, mii(&g, &m)).expect("feasible analysis");
        assert_eq!(order[0], acc, "dominant self-recurrence must lead the order: {order:?}");
        schedule_ok(&g, &m);
    }
}
